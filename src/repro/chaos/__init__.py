"""Chaos engineering for the DHL fleet: declarative, replayable fault
campaigns and the machinery that proves the fleet degrades gracefully
under them.

The paper's §III-D failure story ("RAID and backups can ameliorate the
issue") stops at a single in-flight SSD; a datacentre-scale DHL also
loses whole tracks, saturates its repair crews, browns out LIM power
and drops rack-side cache nodes — often *together*, because failures in
one pod are correlated.  This package turns those scenarios into data:

* :mod:`repro.chaos.campaigns` — a :class:`ChaosCampaign` is a frozen,
  picklable set of timed :class:`CampaignEvent`\\ s (pod-wide track
  outages, brownout windows, correlated cart-batch failures, cache-node
  loss) plus an optional background MTTF/MTTR cocktail and a bounded
  repair-crew pool, all derived from one seed;
* :mod:`repro.chaos.crew` — the :class:`RepairCrewPool` that serialises
  repairs behind a finite maintenance workforce, FIFO;
* :mod:`repro.chaos.runner` — schedules a campaign's events on the DES
  clock against a fleet's per-track simulators, composing the existing
  :mod:`repro.dhlsim.reliability` / :mod:`repro.dhlsim.faults`
  injectors rather than reimplementing them;
* :mod:`repro.chaos.bench` — the ``repro chaos`` artefact: the same
  seeded campaign run fault-free, naively (no degradation) and
  chaos-hardened (circuit breakers + cache rehoming), with the p99 and
  deadline-miss gates committed to ``BENCH_chaos.json``.
"""

from .campaigns import (
    BROWNOUT,
    CACHE_NODE_LOSS,
    CART_BATCH_FAILURE,
    CHAOS_SHUTTLE_POLICY,
    CampaignEvent,
    ChaosCampaign,
    EVENT_KINDS,
    TRACK_OUTAGE,
    default_campaign,
)
from .crew import RepairCrewPool
from .runner import CampaignLog, CampaignRunner, install_campaign

#: Bench re-exports resolve lazily: :mod:`repro.chaos.bench` imports the
#: fleet control plane, which itself imports this package's campaign
#: vocabulary, so an eager import here would be circular.
_BENCH_EXPORTS = (
    "ChaosBenchReport",
    "P99_DEGRADATION_BOUND",
    "chaos_scenario",
    "run_chaos_bench",
)


def __getattr__(name: str):
    if name in _BENCH_EXPORTS:
        from . import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BROWNOUT",
    "CACHE_NODE_LOSS",
    "CART_BATCH_FAILURE",
    "CHAOS_SHUTTLE_POLICY",
    "CampaignEvent",
    "CampaignLog",
    "CampaignRunner",
    "ChaosBenchReport",
    "ChaosCampaign",
    "EVENT_KINDS",
    "P99_DEGRADATION_BOUND",
    "RepairCrewPool",
    "TRACK_OUTAGE",
    "chaos_scenario",
    "default_campaign",
    "install_campaign",
    "run_chaos_bench",
]
