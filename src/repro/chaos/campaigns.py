"""Declarative fault campaigns: timed, correlated, seeded, replayable.

A :class:`ChaosCampaign` is pure data — a tuple of
:class:`CampaignEvent`\\ s plus an optional background MTTF/MTTR
cocktail (:class:`~repro.dhlsim.reliability.ChaosSpec`) and a repair
crew budget.  Because it is frozen and picklable it travels through the
same process-pool sweeps as :class:`~repro.fleet.controlplane.
FleetScenario`, and one ``(campaign, seed)`` pair always replays the
identical fault schedule, bit for bit.

Event kinds map one-to-one onto the paper's §III-D failure classes (see
``docs/failure_modes.md`` for the cookbook):

``track_outage``
    vacuum breach / physical blockage: the tube rejects entries for
    ``duration_s``.  ``track=None`` means *pod-wide* — every track in
    the fleet fails together, the correlated case RAID-style redundancy
    across tracks cannot hide.
``brownout``
    a power-limited window: LIM launches degrade by ``intensity``
    (a slowdown factor >= 1) for ``duration_s``.
``cart_batch_failure``
    a correlated batch of in-flight SSD failures (shared vibration
    spectrum, one bad firmware lot): every cart homed on the target
    track rolls per-drive failures at probability ``intensity`` at
    ``at_s``.
``cache_node_loss``
    the rack-side residency tracker dies: every docked cart on the
    target lane(s) is flushed home and its pool capacity rehomed, the
    cache restarts cold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..dhlsim.policy import ShuttlePolicy
from ..dhlsim.reliability import ChaosSpec

#: The patient shuttle policy chaos runs hand to their rails.  The
#: fail-fast default (:data:`~repro.dhlsim.policy.NO_RETRY`) surfaces
#: raw track faults, which is right for unit studies but wrong under a
#: campaign: transient stalls should be retried, and an outage past
#: ``give_up_outage_s`` should degrade cleanly
#: (:class:`~repro.errors.DegradedServiceError`) so Closes can park,
#: wait and re-attempt instead of stranding carts.
CHAOS_SHUTTLE_POLICY = ShuttlePolicy(
    max_attempts=4,
    base_backoff_s=5.0,
    backoff_factor=2.0,
    max_backoff_s=30.0,
    give_up_outage_s=60.0,
)

TRACK_OUTAGE = "track_outage"
BROWNOUT = "brownout"
CART_BATCH_FAILURE = "cart_batch_failure"
CACHE_NODE_LOSS = "cache_node_loss"

EVENT_KINDS = (TRACK_OUTAGE, BROWNOUT, CART_BATCH_FAILURE, CACHE_NODE_LOSS)


@dataclass(frozen=True)
class CampaignEvent:
    """One scheduled fault: what breaks, when, for how long, how hard."""

    kind: str
    at_s: float
    duration_s: float = 0.0
    track: int | None = None
    """Target track index; ``None`` targets every track (pod-wide)."""
    endpoint_id: int | None = None
    """For ``cache_node_loss``: target rack; ``None`` hits every rack
    of the target track(s)."""
    intensity: float = 0.0
    """Kind-specific: LIM slowdown factor for ``brownout`` (>= 1),
    per-drive failure probability for ``cart_batch_failure``."""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown campaign event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError(f"at_s must be >= 0, got {self.at_s}")
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration_s must be >= 0, got {self.duration_s}"
            )
        if self.kind in (TRACK_OUTAGE, BROWNOUT) and self.duration_s <= 0:
            raise ConfigurationError(
                f"{self.kind} events need duration_s > 0"
            )
        if self.kind == BROWNOUT and self.intensity < 1.0:
            raise ConfigurationError(
                f"brownout intensity is a slowdown factor >= 1, "
                f"got {self.intensity}"
            )
        if self.kind == CART_BATCH_FAILURE and not 0.0 < self.intensity <= 1.0:
            raise ConfigurationError(
                f"cart_batch_failure intensity is a per-drive probability "
                f"in (0, 1], got {self.intensity}"
            )

    @property
    def scope(self) -> str:
        """Human-readable target for the campaign table."""
        track = "pod" if self.track is None else f"t{self.track}"
        if self.kind == CACHE_NODE_LOSS and self.endpoint_id is not None:
            return f"{track}:r{self.endpoint_id}"
        return track


@dataclass(frozen=True)
class ChaosCampaign:
    """A complete fault schedule for one fleet run."""

    name: str = "campaign"
    events: tuple[CampaignEvent, ...] = ()
    background: ChaosSpec | None = None
    """Optional MTTF/MTTR cocktail installed on *every* track's
    simulator (per-track seeds derived from ``seed``), composing the
    PR-1 injectors with the scheduled events above."""
    crews: int | None = None
    """Repair crews shared by all MTTF/MTTR repairs; ``None`` keeps a
    dedicated crew per fault class (the historical behaviour)."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crews is not None and self.crews < 1:
            raise ConfigurationError(f"crews must be >= 1, got {self.crews}")
        if not self.events and self.background is None:
            raise ConfigurationError(
                "a campaign needs at least one event or a background spec"
            )

    @property
    def ordered_events(self) -> tuple[CampaignEvent, ...]:
        """Events in schedule order (stable for equal timestamps)."""
        return tuple(sorted(self.events, key=lambda e: e.at_s))

    def table(self) -> tuple[list[str], list[list[object]]]:
        """The campaign schedule as a renderable table."""
        headers = ["t (s)", "Event", "Target", "Duration (s)", "Intensity"]
        rows: list[list[object]] = []
        for event in self.ordered_events:
            rows.append([
                f"{event.at_s:.0f}",
                event.kind,
                event.scope,
                f"{event.duration_s:.0f}" if event.duration_s else "-",
                f"{event.intensity:g}" if event.intensity else "-",
            ])
        if self.background is not None:
            spec = self.background
            parts = []
            if spec.track_mttf_s is not None:
                parts.append(f"track mttf={spec.track_mttf_s:g}s")
            if spec.stall_prob > 0:
                parts.append(f"stalls p={spec.stall_prob:g}")
            if spec.drive_failure_prob > 0:
                parts.append(f"drives p={spec.drive_failure_prob:g}")
            rows.append(["-", "background", "pod", "-", ", ".join(parts) or "-"])
        if self.crews is not None:
            rows.append(["-", "repair_crews", "pod", "-", str(self.crews)])
        return headers, rows


#: Events of the headline bench campaign (factored out so tests can
#: build variants without re-deriving the schedule).
def default_campaign(seed: int = 0) -> ChaosCampaign:
    """The headline chaos campaign the ``repro chaos`` gate runs.

    Designed against the default two-track fleet and one-hour horizon:

    * a 900 s outage on track 0 starting at t=600 — long enough that a
      naive fleet queues interactive traffic behind a dead tube for
      minutes, while a breaker diverts it within a few failures;
    * a cache-node loss on track 1's rack at t=1500, forcing residency
      rehoming mid-storm;
    * a pod-wide 300 s brownout (2x LIM slowdown) at t=2200;
    * a correlated cart-batch failure (1 % per drive) on track 0 at
      t=2700, exercising the RAID/integrity path of §III-D;
    * background in-tube stalls plus a single shared repair crew.
    """
    return ChaosCampaign(
        name="pod-storm",
        events=(
            CampaignEvent(TRACK_OUTAGE, at_s=600.0, duration_s=900.0, track=0),
            CampaignEvent(CACHE_NODE_LOSS, at_s=1500.0, track=1),
            CampaignEvent(BROWNOUT, at_s=2200.0, duration_s=300.0,
                          intensity=2.0),
            CampaignEvent(CART_BATCH_FAILURE, at_s=2700.0, track=0,
                          intensity=0.01),
        ),
        background=ChaosSpec(stall_prob=0.02, stall_time_s=4.0,
                             seed=seed + 100),
        crews=1,
        seed=seed,
    )

