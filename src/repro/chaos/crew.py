"""A bounded, FIFO repair-crew pool shared by every fault injector.

The MTTF/MTTR injectors of :mod:`repro.dhlsim.reliability` historically
assumed a dedicated crew per fault class: a repair always started the
instant the fault occurred.  Real maintenance is a finite workforce —
when a pod-wide outage takes three tracks down at once, two of them
wait.  :class:`RepairCrewPool` models that: each repair claims a crew
from a capacity-bounded :class:`~repro.sim.resources.Resource` (FIFO by
construction), and the pool keeps an auditable dispatch log so tests
can pin that queued repairs are served in request order and measure how
much saturation stretched the fleet's effective MTTR.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import Environment
from ..sim.resources import Request, Resource


class RepairCrewPool:
    """``crews`` interchangeable repair crews shared across injectors.

    Duck-typed against :attr:`repro.dhlsim.reliability.
    RepairableInjector.crew`: injectors call :meth:`request` when a
    fault needs repairing, yield the returned event until a crew is
    free, and ``release()`` it when the repair completes.
    """

    def __init__(self, env: Environment, crews: int = 1):
        if crews < 1:
            raise ConfigurationError(f"crews must be >= 1, got {crews}")
        self.env = env
        self.crews = crews
        self._pool = Resource(env, capacity=crews)
        self.requested: list[tuple[float, str]] = []
        """(virtual time, component) in fault order — the arrival log."""
        self.dispatched: list[tuple[float, str]] = []
        """(virtual time, component) in crew-grant order — the service log."""
        self.saturated_waits = 0
        """Repairs that found every crew busy and had to queue."""

    def request(self, component: str) -> Request:
        """Claim a crew for ``component``; fires when one is free."""
        self.requested.append((self.env.now, component))
        claim = self._pool.request()
        if not claim.triggered:
            self.saturated_waits += 1
        claim.callbacks.append(
            lambda _event: self.dispatched.append((self.env.now, component))
        )
        return claim

    @property
    def busy(self) -> int:
        """Crews currently on a repair."""
        return self._pool.count

    @property
    def queued(self) -> int:
        """Repairs waiting for a free crew."""
        return len(self._pool.queue)

    @property
    def fifo_preserved(self) -> bool:
        """Did crews serve components in exactly fault order?

        Holds by construction (the underlying resource queue is FIFO);
        exposed so the saturation tests can assert it directly against
        the logs rather than trusting the implementation.
        """
        return [c for _, c in self.dispatched] == [
            c for _, c in self.requested[: len(self.dispatched)]
        ]
