"""Schedules a :class:`~repro.chaos.campaigns.ChaosCampaign` on the DES clock.

The runner owns no fault physics of its own: scheduled outages flip the
same :class:`~repro.dhlsim.track.TrackHealth` flags the PR-1 injectors
use, brownouts call ``degrade_lim``/``restore_lim``, and correlated
cart-batch failures roll drives through a context-managed
:class:`~repro.dhlsim.faults.FaultInjector`.  Background MTTF/MTTR
cocktails are installed verbatim via
:func:`~repro.dhlsim.reliability.install_chaos`, sharing one
:class:`~repro.chaos.crew.RepairCrewPool` with the scheduled repairs
when the campaign bounds its crews.

The runner is fleet-agnostic: it takes a list of per-track
:class:`~repro.dhlsim.scheduler.DhlSystem`\\ s (what
:class:`~repro.fleet.topology.FleetTopology` holds as ``systems``) and
never imports the fleet layer, so a single-system chaos study and a
datacentre-scale campaign use identical machinery.  Cache-node loss is
delivered through :attr:`cache_loss_hooks` because residency lives in
the control plane, not the physics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from ..dhlsim.faults import FaultInjector
from ..dhlsim.metrics import COUNT_PREFIX
from ..dhlsim.reliability import ChaosInjectors, install_chaos
from ..dhlsim.scheduler import DhlSystem
from ..errors import ConfigurationError
from ..sim import Environment, Interrupt
from .campaigns import (
    BROWNOUT,
    CACHE_NODE_LOSS,
    CART_BATCH_FAILURE,
    CampaignEvent,
    ChaosCampaign,
    TRACK_OUTAGE,
)
from .crew import RepairCrewPool

#: Signature of a cache-node-loss subscriber: ``(track_index, endpoint_id)``.
CacheLossHook = Callable[[int, "int | None"], None]


@dataclass
class CampaignLog:
    """What a campaign actually did, in virtual time."""

    entries: list[tuple[float, str, str, str]] = field(default_factory=list)
    """(time, kind, target, detail) rows in application order."""
    outages_applied: int = 0
    outages_absorbed: int = 0
    """Scheduled outages that found their track already down."""
    brownouts_applied: int = 0
    drive_failures: int = 0
    carts_lost: int = 0
    cache_nodes_lost: int = 0

    def record(self, now: float, kind: str, target: str, detail: str) -> None:
        self.entries.append((now, kind, target, detail))

    def table(self) -> tuple[list[str], list[list[object]]]:
        headers = ["t (s)", "Event", "Target", "Detail"]
        rows = [
            [f"{now:.0f}", kind, target, detail]
            for now, kind, target, detail in self.entries
        ]
        return headers, rows


class CampaignRunner:
    """Live campaign state: one process per scheduled fault."""

    def __init__(
        self,
        env: Environment,
        systems: Sequence[DhlSystem],
        campaign: ChaosCampaign,
    ):
        if not systems:
            raise ConfigurationError("a campaign needs at least one system")
        self.env = env
        self.systems = list(systems)
        self.campaign = campaign
        self.log = CampaignLog()
        self.cache_loss_hooks: list[CacheLossHook] = []
        self.crew = (
            RepairCrewPool(env, crews=campaign.crews)
            if campaign.crews is not None
            else None
        )
        self.background: list[ChaosInjectors] = []
        if campaign.background is not None:
            for track_index, system in enumerate(self.systems):
                spec = replace(
                    campaign.background,
                    seed=campaign.background.seed + 1000 * track_index,
                )
                self.background.append(install_chaos(system, spec, crew=self.crew))
        self._stopped = False
        self.processes = []
        for event_index, event in enumerate(campaign.ordered_events):
            for track_index in self._targets(event):
                self.processes.append(
                    env.process(self._drive(event, event_index, track_index))
                )

    # -- wiring ------------------------------------------------------------------

    def _targets(self, event: CampaignEvent) -> Sequence[int]:
        if event.track is None:
            return range(len(self.systems))
        if not 0 <= event.track < len(self.systems):
            raise ConfigurationError(
                f"event targets track {event.track} but the fleet has "
                f"{len(self.systems)} tracks"
            )
        return (event.track,)

    def stop(self) -> None:
        """Halt everything: scheduled events and background injectors."""
        self._stopped = True
        for process in self.processes:
            # A process that never had its first resume cannot catch an
            # Interrupt (it would raise at the generator header); those
            # drivers notice ``_stopped`` when they do start and no-op.
            if process.is_alive and process.started:
                process.interrupt("campaign stopped")
        for handles in self.background:
            handles.stop()

    # -- event drivers -----------------------------------------------------------

    def _drive(self, event: CampaignEvent, event_index: int, track_index: int):
        try:
            yield self.env.timeout(event.at_s)
            if self._stopped:
                return
            if event.kind == TRACK_OUTAGE:
                yield from self._track_outage(event, track_index)
            elif event.kind == BROWNOUT:
                yield from self._brownout(event, track_index)
            elif event.kind == CART_BATCH_FAILURE:
                self._cart_batch_failure(event, event_index, track_index)
            elif event.kind == CACHE_NODE_LOSS:
                self._cache_node_loss(event, track_index)
        except Interrupt:
            pass  # stop() during a window; injected state was restored by stop

    def _track_outage(self, event: CampaignEvent, track_index: int):
        env = self.env
        system = self.systems[track_index]
        health = system.tracks[0].health
        target = f"t{track_index}"
        if not health.tube_available:
            # A background breach beat us to it: the correlated fault is
            # absorbed into the existing outage rather than double-failing.
            self.log.outages_absorbed += 1
            self.log.record(env.now, event.kind, target, "absorbed")
            return
        health.mark_down(env.now)
        system.metrics.counter(COUNT_PREFIX + "track_outages").inc()
        self.log.outages_applied += 1
        self.log.record(env.now, event.kind, target, "tube down")
        claim = None
        try:
            if self.crew is not None:
                claim = self.crew.request(f"campaign:{target}")
                yield claim
            yield env.timeout(event.duration_s)
        finally:
            health.mark_up(env.now)
            if claim is not None:
                claim.release()
            self.log.record(env.now, event.kind, target, "repaired")

    def _brownout(self, event: CampaignEvent, track_index: int):
        env = self.env
        health = self.systems[track_index].tracks[0].health
        target = f"t{track_index}"
        if health.lim_slowdown != 1.0:
            self.log.record(env.now, event.kind, target, "absorbed")
            return
        health.degrade_lim(event.intensity)
        self.log.brownouts_applied += 1
        self.log.record(env.now, event.kind, target,
                        f"lim {event.intensity:g}x slower")
        try:
            yield env.timeout(event.duration_s)
        finally:
            health.restore_lim()
            self.log.record(env.now, event.kind, target, "power restored")

    def _cart_batch_failure(self, event: CampaignEvent, event_index: int,
                            track_index: int) -> None:
        system = self.systems[track_index]
        target = f"t{track_index}"
        seed = self.campaign.seed + 7919 * (event_index + 1) + track_index
        with FaultInjector(
            system,
            per_drive_trip_failure_prob=event.intensity,
            seed=seed,
        ) as injector:
            for cart in system.library.carts.values():
                injector.inject(cart)
        self.log.drive_failures += injector.injected_failures
        self.log.carts_lost += injector.lost_carts
        self.log.record(
            self.env.now, event.kind, target,
            f"{injector.injected_failures} drives failed, "
            f"{injector.lost_carts} carts lost",
        )

    def _cache_node_loss(self, event: CampaignEvent, track_index: int) -> None:
        target = f"t{track_index}" + (
            f":r{event.endpoint_id}" if event.endpoint_id is not None else ""
        )
        self.log.cache_nodes_lost += 1
        for hook in list(self.cache_loss_hooks):
            hook(track_index, event.endpoint_id)
        self.log.record(self.env.now, event.kind, target, "residency flushed")


def install_campaign(
    env: Environment,
    systems: Sequence[DhlSystem],
    campaign: ChaosCampaign,
) -> CampaignRunner:
    """Arm ``campaign`` against per-track ``systems``; returns the runner."""
    return CampaignRunner(env, systems, campaign)
