"""Chaos benchmarking: the ``repro chaos`` artefact.

Runs the headline fleet scenario three ways on the same seeded
workload and fault schedule and serialises the KPIs to
``BENCH_chaos.json``, a committed baseline CI regenerates on every
push:

``fault_free``
    the plain ``edf+lru`` fleet — byte-identical to the same combo in
    ``BENCH_fleet.json``, pinning that arming the chaos machinery
    without a campaign changes nothing;
``naive``
    the :func:`~repro.chaos.campaigns.default_campaign` pod-storm with
    no degradation machinery: jobs queue behind dead tubes and fail;
``hardened``
    the same storm with lane health monitors, circuit breakers and
    cache rehoming (:class:`~repro.fleet.health.DegradationPolicy`).

Every KPI is a **virtual-time** output of a seeded deterministic
simulation, so the regression gate compares values directly (wall time
is informational only).  The payload pins the PR's headline invariants:
the hardened fleet keeps p99 within :data:`P99_DEGRADATION_BOUND` times
the fault-free p99 through the storm, the naive fleet violates that
bound, and hardening wins on both p99 and deadline-miss rate.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from ..fleet.bench import DEFAULT_HORIZON_S, DEFAULT_SEED
from ..fleet.controlplane import FleetReport, default_scenario, run_fleet
from ..fleet.health import DegradationPolicy
from ..fleet.topology import FleetSpec
from .campaigns import CHAOS_SHUTTLE_POLICY, default_campaign

SCHEMA = "repro-bench-chaos/1"

#: The graceful-degradation SLO the gate pins: through the pod-storm
#: campaign the hardened fleet's p99 must stay within this factor of
#: the fault-free p99.  Chosen between the measured ratios (hardened
#: ~2.8x, naive ~6.6x at seed 0) so the invariant separates the two
#: designs rather than merely describing one run.
P99_DEGRADATION_BOUND = 3.0

MODES = ("fault_free", "naive", "hardened")


def chaos_scenario(mode: str, seed: int = DEFAULT_SEED,
                   horizon_s: float = DEFAULT_HORIZON_S):
    """The :class:`~repro.fleet.controlplane.FleetScenario` for one mode."""
    if mode == "fault_free":
        # Deliberately the stock scenario — same object the fleet bench
        # runs — so any divergence from BENCH_fleet's edf+lru combo
        # means the chaos machinery leaked into the fault-free path.
        return default_scenario(policy="edf", cache="lru", seed=seed,
                                horizon_s=horizon_s)
    if mode not in MODES:
        raise ConfigurationError(
            f"unknown chaos bench mode {mode!r}; expected one of {MODES}"
        )
    return default_scenario(
        policy="edf",
        cache="lru",
        seed=seed,
        horizon_s=horizon_s,
        spec=FleetSpec(shuttle_policy=CHAOS_SHUTTLE_POLICY),
        chaos=default_campaign(seed=seed),
        degradation=DegradationPolicy() if mode == "hardened" else None,
    )


@dataclass(frozen=True)
class ChaosBenchReport:
    """The three mode runs of one chaos bench."""

    seed: int
    horizon_s: float
    reports: tuple[tuple[str, FleetReport], ...]
    wall_s: float

    def report(self, mode: str) -> FleetReport:
        for key, report in self.reports:
            if key == mode:
                return report
        raise ConfigurationError(f"mode {mode!r} was not benched")

    @property
    def invariants(self) -> dict[str, bool]:
        """The graceful-degradation gate, as named booleans."""
        fault_free = self.report("fault_free")
        naive = self.report("naive")
        hardened = self.report("hardened")
        bound = P99_DEGRADATION_BOUND * fault_free.p99_s
        return {
            "hardened_p99_within_bound": hardened.p99_s <= bound,
            "naive_p99_violates_bound": naive.p99_s > bound,
            "hardened_beats_naive_p99": hardened.p99_s < naive.p99_s,
            "hardened_beats_naive_miss_rate": (
                hardened.deadline_miss_rate < naive.deadline_miss_rate
            ),
        }


def run_chaos_bench(seed: int = DEFAULT_SEED,
                    horizon_s: float = DEFAULT_HORIZON_S,
                    modes: tuple[str, ...] = MODES) -> ChaosBenchReport:
    """Run every mode on the same seeded workload and fault schedule."""
    if not modes:
        raise ConfigurationError("at least one chaos bench mode is required")
    started = time.perf_counter()
    reports = tuple(
        (mode, run_fleet(chaos_scenario(mode, seed=seed, horizon_s=horizon_s)))
        for mode in modes
    )
    return ChaosBenchReport(
        seed=seed,
        horizon_s=horizon_s,
        reports=reports,
        wall_s=time.perf_counter() - started,
    )


def _kpis(report: FleetReport) -> dict[str, object]:
    """The deterministic per-mode KPIs the regression gate compares."""
    return {
        "n_jobs": report.n_jobs,
        "served": report.served,
        "shed": report.shed,
        "failovers": report.failovers,
        "failed": report.failed,
        "diverted": report.diverted,
        "breaker_trips": report.breaker_trips,
        "rehomed": report.rehomed,
        "p50_s": round(report.sla.overall.p50_s, 3),
        "p95_s": round(report.sla.overall.p95_s, 3),
        "p99_s": round(report.p99_s, 3),
        "deadline_miss_rate": round(report.deadline_miss_rate, 6),
        "goodput_gb_per_s": round(report.goodput_bytes_per_s / 1e9, 3),
        "cache_hit_rate": round(report.hit_rate, 6),
        "launches": report.launches,
        "launch_energy_mj": round(report.launch_energy_j / 1e6, 6),
        "failover_energy_mj": round(report.failover_energy_j / 1e6, 6),
        "makespan_s": round(report.makespan_s, 3),
    }


def report_payload(bench: ChaosBenchReport) -> dict[str, object]:
    """The JSON-serialisable form of a chaos bench (``BENCH_chaos.json``)."""
    from ..analysis.perf import environment_info

    return {
        "schema": SCHEMA,
        "seed": bench.seed,
        "horizon_s": bench.horizon_s,
        "p99_degradation_bound": P99_DEGRADATION_BOUND,
        "modes": {mode: _kpis(report) for mode, report in bench.reports},
        "invariants": bench.invariants,
        "wall_s_informational": round(bench.wall_s, 3),
        "environment": environment_info(),
    }


def write_report(bench: ChaosBenchReport, path: str) -> str:
    """Write ``BENCH_chaos.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed chaos baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    KPIs are virtual-time outputs of a seeded simulation: they must
    match the baseline to within float-noise tolerance on any machine,
    and the degradation invariants must hold in both payloads.
    """
    problems: list[str] = []
    for name, value in dict(payload.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in fresh run: {name}")
    for name, value in dict(baseline.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in baseline: {name}")
    fresh_modes = dict(payload.get("modes", {}))
    base_modes = dict(baseline.get("modes", {}))
    for mode, base_kpis in base_modes.items():
        if mode not in fresh_modes:
            problems.append(f"mode {mode!r} missing from fresh run")
            continue
        fresh_kpis = fresh_modes[mode]
        for key, base_value in dict(base_kpis).items():
            fresh_value = fresh_kpis.get(key)
            if isinstance(base_value, bool) or not isinstance(
                base_value, (int, float)
            ):
                if fresh_value != base_value:
                    problems.append(
                        f"{mode}.{key}: {fresh_value!r} != baseline "
                        f"{base_value!r}"
                    )
            elif fresh_value is None or not math.isclose(
                float(fresh_value), float(base_value), rel_tol=rel_tol,
                abs_tol=rel_tol,
            ):
                problems.append(
                    f"{mode}.{key}: {fresh_value} drifted from baseline "
                    f"{base_value}"
                )
    return problems
