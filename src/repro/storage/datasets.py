"""Catalogue of large emerging datasets and data-creation rates (Table I).

These descriptors drive the workload generators: the paper's evaluation
centres on Meta's 29 PB ML dataset, with experimental physics (LHC CMS)
and bulk backups as the other motivating applications.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from ..units import GIB, HOUR, PB, TB, assert_positive


@dataclass(frozen=True)
class Dataset:
    """A named dataset with a total size in bytes."""

    name: str
    size_bytes: float
    category: str
    source: str = ""

    def __post_init__(self) -> None:
        assert_positive("size_bytes", self.size_bytes)


@dataclass(frozen=True)
class DataStream:
    """A continuous data source, characterised by its creation rate.

    DHLs are unsuited to continuous streams (the paper is explicit about
    this), but a stream accumulated over a window becomes a bulk transfer;
    :meth:`accumulate` converts one into a :class:`Dataset`.
    """

    name: str
    rate_bytes_per_s: float
    category: str
    source: str = ""

    def __post_init__(self) -> None:
        assert_positive("rate_bytes_per_s", self.rate_bytes_per_s)

    def accumulate(self, seconds: float) -> Dataset:
        """The bulk dataset produced by this stream over ``seconds``."""
        if seconds <= 0:
            raise StorageError(f"accumulation window must be positive, got {seconds!r}")
        return Dataset(
            name=f"{self.name} ({seconds:.0f}s window)",
            size_bytes=self.rate_bytes_per_s * seconds,
            category=self.category,
            source=self.source,
        )


_DAY = 86400.0

# One hour of video ~ 1 GiB, the paper's own conversion (Table I footnote).
_YOUTUBE_8M_BYTES = 350_000 * GIB

LAION_5B = Dataset("LAION-5B", 250 * TB, "Images", source="[9]")
YOUTUBE_8M = Dataset("YouTube-8M", _YOUTUBE_8M_BYTES, "Videos", source="[21], [25]")
MASSIVE_TEXT = Dataset("MassiveText", 10.25 * TB, "NLP", source="[82]")
COMMON_CRAWL = Dataset("Common Crawl", 9 * PB, "Web Crawl", source="[1], [19]")
META_ML_SMALL = Dataset("Meta ML (small)", 3 * PB, "ML", source="[107]")
META_ML_MEDIUM = Dataset("Meta ML (medium)", 13 * PB, "ML", source="[107]")
META_ML_LARGE = Dataset("Meta ML (large)", 29 * PB, "ML", source="[107]")
NIH_GENOMES = Dataset("NIH 100k Genomes / GSA", 17 * PB, "Genomics", source="[23], [32], [38]")

LHC_CMS_DETECTOR = DataStream(
    "LHC CMS Detector", rate_bytes_per_s=150 * TB, category="Physics", source="[47]"
)
META_DAILY = DataStream(
    "Meta New Daily Data", rate_bytes_per_s=4 * PB / _DAY, category="BigData", source="[6]"
)
YOUTUBE_DAILY_LOW = DataStream(
    "YouTube New Daily Videos (low)",
    rate_bytes_per_s=0.7 * PB / _DAY,
    category="Videos",
    source="[22], [93]",
)
YOUTUBE_DAILY_HIGH = DataStream(
    "YouTube New Daily Videos (high)",
    rate_bytes_per_s=1.44 * PB / _DAY,
    category="Videos",
    source="[22], [93]",
)

TABLE_I_DATASETS = (
    LAION_5B,
    YOUTUBE_8M,
    MASSIVE_TEXT,
    COMMON_CRAWL,
    META_ML_SMALL,
    META_ML_MEDIUM,
    META_ML_LARGE,
    NIH_GENOMES,
)

TABLE_I_STREAMS = (
    LHC_CMS_DETECTOR,
    META_DAILY,
    YOUTUBE_DAILY_LOW,
    YOUTUBE_DAILY_HIGH,
)

_DATASETS_BY_NAME = {dataset.name: dataset for dataset in TABLE_I_DATASETS}


def dataset_by_name(name: str) -> Dataset:
    """Look up a Table I dataset by exact name."""
    try:
        return _DATASETS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_DATASETS_BY_NAME))
        raise StorageError(f"unknown dataset {name!r}; known datasets: {known}") from None


def synthetic_dataset(size_bytes: float, name: str = "synthetic") -> Dataset:
    """A stand-in dataset of a given size (substitute for proprietary data).

    Every model in the paper depends on a dataset only through its size,
    so a synthetic descriptor is a faithful replacement for e.g. Meta's
    production training data.
    """
    return Dataset(name=name, size_bytes=size_bytes, category="Synthetic")


def lhc_hour() -> Dataset:
    """One hour of unfiltered CMS detector output — an off-site processing
    shipment for the experimental-physics use case (Section II-D1)."""
    return LHC_CMS_DETECTOR.accumulate(HOUR)
