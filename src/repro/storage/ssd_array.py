"""Arrays of SSDs as mounted on a DHL cart.

A cart carries a fixed set of M.2 SSDs wired 1 PCIe lane per SSD.  This
module models the aggregate capacity, mass, bandwidth and power of such an
array, including optional RAID-style redundancy used by the fault-injection
experiments, and the PCIe link that caps dock-side throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, DataIntegrityError
from ..units import GBIT_PER_S, assert_positive
from .devices import SABRENT_ROCKET_4_PLUS_8TB, StorageDevice


@dataclass(frozen=True)
class PcieLink:
    """A PCIe connection between a docking station and a cart.

    The paper cites PCIe 6.0 at 3.8 Tbit/s for 64 lanes; per-lane rates
    below follow the PCIe spec (bytes/s, post-encoding).
    """

    generation: int
    lanes: int

    _PER_LANE_GBIT = {3: 8.0, 4: 16.0, 5: 32.0, 6: 64.0}

    def __post_init__(self) -> None:
        if self.generation not in self._PER_LANE_GBIT:
            raise ConfigurationError(
                f"unsupported PCIe generation {self.generation}; "
                f"supported: {sorted(self._PER_LANE_GBIT)}"
            )
        if self.lanes <= 0:
            raise ConfigurationError(f"lane count must be positive, got {self.lanes}")

    @property
    def bandwidth(self) -> float:
        """Aggregate link bandwidth in bytes/s (lanes x per-lane rate)."""
        # PCIe 6.0 moved to PAM4 + FLIT encoding with ~2% overhead; earlier
        # generations use 128b/130b.  We fold both into a 2% factor, which
        # lands 64 lanes of gen 6 at ~3.9 Tbit/s, matching the paper's cite.
        raw = self._PER_LANE_GBIT[self.generation] * self.lanes * GBIT_PER_S
        return raw * 0.98


PCIE6_X64 = PcieLink(generation=6, lanes=64)


@dataclass(frozen=True)
class SsdArray:
    """A fixed array of identical SSDs, optionally with parity redundancy.

    ``parity_drives`` follows RAID-5/6 style erasure coding at array scope:
    the array tolerates that many simultaneous drive failures, at the cost
    of their capacity.
    """

    device: StorageDevice = SABRENT_ROCKET_4_PLUS_8TB
    count: int = 32
    parity_drives: int = 0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError(f"SSD count must be positive, got {self.count}")
        if not 0 <= self.parity_drives < self.count:
            raise ConfigurationError(
                f"parity drives must lie in [0, count); got {self.parity_drives} of {self.count}"
            )

    @property
    def raw_capacity_bytes(self) -> float:
        """Total capacity across all drives, ignoring redundancy."""
        return self.device.capacity_bytes * self.count

    @property
    def usable_capacity_bytes(self) -> float:
        """Capacity available for data after parity overhead."""
        return self.device.capacity_bytes * (self.count - self.parity_drives)

    @property
    def mass_kg(self) -> float:
        """Total drive mass (the cart model adds frame/magnets/fin)."""
        return self.device.mass_kg * self.count

    @property
    def read_bw(self) -> float:
        """Aggregate sequential read bandwidth of all data drives, bytes/s."""
        return self.device.read_bw * (self.count - self.parity_drives)

    @property
    def write_bw(self) -> float:
        """Aggregate sequential write bandwidth of all data drives, bytes/s."""
        return self.device.write_bw * (self.count - self.parity_drives)

    @property
    def active_power_w(self) -> float:
        """Power with every drive under load (heat-sink sizing input)."""
        return self.device.active_power_w * self.count

    @property
    def idle_power_w(self) -> float:
        return self.device.idle_power_w * self.count

    def effective_read_bw(self, link: PcieLink = PCIE6_X64) -> float:
        """Dock-side read bandwidth: min of drives and the PCIe link."""
        return min(self.read_bw, link.bandwidth)

    def effective_write_bw(self, link: PcieLink = PCIE6_X64) -> float:
        """Dock-side write bandwidth: min of drives and the PCIe link."""
        return min(self.write_bw, link.bandwidth)

    def drain_time(self, n_bytes: float | None = None, link: PcieLink = PCIE6_X64) -> float:
        """Seconds to read ``n_bytes`` (default: a full array) at the dock."""
        if n_bytes is None:
            n_bytes = self.usable_capacity_bytes
        if n_bytes < 0:
            raise ConfigurationError(f"cannot drain a negative amount: {n_bytes!r}")
        return n_bytes / self.effective_read_bw(link)

    def fill_time(self, n_bytes: float | None = None, link: PcieLink = PCIE6_X64) -> float:
        """Seconds to write ``n_bytes`` (default: a full array) at the dock."""
        if n_bytes is None:
            n_bytes = self.usable_capacity_bytes
        if n_bytes < 0:
            raise ConfigurationError(f"cannot fill a negative amount: {n_bytes!r}")
        return n_bytes / self.effective_write_bw(link)

    def surviving(self, failed_drives: int) -> "DegradedArray":
        """State of the array after ``failed_drives`` in-flight failures.

        Raises :class:`DataIntegrityError` when failures exceed parity —
        the paper's API would then report the error so backups can step in.
        """
        if failed_drives < 0:
            raise ConfigurationError(f"failed drive count must be >= 0, got {failed_drives}")
        if failed_drives > self.parity_drives:
            raise DataIntegrityError(
                f"{failed_drives} drives failed but the array only tolerates "
                f"{self.parity_drives}; data lost, restore from backup"
            )
        return DegradedArray(array=self, failed_drives=failed_drives)


@dataclass(frozen=True)
class DegradedArray:
    """An SSD array operating with some drives failed but data intact."""

    array: SsdArray
    failed_drives: int
    rebuild_read_penalty: float = 1.15
    """Reads touch parity during reconstruction; ~15% extra traffic."""

    @property
    def read_bw(self) -> float:
        """Degraded read bandwidth: fewer drives, plus reconstruction cost."""
        healthy = self.array.count - self.array.parity_drives - self.failed_drives
        healthy = max(healthy, 1)
        penalty = self.rebuild_read_penalty if self.failed_drives else 1.0
        return self.array.device.read_bw * healthy / penalty

    def rebuild_time(self, spare_write_bw: float | None = None) -> float:
        """Seconds to reconstruct the failed drives onto spares.

        Rebuild must rewrite each failed drive in full; the bottleneck is
        the spare's write bandwidth (default: one device's write rate).
        """
        if self.failed_drives == 0:
            return 0.0
        if spare_write_bw is None:
            spare_write_bw = self.array.device.write_bw
        assert_positive("spare_write_bw", spare_write_bw)
        return self.failed_drives * self.array.device.capacity_bytes / spare_write_bw


def array_for_capacity(
    capacity_bytes: float,
    device: StorageDevice = SABRENT_ROCKET_4_PLUS_8TB,
    parity_drives: int = 0,
) -> SsdArray:
    """Build the smallest array of ``device`` holding ``capacity_bytes``."""
    from ..units import ceil_div

    data_drives = ceil_div(capacity_bytes, device.capacity_bytes)
    return SsdArray(device=device, count=data_drives + parity_drives, parity_drives=parity_drives)
