"""Storage substrate: devices, SSD arrays, dataset and model catalogues.

This package provides the storage-side facts the paper builds on —
Table I (emerging datasets), Table II (storage devices) and Table IV
(large ML models) — plus the cart-side SSD array model and the library
placement planner used by the DHL simulators.
"""

from .datasets import (
    DataStream,
    Dataset,
    LHC_CMS_DETECTOR,
    META_ML_LARGE,
    TABLE_I_DATASETS,
    TABLE_I_STREAMS,
    dataset_by_name,
    lhc_hour,
    synthetic_dataset,
)
from .growth import (
    Crossover,
    DATA_GROWTH_CAGR,
    carts_per_day,
    dhl_headroom_years,
    projected_dataset,
    projected_rate,
    saturation_year,
)
from .devices import (
    FORM_FACTOR_3_5_INCH,
    FORM_FACTOR_M_2_2280,
    FORM_FACTOR_U_2,
    FormFactor,
    NIMBUS_EXADRIVE_100TB,
    SABRENT_ROCKET_4_PLUS_8TB,
    StorageDevice,
    TABLE_II_DEVICES,
    WD_GOLD_24TB,
    device_by_name,
    drives_required,
    m2_versus_hdd,
)
from .library import LibraryInventory, PlacementPlan, Shard, plan_placement
from .mlmodels import (
    DLRM_2022,
    MlModel,
    TABLE_IV_MODELS,
    model_by_name,
    parameter_bytes,
)
from .ssd_array import DegradedArray, PCIE6_X64, PcieLink, SsdArray, array_for_capacity

__all__ = [
    "Crossover",
    "DATA_GROWTH_CAGR",
    "carts_per_day",
    "dhl_headroom_years",
    "projected_dataset",
    "projected_rate",
    "saturation_year",
    "DataStream",
    "Dataset",
    "DegradedArray",
    "DLRM_2022",
    "FORM_FACTOR_3_5_INCH",
    "FORM_FACTOR_M_2_2280",
    "FORM_FACTOR_U_2",
    "FormFactor",
    "LHC_CMS_DETECTOR",
    "LibraryInventory",
    "META_ML_LARGE",
    "MlModel",
    "NIMBUS_EXADRIVE_100TB",
    "PCIE6_X64",
    "PcieLink",
    "PlacementPlan",
    "SABRENT_ROCKET_4_PLUS_8TB",
    "Shard",
    "SsdArray",
    "StorageDevice",
    "TABLE_I_DATASETS",
    "TABLE_I_STREAMS",
    "TABLE_II_DEVICES",
    "TABLE_IV_MODELS",
    "WD_GOLD_24TB",
    "array_for_capacity",
    "dataset_by_name",
    "device_by_name",
    "drives_required",
    "lhc_hour",
    "m2_versus_hdd",
    "model_by_name",
    "parameter_bytes",
    "plan_placement",
    "synthetic_dataset",
]
