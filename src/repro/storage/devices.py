"""Storage-device models (paper Table II).

The paper's core observation is that SSD *density* — bytes per gram and
bytes per unit volume — has grown quietly but rapidly, and that the M.2
form factor in particular packs data tightly enough to make embodied data
movement practical.  This module models concrete devices with enough
fidelity to derive those density arguments and to drive the dock-side
read/write model of the operational simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError
from ..units import MB, TB, assert_positive


@dataclass(frozen=True)
class FormFactor:
    """A physical storage package: name plus bounding-box dimensions (mm)."""

    name: str
    length_mm: float
    width_mm: float
    height_mm: float

    def __post_init__(self) -> None:
        assert_positive("length_mm", self.length_mm)
        assert_positive("width_mm", self.width_mm)
        assert_positive("height_mm", self.height_mm)

    @property
    def volume_cm3(self) -> float:
        """Bounding-box volume in cubic centimetres."""
        return self.length_mm * self.width_mm * self.height_mm / 1e3


# Common form factors.  The M.2 22110 bounding box uses a conservative
# 10 mm height to account for a heat sink, matching the paper's packing
# estimate of 32 SSDs in roughly 60 x 60 x 80 mm.
FORM_FACTOR_3_5_INCH = FormFactor("3.5-inch", length_mm=147.0, width_mm=101.6, height_mm=26.1)
FORM_FACTOR_U_2 = FormFactor("U.2", length_mm=100.0, width_mm=69.85, height_mm=15.0)
FORM_FACTOR_M_2_2280 = FormFactor("M.2-2280", length_mm=80.0, width_mm=22.0, height_mm=10.0)


@dataclass(frozen=True)
class StorageDevice:
    """A storage device with capacity, mass, bandwidth and power.

    Bandwidths are sequential rates in bytes/s; the paper (Table II)
    quotes MB/s, converted by the :func:`from_table_ii` helpers below.
    ``active_power_w`` is the sustained-I/O draw (the discussion section
    cites up to 10 W per M.2 under load); ``idle_power_w`` covers a docked
    but quiescent drive.
    """

    name: str
    capacity_bytes: float
    form_factor: FormFactor
    mass_kg: float
    read_bw: float
    write_bw: float
    active_power_w: float = 10.0
    idle_power_w: float = 0.05
    kind: str = "ssd"

    def __post_init__(self) -> None:
        assert_positive("capacity_bytes", self.capacity_bytes)
        assert_positive("mass_kg", self.mass_kg)
        assert_positive("read_bw", self.read_bw)
        assert_positive("write_bw", self.write_bw)
        if self.kind not in ("hdd", "ssd", "m2-ssd"):
            raise StorageError(f"unknown device kind {self.kind!r}")

    @property
    def density_bytes_per_gram(self) -> float:
        """Data density by mass — the paper's headline storage metric."""
        return self.capacity_bytes / (self.mass_kg * 1e3)

    @property
    def density_bytes_per_cm3(self) -> float:
        """Data density by bounding-box volume."""
        return self.capacity_bytes / self.form_factor.volume_cm3

    def read_time(self, n_bytes: float) -> float:
        """Seconds to sequentially read ``n_bytes`` from this device."""
        if n_bytes < 0:
            raise StorageError(f"cannot read a negative amount: {n_bytes!r}")
        return n_bytes / self.read_bw

    def write_time(self, n_bytes: float) -> float:
        """Seconds to sequentially write ``n_bytes`` to this device."""
        if n_bytes < 0:
            raise StorageError(f"cannot write a negative amount: {n_bytes!r}")
        return n_bytes / self.write_bw


# --------------------------------------------------------------------------
# Table II devices
# --------------------------------------------------------------------------

WD_GOLD_24TB = StorageDevice(
    name="WD Gold 24TB",
    capacity_bytes=24 * TB,
    form_factor=FORM_FACTOR_3_5_INCH,
    mass_kg=0.670,
    read_bw=291 * MB,
    write_bw=291 * MB,
    active_power_w=7.0,
    kind="hdd",
)

NIMBUS_EXADRIVE_100TB = StorageDevice(
    name="Nimbus ExaDrive 100TB",
    capacity_bytes=100 * TB,
    form_factor=FORM_FACTOR_3_5_INCH,
    mass_kg=0.538,
    read_bw=500 * MB,
    write_bw=460 * MB,
    active_power_w=14.0,
    kind="ssd",
)

SABRENT_ROCKET_4_PLUS_8TB = StorageDevice(
    name="Sabrent Rocket 4 Plus 8TB",
    capacity_bytes=8 * TB,
    form_factor=FORM_FACTOR_M_2_2280,
    mass_kg=0.00567,
    read_bw=7100 * MB,
    write_bw=6000 * MB,
    active_power_w=10.0,
    kind="m2-ssd",
)

TABLE_II_DEVICES = (
    WD_GOLD_24TB,
    NIMBUS_EXADRIVE_100TB,
    SABRENT_ROCKET_4_PLUS_8TB,
)

_DEVICES_BY_NAME = {device.name: device for device in TABLE_II_DEVICES}


def device_by_name(name: str) -> StorageDevice:
    """Look up one of the catalogued Table II devices by exact name."""
    try:
        return _DEVICES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES_BY_NAME))
        raise StorageError(f"unknown device {name!r}; known devices: {known}") from None


def drives_required(dataset_bytes: float, device: StorageDevice) -> int:
    """How many copies of ``device`` are needed to hold ``dataset_bytes``.

    Reproduces the paper's Section II-C aside: 29 PB requires 1319 of the
    22 TB HDDs or 290 of the 100 TB SSDs.  (The paper's HDD count uses a
    22 TB capacity even though Table II lists the 24 TB WD Gold.)
    """
    from ..units import ceil_div

    return ceil_div(dataset_bytes, device.capacity_bytes)


@dataclass(frozen=True)
class DensityComparison:
    """Relative density of two devices, as in the paper's Section II-A."""

    lighter: StorageDevice
    heavier: StorageDevice
    mass_ratio: float = field(init=False)
    capacity_ratio: float = field(init=False)
    density_ratio: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mass_ratio", self.heavier.mass_kg / self.lighter.mass_kg)
        object.__setattr__(
            self, "capacity_ratio", self.heavier.capacity_bytes / self.lighter.capacity_bytes
        )
        object.__setattr__(
            self,
            "density_ratio",
            self.lighter.density_bytes_per_gram / self.heavier.density_bytes_per_gram,
        )


def m2_versus_hdd() -> DensityComparison:
    """The paper's comparison: the 8 TB M.2 is ~100x lighter than the 3.5"
    HDD for only ~3x less capacity (Table II devices)."""
    return DensityComparison(lighter=SABRENT_ROCKET_4_PLUS_8TB, heavier=WD_GOLD_24TB)
