"""Data-growth projections: when does copying stop keeping up?

The introduction motivates DHLs with growth: "The increasing amount of
data generated per user per day is a problem growing at an alarming
rate, already reaching petabytes (PB) per day for data centres."  This
module projects Table I's creation rates and dataset sizes forward and
finds the crossover where a replication requirement outgrows a link
budget — while the DHL side scales by adding carts to an unchanged
rail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import DAY, assert_positive, gbps
from .datasets import DataStream, Dataset

DATA_GROWTH_CAGR: float = 0.35
"""Compound annual growth of data creation; IDC-style estimates put
global datasphere growth in the 25-40%/yr band."""


def projected_rate(stream: DataStream, years: float,
                   cagr: float = DATA_GROWTH_CAGR) -> DataStream:
    """The stream ``years`` later at compound growth ``cagr``."""
    if years < 0:
        raise ConfigurationError(f"years must be >= 0, got {years}")
    if cagr <= -1:
        raise ConfigurationError("growth rate must exceed -100%")
    return DataStream(
        name=f"{stream.name} (+{years:g}y)",
        rate_bytes_per_s=stream.rate_bytes_per_s * (1 + cagr) ** years,
        category=stream.category,
        source=stream.source,
    )


def projected_dataset(dataset: Dataset, years: float,
                      cagr: float = DATA_GROWTH_CAGR) -> Dataset:
    """A dataset grown forward (the paper notes ML sets are 'mainly
    appended')."""
    if years < 0:
        raise ConfigurationError(f"years must be >= 0, got {years}")
    if cagr <= -1:
        raise ConfigurationError("growth rate must exceed -100%")
    return Dataset(
        name=f"{dataset.name} (+{years:g}y)",
        size_bytes=dataset.size_bytes * (1 + cagr) ** years,
        category=dataset.category,
        source=dataset.source,
    )


@dataclass(frozen=True)
class Crossover:
    """When a growing replication load saturates a fixed link budget."""

    stream: DataStream
    link_budget_bytes_per_s: float
    replication_factor: float
    years_to_saturation: float

    @property
    def already_saturated(self) -> bool:
        return self.years_to_saturation <= 0


def saturation_year(
    stream: DataStream,
    n_links: float = 1.0,
    link_gbps: float = 400.0,
    replication_factor: float = 2.0,
    cagr: float = DATA_GROWTH_CAGR,
) -> Crossover:
    """Years until replicating a stream's output saturates ``n_links``.

    ``replication_factor`` counts how many times each created byte must
    cross the fabric (backup + one analytics copy = 2).  Solves
    ``rate x replication x (1+g)^t = capacity`` for t; negative t means
    the budget is already insufficient.
    """
    assert_positive("n_links", n_links)
    assert_positive("link_gbps", link_gbps)
    assert_positive("replication_factor", replication_factor)
    if cagr <= 0:
        raise ConfigurationError("saturation needs positive growth")
    capacity = n_links * gbps(link_gbps)
    demand = stream.rate_bytes_per_s * replication_factor
    years = math.log(capacity / demand) / math.log(1 + cagr)
    return Crossover(
        stream=stream,
        link_budget_bytes_per_s=capacity,
        replication_factor=replication_factor,
        years_to_saturation=years,
    )


def carts_per_day(
    stream: DataStream,
    cart_bytes: float,
    years: float = 0.0,
    cagr: float = DATA_GROWTH_CAGR,
) -> float:
    """DHL-side scaling: loaded carts per day to ship a (grown) stream.

    The rail never changes; growth is absorbed by launch cadence (and,
    per Section II-A, by denser SSDs shrinking this number again).
    """
    assert_positive("cart_bytes", cart_bytes)
    grown = projected_rate(stream, years, cagr)
    return grown.rate_bytes_per_s * DAY / cart_bytes


def dhl_headroom_years(
    stream: DataStream,
    cart_bytes: float,
    trip_time_s: float,
    cagr: float = DATA_GROWTH_CAGR,
) -> float:
    """Years before one DHL track's launch cadence saturates.

    A track delivers one cart per ``trip_time_s`` (pipelined returns);
    saturation is ``carts/day == 86400 / trip_time``.
    """
    assert_positive("cart_bytes", cart_bytes)
    assert_positive("trip_time_s", trip_time_s)
    if cagr <= 0:
        raise ConfigurationError("headroom needs positive growth")
    capacity_carts_per_day = DAY / trip_time_s
    today = carts_per_day(stream, cart_bytes)
    return math.log(capacity_carts_per_day / today) / math.log(1 + cagr)
