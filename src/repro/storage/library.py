"""Cold-storage library inventory: mapping datasets onto cart-sized shards.

The DHL library (Section III-B6) holds SSD carts as cold storage.  A
PB-scale dataset is striped across many carts; this module plans that
placement and answers "which shards must travel for this request?" for
both the analytical campaign model and the operational simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import StorageError
from ..units import ceil_div
from .datasets import Dataset
from .ssd_array import SsdArray


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of a dataset assigned to one cart-load."""

    dataset: str
    index: int
    offset_bytes: float
    size_bytes: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise StorageError(f"shard index must be >= 0, got {self.index}")
        if self.size_bytes <= 0:
            raise StorageError(f"shard size must be positive, got {self.size_bytes!r}")
        if self.offset_bytes < 0:
            raise StorageError(f"shard offset must be >= 0, got {self.offset_bytes!r}")

    @property
    def end_bytes(self) -> float:
        return self.offset_bytes + self.size_bytes


@dataclass(frozen=True)
class PlacementPlan:
    """The shards of one dataset laid out over identical cart arrays."""

    dataset: Dataset
    array: SsdArray
    shards: tuple[Shard, ...]

    @property
    def n_carts(self) -> int:
        return len(self.shards)

    @property
    def last_shard_fill(self) -> float:
        """Fraction of the final cart that actually holds data."""
        return self.shards[-1].size_bytes / self.array.usable_capacity_bytes

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)


def plan_placement(dataset: Dataset, array: SsdArray) -> PlacementPlan:
    """Stripe ``dataset`` across the fewest cart-loads of ``array``.

    For the paper's defaults (29 PB on 256 TB carts) this yields 114
    shards, matching the trip counts of Table VI.
    """
    capacity = array.usable_capacity_bytes
    n_carts = ceil_div(dataset.size_bytes, capacity)
    shards = []
    remaining = dataset.size_bytes
    for index in range(n_carts):
        size = min(capacity, remaining)
        shards.append(
            Shard(
                dataset=dataset.name,
                index=index,
                offset_bytes=index * capacity,
                size_bytes=size,
            )
        )
        remaining -= size
    return PlacementPlan(dataset=dataset, array=array, shards=tuple(shards))


@dataclass
class LibraryInventory:
    """Mutable inventory of which shard sits on which library cart slot.

    The operational simulator uses this to resolve Open requests ("fetch
    shard k of dataset d") to concrete carts, and to record writes coming
    back from endpoints.
    """

    capacity_slots: int
    _slots: dict[int, Shard | None] = field(default_factory=dict)
    _by_shard: dict[tuple[str, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_slots <= 0:
            raise StorageError(f"library must have >= 1 slot, got {self.capacity_slots}")
        for slot in range(self.capacity_slots):
            self._slots.setdefault(slot, None)

    @property
    def free_slots(self) -> list[int]:
        return [slot for slot, shard in self._slots.items() if shard is None]

    @property
    def occupied_slots(self) -> list[int]:
        return [slot for slot, shard in self._slots.items() if shard is not None]

    def store(self, shard: Shard, slot: int | None = None) -> int:
        """Place ``shard`` into a slot (first free one by default)."""
        key = (shard.dataset, shard.index)
        if key in self._by_shard:
            raise StorageError(f"shard {key} is already stored in slot {self._by_shard[key]}")
        if slot is None:
            free = self.free_slots
            if not free:
                raise StorageError("library is full; extend the rail to add slots")
            slot = free[0]
        if slot not in self._slots:
            raise StorageError(f"slot {slot} does not exist (capacity {self.capacity_slots})")
        if self._slots[slot] is not None:
            raise StorageError(f"slot {slot} is already occupied")
        self._slots[slot] = shard
        self._by_shard[key] = slot
        return slot

    def locate(self, dataset: str, index: int) -> int:
        """Return the slot holding shard ``index`` of ``dataset``."""
        try:
            return self._by_shard[(dataset, index)]
        except KeyError:
            raise StorageError(f"shard ({dataset!r}, {index}) is not in the library") from None

    def retrieve(self, dataset: str, index: int) -> Shard:
        """Remove and return a shard (cart leaves the library)."""
        slot = self.locate(dataset, index)
        shard = self._slots[slot]
        assert shard is not None
        self._slots[slot] = None
        del self._by_shard[(dataset, index)]
        return shard

    def store_plan(self, plan: PlacementPlan) -> list[int]:
        """Store every shard of a placement plan; returns slots used."""
        if len(plan.shards) > len(self.free_slots):
            raise StorageError(
                f"plan needs {len(plan.shards)} slots but only "
                f"{len(self.free_slots)} are free"
            )
        return [self.store(shard) for shard in plan.shards]

    def contents(self) -> dict[int, Shard]:
        """Snapshot of occupied slots (slot -> shard)."""
        return {slot: shard for slot, shard in self._slots.items() if shard is not None}
