"""Catalogue of large ML models with significant storage footprints (Table IV).

The paper sizes each model by applying a common conversion of one
parameter = 32 bits; :func:`parameter_bytes` implements that conversion so
the table can be regenerated rather than hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import StorageError
from ..units import assert_positive

BYTES_PER_PARAM_FP32: float = 4.0
"""The paper's conversion: Param = 32 bits = 4 bytes."""


def parameter_bytes(n_params: float, bytes_per_param: float = BYTES_PER_PARAM_FP32) -> float:
    """Storage footprint of a model with ``n_params`` parameters."""
    assert_positive("n_params", n_params)
    assert_positive("bytes_per_param", bytes_per_param)
    return n_params * bytes_per_param


@dataclass(frozen=True)
class MlModel:
    """A named ML model sized by parameter count (Table IV rows)."""

    name: str
    n_params: float
    origin: str
    year: int
    size_bytes: float = field(init=False)

    def __post_init__(self) -> None:
        assert_positive("n_params", self.n_params)
        object.__setattr__(self, "size_bytes", parameter_bytes(self.n_params))


_B = 1e9
_T = 1e12

GPT_3 = MlModel("GPT-3", 175 * _B, "OpenAI", 2020)
JURASSIC_1 = MlModel("Jurassic-1", 178 * _B, "A21 labs", 2021)
GOPHER = MlModel("Gopher", 280 * _B, "Google", 2021)
M6_10T = MlModel("M6-10T", 10 * _T, "Alibaba", 2021)
MEGATRON_TURING_NLG = MlModel("Megatron-Turing NLG", 1 * _T, "MSFT&NVDA", 2022)
DLRM_2022 = MlModel("DLRM 2022", 12 * _T, "Meta", 2022)

TABLE_IV_MODELS = (
    GPT_3,
    JURASSIC_1,
    GOPHER,
    M6_10T,
    MEGATRON_TURING_NLG,
    DLRM_2022,
)

_MODELS_BY_NAME = {model.name: model for model in TABLE_IV_MODELS}


def model_by_name(name: str) -> MlModel:
    """Look up a Table IV model by exact name."""
    try:
        return _MODELS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_MODELS_BY_NAME))
        raise StorageError(f"unknown model {name!r}; known models: {known}") from None
