"""Time-weighted statistics for discrete-event simulations.

Utilisation questions ("how busy was the tube?", "how many docks were
occupied on average?") need time-weighted averages, not sample means.
:class:`TimeWeightedValue` tracks a piecewise-constant signal against
the simulation clock; :class:`UtilisationMonitor` wraps a Resource to
record its occupancy automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from .engine import Environment
from .resources import Request, Resource


@dataclass
class TimeWeightedValue:
    """A piecewise-constant signal integrated over simulated time."""

    env: Environment
    value: float = 0.0
    _last_change_s: float = field(init=False)
    _integral: float = field(default=0.0, init=False)
    _peak: float = field(init=False)

    def __post_init__(self) -> None:
        self._last_change_s = self.env.now
        self._peak = self.value

    def set(self, new_value: float) -> None:
        """Record a level change at the current simulation time."""
        self._accumulate()
        self.value = new_value
        self._peak = max(self._peak, new_value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def _accumulate(self) -> None:
        now = self.env.now
        if now < self._last_change_s:
            raise SimulationError("simulation clock went backwards")
        self._integral += self.value * (now - self._last_change_s)
        self._last_change_s = now

    def time_average(self) -> float:
        """Mean level from creation until now."""
        self._accumulate()
        elapsed = self.env.now
        if elapsed <= 0:
            raise SimulationError("no simulated time has elapsed")
        return self._integral / elapsed

    @property
    def peak(self) -> float:
        return self._peak


@dataclass
class UtilisationMonitor:
    """Tracks a Resource's busy fraction by wrapping request/release."""

    resource: Resource
    _level: TimeWeightedValue = field(init=False)

    def __post_init__(self) -> None:
        self._level = TimeWeightedValue(self.resource.env, value=self.resource.count)
        original_request = self.resource.request
        original_release = self.resource._release
        monitor = self

        def tracked_request(*args, **kwargs):
            request = original_request(*args, **kwargs)

            def on_grant(_event):
                monitor._level.set(monitor.resource.count)

            if request.triggered:
                monitor._level.set(monitor.resource.count)
            else:
                request.callbacks.append(on_grant)
            return request

        def tracked_release(request: Request) -> None:
            original_release(request)
            monitor._level.set(monitor.resource.count)

        self.resource.request = tracked_request  # type: ignore[method-assign]
        self.resource._release = tracked_release  # type: ignore[method-assign]

    def utilisation(self) -> float:
        """Time-averaged occupancy as a fraction of capacity."""
        return self._level.time_average() / self.resource.capacity

    @property
    def peak_in_use(self) -> float:
        return self._level.peak
