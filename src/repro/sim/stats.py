"""Time-weighted statistics — compatibility shim over :mod:`repro.obs`.

.. deprecated::
    The canonical implementations of :class:`TimeWeightedValue` and
    :class:`UtilisationMonitor` moved to :mod:`repro.obs.metrics` when
    the observability subsystem unified the repo's telemetry paths.
    This module re-exports them unchanged so existing imports keep
    working; new code should import from :mod:`repro.obs` and register
    signals on a :class:`repro.obs.MetricsRegistry` so they appear in
    snapshots and CSV exports alongside everything else.
"""

from __future__ import annotations

from ..obs.metrics import TimeWeightedValue, UtilisationMonitor

__all__ = ["TimeWeightedValue", "UtilisationMonitor"]
