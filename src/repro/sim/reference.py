"""The pre-optimisation discrete-event engine, frozen as a reference.

This module is a verbatim snapshot of :mod:`repro.sim.engine` (plus the
``Resource``/``Store`` primitives the engine benches exercise) as it
stood *before* the fast-path work: no ``__slots__``, a fresh
intermediate ``Event`` per already-processed yield, tracer ``None``
checks inside ``step()``, and an unconditional cancelled-head purge on
every step.  It exists for two jobs:

* **Correctness reference.**  The property tests in
  ``tests/sim/test_engine_parity.py`` run randomised process graphs on
  both engines and require event-for-event identical execution order —
  the optimised engine must be observationally indistinguishable.
* **Performance reference.**  ``repro bench --mode engine``
  (:mod:`repro.sim.bench`) times the same workloads on both engines on
  the same machine, which makes the committed ≥2× events/sec speedup
  gate in ``BENCH_engine.json`` machine-portable: the ratio moves with
  the engine, not with the hardware.

Do not "fix" or optimise this module — any change here silently moves
the goalposts for both gates.  It is not part of the public API.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

PENDING = object()
"""Sentinel for an event value that has not been decided yet."""


class Event:
    """A one-shot event that processes may wait on (reference copy)."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool | None = None
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled event (lazy delete, as in the seed engine)."""
        if self.processed:
            return
        self._cancelled = True

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """A running process: drives a generator, firing when it returns."""

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]):
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick off the process at the current time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, priority=0)

    def _resume(self, trigger: Event) -> None:
        if self.triggered:
            return  # e.g. an interrupt landing after the process finished
        # Detach from the event that woke us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        if self.env._tracer is not None:
            self.env._tracer._engine_resume()
        try:
            if trigger._ok:
                next_event = self._generator.send(trigger._value)
            else:
                trigger._defused = True
                next_event = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except BaseException as error:
            self._ok = False
            self._value = error
            self.env._schedule(self)
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded {next_event!r}; processes must yield Events"
            )
        if next_event.env is not self.env:
            raise SimulationError("cannot wait on an event from another environment")
        if next_event.processed:
            # Already fired: resume via a fresh intermediate event (the
            # allocation the optimised engine's reusable shim removes).
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            if not next_event._ok:
                next_event._defused = True
            resume.callbacks.append(self._resume)
            self.env._schedule(resume)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class Condition(Event):
    """Base for AllOf/AnyOf: fires when enough child events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event], need_all: bool):
        super().__init__(env)
        self._events = list(events)
        self._need_all = need_all
        self._remaining = len(self._events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        if not self._events:
            self._ok = True
            self._value = {}
            env._schedule(self)
            return
        for event in self._events:
            if event.processed:
                self._count(event)
            else:
                event.callbacks.append(self._count)

    def _count(self, event: Event) -> None:
        if not event._ok:
            event._defused = True
        if self.triggered:
            return
        if not event._ok:
            self._ok = False
            self._value = event._value
            self.env._schedule(self)
            return
        self._remaining -= 1
        done = self._remaining == 0 if self._need_all else True
        if done:
            self._ok = True
            self._value = {
                child: child._value for child in self._events if child.triggered and child._ok
            }
            self.env._schedule(self)


class AllOf(Condition):
    """Fires when every child event has fired; value maps event -> value."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=True)


class AnyOf(Condition):
    """Fires when the first child event fires."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=False)


class Environment:
    """The simulation clock and event queue (reference copy)."""

    def __init__(self, initial_time: float = 0.0, tracer: Any = None):
        self._now = initial_time
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._tracer: Any = None
        if tracer is not None:
            self.set_tracer(tracer)

    @property
    def now(self) -> float:
        return self._now

    @property
    def tracer(self) -> Any:
        return self._tracer

    def set_tracer(self, tracer: Any) -> None:
        """Attach a tracer; the reference engine re-checks it per event."""
        self._tracer = tracer
        if tracer is not None:
            tracer.attach_clock(self)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule an already-decided event at an absolute time."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self._now})")
        self._eid += 1
        heapq.heappush(self._queue, (when, 1, self._eid, event))

    # -- factories -----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        proc = Process(self, generator)
        if self._tracer is not None:
            self._tracer._engine_spawn()
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------

    def _purge_cancelled(self) -> None:
        """Drop cancelled events from the head of the queue (lazy delete)."""
        while self._queue and self._queue[0][3]._cancelled:
            heapq.heappop(self._queue)
            if self._tracer is not None:
                self._tracer._engine_cancel()

    def step(self) -> None:
        """Process the next event in the queue."""
        self._purge_cancelled()
        if not self._queue:
            raise SimulationError("no more events to process")
        when, _priority, _eid, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        if self._tracer is not None:
            self._tracer._engine_fire(event)
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"unhandled event failure: {value!r}")

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires."""
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                self._purge_cancelled()
                if not self._queue:
                    raise SimulationError(
                        "event queue is empty but the awaited event never fired"
                    )
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"deadline {deadline} is in the past (now={self._now})")
            while True:
                self._purge_cancelled()
                if not (self._queue and self._queue[0][0] <= deadline):
                    break
                self.step()
            self._now = deadline
            return None
        while True:
            self._purge_cancelled()
            if not self._queue:
                break
            self.step()
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        self._purge_cancelled()
        return self._queue[0][0] if self._queue else float("inf")


# -- reference resource primitives (for the engine bench workloads) ----------


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted."""

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A counted resource with a FIFO wait queue (reference copy)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit; the returned event fires once granted."""
        request = Request(self)
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(request)
        else:
            self.queue.append(request)
        return request

    def _release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release of a request this resource never saw") from None
            return
        while self.queue and len(self.users) < self.capacity:
            waiter = self.queue.popleft()
            self.users.append(waiter)
            waiter.succeed(waiter)


class Store:
    """A FIFO buffer of items with blocking put/get (reference copy)."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Deposit ``item``; fires immediately unless the store is full."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._serve_getters()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; fires when one is available."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._serve_putters()
        else:
            self._getters.append(event)
        return event

    def _serve_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())

    def _serve_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter.succeed()
            self._serve_getters()

    def __len__(self) -> int:
        return len(self.items)
