"""Discrete-event simulation engine (simpy substitute, offline-friendly).

Provides the process-oriented core the DHL operational simulator and the
distributed-ML simulator are built on: an event loop with virtual time,
generator-based processes, timeouts, interrupts, condition events and
shared-resource primitives.
"""

from .engine import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    PENDING,
    Process,
    Timeout,
)
from .resources import Container, PriorityRequest, PriorityResource, Request, Resource, Store
from .stats import TimeWeightedValue, UtilisationMonitor

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "PENDING",
    "PriorityRequest",
    "PriorityResource",
    "Process",
    "Request",
    "Resource",
    "Store",
    "TimeWeightedValue",
    "Timeout",
    "UtilisationMonitor",
]
