"""A compact discrete-event simulation engine (simpy-like).

The paper's operational questions — cart scheduling, dock contention,
pipelined ingestion — need process-oriented discrete-event simulation.
simpy is not available in this offline environment, so this module
implements the same core abstractions:

* :class:`Environment` — the event loop with virtual time.
* :class:`Event` — a one-shot occurrence processes can wait on.
* :class:`Timeout` — an event that fires after a delay.
* :class:`Process` — a generator-based coroutine; ``yield event``
  suspends until the event fires, and events propagate values and
  exceptions exactly like simpy.
* :class:`AllOf` / :class:`AnyOf` — condition events.

Determinism: simultaneous events fire in scheduling order (FIFO within a
timestamp), which the property tests rely on.

Fast-path design (see ``docs/performance.md`` for measurements, and
:mod:`repro.sim.reference` for the frozen pre-optimisation engine the
parity tests and ``BENCH_engine.json`` gate compare against):

* Every event class declares ``__slots__`` — faster attribute access and
  roughly half the allocation cost of dict-backed instances.
* Queue entries are 3-tuples ``(time, key, event)`` where
  ``key = priority * 2**52 + eid`` folds the priority band and the FIFO
  sequence number into one integer, preserving the exact
  ``(time, priority, eid)`` order of the reference engine with one fewer
  tuple slot to build and compare.
* A process that yields an already-processed event is resumed through a
  per-process reusable ``_Resume`` shim instead of a freshly allocated
  intermediate :class:`Event` — same queue entry, same ``eid``
  accounting, zero allocation.  (If the shim is still queued — an
  interrupt raced a pending resume — the allocating path is used, which
  is exactly the reference behaviour.)
* The tracer ``None``-check is hoisted out of the per-event fire path:
  ``Environment._fire`` is a bound method swapped between
  ``_fire_fast`` and ``_fire_traced`` by :meth:`Environment.set_tracer`,
  and the ``run()`` loops drive it directly without going through
  :meth:`step`.
* Cancellation purging is amortised: a ``_cancelled_pending`` counter
  (maintained by :meth:`Event.cancel`) gates the head purge, and when
  cancelled entries dominate the queue it is compacted in place with one
  ``heapify`` instead of N pops.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from inspect import GEN_CREATED, getgeneratorstate
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable

from ..errors import SimulationError

PENDING = object()
"""Sentinel for an event value that has not been decided yet."""

_PRIORITY_BAND = 1 << 52
"""Multiplier folding (priority, eid) into one sort key.

``eid`` is a per-environment schedule counter, so ``2**52`` schedules
per run would be needed to overflow a band — far beyond any simulation
this repo runs (and Python ints would stay exact regardless).
"""

_COMPACT_MIN = 64
"""Cancelled-entry count below which the queue is never compacted."""


class Event:
    """A one-shot event that processes may wait on.

    An event is *triggered* once, either with :meth:`succeed` (a value)
    or :meth:`fail` (an exception).  Callbacks attached before or after
    triggering run when the environment processes the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool | None = None
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise SimulationError("event value is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        env = self.env
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def cancel(self) -> None:
        """Discard a scheduled event: the queue drops it without advancing
        time or running its callbacks.  A no-op once the event has been
        processed, so the loser of a resolved race can always be
        cancelled unconditionally.  Processes still waiting on a
        cancelled event never resume — cancel only events whose waiters
        have already been satisfied some other way.
        """
        if self.callbacks is None or self._cancelled:
            return
        self._cancelled = True
        env = self.env
        pending = env._cancelled_pending = env._cancelled_pending + 1
        if pending > _COMPACT_MIN and pending * 2 > len(env._queue):
            env._compact()

    def __repr__(self) -> str:
        state = "triggered" if self._value is not PENDING else "pending"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` time units."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        env._eid += 1
        heappush(env._queue, (env._now + delay, _PRIORITY_BAND + env._eid, self))

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Resume(object):
    """A reusable queue entry that wakes one process.

    Stands in for the throwaway intermediate :class:`Event` the
    reference engine allocates whenever a process yields an
    already-processed event (and for the kick-off event of every new
    process).  It is queued at most once at a time — ``callbacks`` is
    the preallocated one-element list while queued and ``None`` once
    fired, exactly the protocol :meth:`Environment._fire_fast` expects —
    so a single instance per process serves every immediate resume that
    process ever performs.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused", "_cancelled", "_list")

    def __init__(self, callback: Callable[[Any], None]):
        self._list = [callback]
        self.callbacks: list[Callable[[Any], None]] | None = None
        self._value: Any = None
        self._ok = True
        self._defused = False
        self._cancelled = False


class Process(Event):
    """A running process: drives a generator, firing when it returns.

    The process itself is an event: other processes can ``yield proc`` to
    wait for completion and receive its return value.
    """

    __slots__ = ("_generator", "_send", "_throw", "_target", "_resume_cb", "_shim")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]):
        if type(generator) is not GeneratorType and not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self._generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self._target: Event | None = None
        # One bound method for the whole process lifetime: every
        # callbacks.append/remove uses the same object, so list.remove
        # matches on identity instead of building fresh bound methods.
        resume = self._resume_cb = self._resume
        shim = self._shim = _Resume(resume)
        # Kick off the process at the current time.
        shim.callbacks = shim._list
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, _PRIORITY_BAND + eid, shim))

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    @property
    def started(self) -> bool:
        """Whether the generator has had its first resume.

        Interrupting a process that never started throws into a fresh
        generator, which (by Python generator semantics) raises at the
        function header — *before* any ``try`` in the body — so the
        Interrupt is unhandleable and crashes the run.  Callers tearing
        down fleets of processes check this and leave unstarted ones to
        a cooperative flag instead.
        """
        if self._value is not PENDING:
            return True
        if type(self._generator) is not GeneratorType:
            return True  # delegating objects manage their own lifecycle
        return getgeneratorstate(self._generator) != GEN_CREATED

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume_cb)
        # Priority band 0: interrupts pre-empt same-timestamp events.
        eid = env._eid = env._eid + 1
        heappush(env._queue, (env._now, eid, interrupt_event))

    def _resume(self, trigger: Event) -> None:
        if self._value is not PENDING:
            return  # e.g. an interrupt landing after the process finished
        # Detach from the event that woke us.  When the trigger IS the
        # target (the common wake-up) its callback list was already
        # cleared by the fire path, so only foreign triggers (interrupts)
        # need the removal scan.
        target = self._target
        if target is not None:
            self._target = None
            if target is not trigger:
                callbacks = target.callbacks
                if callbacks is not None:
                    try:
                        callbacks.remove(self._resume_cb)
                    except ValueError:
                        pass
        env = self.env
        if env._tracer is not None:
            env._tracer._engine_resume()
        try:
            if trigger._ok:
                next_event = self._send(trigger._value)
            else:
                trigger._defused = True
                next_event = self._throw(trigger._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
            return
        except BaseException as error:
            self._ok = False
            self._value = error
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
            return
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process yielded {next_event!r}; processes must yield Events"
            )
        if next_event.env is not env:
            raise SimulationError("cannot wait on an event from another environment")
        if next_event.callbacks is None:
            # Already fired: resume at the same timestamp via the shim.
            shim = self._shim
            if shim.callbacks is None:
                shim._ok = next_event._ok
                shim._value = next_event._value
                shim._defused = False
                if not next_event._ok:
                    next_event._defused = True
                shim.callbacks = shim._list
                eid = env._eid = env._eid + 1
                heappush(env._queue, (env._now, _PRIORITY_BAND + eid, shim))
            else:
                # The shim is still queued (an interrupt pre-empted a
                # pending resume): allocate, as the reference engine does.
                resume = Event(env)
                resume._ok = next_event._ok
                resume._value = next_event._value
                if not next_event._ok:
                    next_event._defused = True
                resume.callbacks.append(self._resume_cb)
                eid = env._eid = env._eid + 1
                heappush(env._queue, (env._now, _PRIORITY_BAND + eid, resume))
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume_cb)


class Condition(Event):
    """Base for AllOf/AnyOf: fires when enough child events have fired."""

    __slots__ = ("_events", "_need_all", "_remaining", "_values", "_count_cb")

    def __init__(self, env: "Environment", events: Iterable[Event], need_all: bool):
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self._events = events = list(events)
        self._need_all = need_all
        self._remaining = len(events)
        # Child values accumulate here as children are counted — O(1)
        # per child instead of rescanning self._events on completion.
        self._values: dict[Event, Any] = {}
        for event in events:
            if event.env is not env:
                raise SimulationError("condition mixes events from different environments")
        if not events:
            self._ok = True
            self._value = self._values
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
            return
        count = self._count_cb = self._count
        for event in events:
            if event.callbacks is None:
                count(event)
            else:
                event.callbacks.append(count)

    def _count(self, event: Event) -> None:
        if not event._ok:
            # Defuse even after the condition resolved: a loser of an
            # AnyOf race that fails later is the condition's to absorb,
            # not a crash (simpy semantics).
            event._defused = True
        if self._value is not PENDING:
            return
        if not event._ok:
            self._ok = False
            self._value = event._value
            env = self.env
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))
            return
        self._values[event] = event._value
        self._remaining -= 1
        if not self._need_all or self._remaining == 0:
            self._ok = True
            self._value = self._values
            env = self.env
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, self))


class AllOf(Condition):
    """Fires when every child event has fired; value maps event -> value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=True)


class AnyOf(Condition):
    """Fires when the first child event fires."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, need_all=False)


class Environment:
    """The simulation clock and event queue."""

    __slots__ = ("_now", "_queue", "_eid", "_cancelled_pending", "_tracer", "_fire")

    def __init__(self, initial_time: float = 0.0, tracer: Any = None):
        self._now = initial_time
        self._queue: list[tuple[float, int, Any]] = []
        self._eid = 0
        self._cancelled_pending = 0
        self._tracer: Any = None
        self._fire = self._fire_fast
        if tracer is not None:
            self.set_tracer(tracer)

    @property
    def now(self) -> float:
        return self._now

    @property
    def tracer(self) -> Any:
        return self._tracer

    def set_tracer(self, tracer: Any) -> None:
        """Attach a :class:`repro.obs.Tracer`: binds its clock to this
        environment and turns on the engine's spawn/resume/fire/cancel
        accounting.  Detach by passing ``None`` — the hot loops then run
        the untraced fire path with no per-event tracer check at all
        (the check happens once, here, by swapping ``self._fire``)."""
        self._tracer = tracer
        if tracer is None:
            self._fire = self._fire_fast
        else:
            self._fire = self._fire_traced
            tracer.attach_clock(self)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        eid = self._eid = self._eid + 1
        heappush(self._queue,
                 (self._now + delay, priority * _PRIORITY_BAND + eid, event))

    def schedule_at(self, event: Event, when: float) -> None:
        """Schedule an already-decided event at an absolute time."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self._now})")
        eid = self._eid = self._eid + 1
        heappush(self._queue, (when, _PRIORITY_BAND + eid, event))

    # -- factories -----------------------------------------------------------
    #
    # The factories construct via __new__ and fill slots directly rather
    # than calling the class constructors: one Python frame per object
    # instead of two (three for Process).  The class __init__s stay the
    # source of truth for direct construction; keep both in sync.

    def event(self) -> Event:
        event = Event.__new__(Event)
        event.env = self
        event.callbacks = []
        event._value = PENDING
        event._ok = None
        event._defused = False
        event._cancelled = False
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._defused = False
        timeout._cancelled = False
        timeout.delay = delay
        eid = self._eid = self._eid + 1
        heappush(self._queue, (self._now + delay, _PRIORITY_BAND + eid, timeout))
        return timeout

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        if type(generator) is not GeneratorType and not hasattr(generator, "send"):
            raise SimulationError(f"Process needs a generator, got {generator!r}")
        proc = Process.__new__(Process)
        proc.env = self
        proc.callbacks = []
        proc._value = PENDING
        proc._ok = None
        proc._defused = False
        proc._cancelled = False
        proc._generator = generator
        proc._send = generator.send
        proc._throw = generator.throw
        proc._target = None
        resume = proc._resume_cb = proc._resume
        shim = proc._shim = _Resume.__new__(_Resume)
        shim._list = callbacks = [resume]
        shim._value = None
        shim._ok = True
        shim._defused = False
        shim._cancelled = False
        shim.callbacks = callbacks
        eid = self._eid = self._eid + 1
        heappush(self._queue, (self._now, _PRIORITY_BAND + eid, shim))
        if self._tracer is not None:
            self._tracer._engine_spawn()
        return proc

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------------

    def _purge_cancelled(self) -> None:
        """Drop cancelled events from the head of the queue (lazy delete)."""
        queue = self._queue
        tracer = self._tracer
        while queue and queue[0][2]._cancelled:
            heappop(queue)
            self._cancelled_pending -= 1
            if tracer is not None:
                tracer._engine_cancel()

    def _compact(self) -> None:
        """Rebuild the queue without cancelled entries (amortised purge).

        Triggered by :meth:`Event.cancel` once cancelled entries
        outnumber live ones (and exceed ``_COMPACT_MIN``): one list
        comprehension plus one ``heapify`` replaces N heap pops.  The
        queue list is mutated in place because the run loops hold local
        aliases to it.
        """
        queue = self._queue
        alive = [entry for entry in queue if not entry[2]._cancelled]
        dropped = len(queue) - len(alive)
        if dropped:
            queue[:] = alive
            heapify(queue)
            tracer = self._tracer
            if tracer is not None:
                for _ in range(dropped):
                    tracer._engine_cancel()
        self._cancelled_pending = 0

    def _fire_fast(self, event: Event) -> None:
        """Run a popped event's callbacks (tracer known absent)."""
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"unhandled event failure: {value!r}")

    def _fire_traced(self, event: Event) -> None:
        """Run a popped event's callbacks, recording it with the tracer."""
        self._tracer._engine_fire(event)
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            value = event._value
            if isinstance(value, BaseException):
                raise value
            raise SimulationError(f"unhandled event failure: {value!r}")

    def step(self) -> None:
        """Process the next event in the queue."""
        if self._cancelled_pending:
            self._purge_cancelled()
        queue = self._queue
        if not queue:
            raise SimulationError("no more events to process")
        when, _key, event = heappop(queue)
        if when < self._now:
            raise SimulationError("event queue went backwards in time")
        self._now = when
        self._fire(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        Returns the event's value when ``until`` is an event.

        Each loop below purges cancelled queue heads at most once per
        iteration (gated on the ``_cancelled_pending`` counter) and
        inlines the fire path instead of going through :meth:`step`, so
        the common case pays for neither a purge scan nor a tracer
        attribute load per event.  The tracer decision is latched when
        ``run`` is entered: attach tracers before running, not from
        inside a callback.
        """
        queue = self._queue
        now = self._now
        traced = self._tracer is not None
        if isinstance(until, Event):
            stop = until
            while stop.callbacks is not None:
                if self._cancelled_pending:
                    self._purge_cancelled()
                if not queue:
                    raise SimulationError(
                        "event queue is empty but the awaited event never fired"
                    )
                when, _key, event = heappop(queue)
                if when > now:
                    now = self._now = when
                if traced:
                    self._tracer._engine_fire(event)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if not event._ok and not event._defused:
                    value = event._value
                    if isinstance(value, BaseException):
                        raise value
                    raise SimulationError(f"unhandled event failure: {value!r}")
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            deadline = float(until)
            if deadline < self._now:
                raise SimulationError(f"deadline {deadline} is in the past (now={self._now})")
            while True:
                if self._cancelled_pending:
                    self._purge_cancelled()
                if not queue or queue[0][0] > deadline:
                    break
                when, _key, event = heappop(queue)
                if when > now:
                    now = self._now = when
                if traced:
                    self._tracer._engine_fire(event)
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if not event._ok and not event._defused:
                    value = event._value
                    if isinstance(value, BaseException):
                        raise value
                    raise SimulationError(f"unhandled event failure: {value!r}")
            self._now = deadline
            return None
        while True:
            if self._cancelled_pending:
                self._purge_cancelled()
            if not queue:
                break
            when, _key, event = heappop(queue)
            if when > now:
                now = self._now = when
            if traced:
                self._tracer._engine_fire(event)
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    callbacks[0](event)
                else:
                    for callback in callbacks:
                        callback(event)
            if not event._ok and not event._defused:
                value = event._value
                if isinstance(value, BaseException):
                    raise value
                raise SimulationError(f"unhandled event failure: {value!r}")
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        if self._cancelled_pending:
            self._purge_cancelled()
        queue = self._queue
        return queue[0][0] if queue else float("inf")
