"""Engine benchmarking: the ``repro bench --mode engine`` artefact.

The PR that introduced this module rewrote the hot paths of
:mod:`repro.sim.engine`; :mod:`repro.sim.reference` keeps the seed
engine frozen.  This bench runs the same workloads on both, reports
events/sec each, and pins the speedup as a committed invariant in
``BENCH_engine.json`` — the same machine-portable regression-gate
pattern as ``BENCH_sweep.json``.  Speedups are ratios of two runs on
the *same* machine, so the gate transfers across hardware even though
absolute events/sec do not.

The gated number is the ``microbench`` workload — the mixed primitive
loop (two already-processed-event resumes plus one timeout per
iteration) that exercises exactly the paths the optimisation targeted —
which must stay at or above :data:`GATE_FLOOR` (2x).  Per-workload
floors carry margin below their measured speedups so run-to-run jitter
does not flag false regressions.

Two further sections are informational or conditionally skipped:

* ``scenario`` — events/sec of a full dhlsim bulk campaign on the
  optimised engine (the reference engine cannot drive dhlsim, whose
  components type-check against the real classes).
* ``replicate`` — wall-clock of the Monte-Carlo harness fanning seeds
  across a process pool versus serial, plus the byte-identity check of
  their payloads.  Skipped (with the reason recorded) when
  ``cpu_count == 1``: a process pool on one core measures scheduler
  noise, not speedup.
"""

from __future__ import annotations

import gc
import json
import math
import os
import time
from dataclasses import dataclass
from random import Random
from typing import Callable, Mapping

from ..errors import ConfigurationError
from . import engine as _engine
from . import reference as _reference
from . import resources as _resources

SCHEMA = "repro-bench-engine/1"

DEFAULT_REPEATS: int = 5
"""Timing repeats per (workload, engine); the best run is reported."""

GATE_WORKLOAD = "microbench"
GATE_FLOOR: float = 2.0
"""The PR's headline invariant: >=2x events/sec on the microbenchmark."""

#: Minimum accepted optimised/reference speedup per workload.  Measured
#: speedups on the recording machine sit comfortably above these; the
#: floors leave ~15-25% headroom for cross-machine and run-to-run noise.
SPEEDUP_FLOORS: dict[str, float] = {
    "microbench": GATE_FLOOR,
    "resume": 2.2,
    "ticker": 1.6,
    "contention": 1.3,
    "chain": 1.3,
    "store": 1.3,
    "cancel": 1.1,
}


@dataclass(frozen=True)
class _EngineKit:
    """One engine implementation: the classes a workload needs."""

    name: str
    Environment: type
    Resource: type
    Store: type


OPTIMISED = _EngineKit(
    "optimised", _engine.Environment, _resources.Resource, _resources.Store
)
REFERENCE = _EngineKit(
    "reference", _reference.Environment, _reference.Resource, _reference.Store
)


# -- workloads ---------------------------------------------------------------
#
# Each workload builds a fresh environment from the kit, runs it to
# completion, and returns the environment's schedule counter — the
# number of events that went through the queue.  The optimised and
# reference engines schedule event-for-event identically (the parity
# tests assert this), so the counter is a fair events/sec numerator for
# both.


def _wl_microbench(kit: _EngineKit, n: int) -> int:
    """The gated mixed loop: 2 processed-event resumes + 1 timeout."""
    env = kit.Environment()
    ready = env.event()
    ready.succeed("token")

    def proc():
        for _ in range(n):
            yield ready
            yield ready
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    return env._eid


def _wl_resume(kit: _EngineKit, n: int) -> int:
    """Nothing but already-processed yields: the shim path, isolated."""
    env = kit.Environment()
    ready = env.event()
    ready.succeed(None)

    def proc():
        for _ in range(n):
            yield ready

    finished = env.process(proc())
    env.run(until=finished)
    return env._eid


def _wl_ticker(kit: _EngineKit, n: int) -> int:
    """Two interleaved timeout loops: the heap scheduling path."""
    env = kit.Environment()

    def ticker(step: float):
        for _ in range(n):
            yield env.timeout(step)

    env.process(ticker(1.0))
    env.process(ticker(1.5))
    env.run()
    return env._eid


def _wl_chain(kit: _EngineKit, n: int) -> int:
    """Spawn/wait/return chains: process lifecycle churn."""
    env = kit.Environment()

    def leaf(depth: int):
        yield env.timeout(1.0)
        return depth

    def chain():
        total = 0
        for depth in range(n):
            total += yield env.process(leaf(depth))
        return total

    finished = env.process(chain())
    env.run(until=finished)
    return env._eid


def _wl_contention(kit: _EngineKit, n: int) -> int:
    """Many workers on a capacity-2 resource: the tube pattern."""
    env = kit.Environment()
    resource = kit.Resource(env, capacity=2)

    def worker():
        with resource.request() as claim:
            yield claim
            yield env.timeout(1.0)

    for _ in range(n):
        env.process(worker())
    env.run()
    return env._eid


def _wl_store(kit: _EngineKit, n: int) -> int:
    """Producer/consumer hand-off through a Store: the delivery pattern."""
    env = kit.Environment()
    store = kit.Store(env)

    def producer():
        for item in range(n):
            yield store.put(item)
            yield env.timeout(0.001)

    def consumer():
        for _ in range(n):
            yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    return env._eid


def _wl_cancel(kit: _EngineKit, n: int) -> int:
    """Race winners cancelling losers: the lazy-delete/compaction path."""
    env = kit.Environment()

    def racer():
        for _ in range(n):
            losers = [env.timeout(10.0) for _ in range(10)]
            yield env.timeout(0.001)
            for loser in losers:
                loser.cancel()

    finished = env.process(racer())
    env.run(until=finished)
    return env._eid


#: name -> (workload fn, iteration count at scale=1.0), gate first.
WORKLOADS: dict[str, tuple[Callable[[_EngineKit, int], int], int]] = {
    "microbench": (_wl_microbench, 20_000),
    "resume": (_wl_resume, 30_000),
    "ticker": (_wl_ticker, 10_000),
    "chain": (_wl_chain, 3_000),
    "contention": (_wl_contention, 2_000),
    "store": (_wl_store, 4_000),
    "cancel": (_wl_cancel, 1_500),
}


# -- replicate section workload ---------------------------------------------


def replicate_probe(seed: int) -> dict[str, float]:
    """One seeded queueing run for the bench's replicate section.

    Module-level (picklable) so :func:`repro.sim.replicate.replicate`
    can fan it across process workers: a capacity-2 station serving
    jobs with seeded exponential inter-arrivals, returning wait-time
    KPIs.  Deterministic per seed.
    """
    rng = Random(seed)
    env = _engine.Environment()
    station = _resources.Resource(env, capacity=2)
    waits: list[float] = []

    def job(arrival: float):
        with station.request() as claim:
            yield claim
            waits.append(env.now - arrival)
            yield env.timeout(1.0)

    def source():
        for _ in range(400):
            yield env.timeout(rng.expovariate(1.5))
            env.process(job(env.now))

    env.process(source())
    env.run()
    ordered = sorted(waits)
    return {
        "jobs": float(len(waits)),
        "mean_wait_s": math.fsum(waits) / len(waits),
        "p95_wait_s": ordered[int(0.95 * (len(ordered) - 1))],
        "makespan_s": env.now,
    }


# -- timing ------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadResult:
    """Best-of-N timings of one workload on both engines."""

    name: str
    iterations: int
    events: int
    optimised_s: float
    reference_s: float
    events_identical: bool

    @property
    def optimised_events_per_sec(self) -> float:
        return self.events / self.optimised_s

    @property
    def reference_events_per_sec(self) -> float:
        return self.events / self.reference_s

    @property
    def speedup(self) -> float:
        return self.reference_s / self.optimised_s


@dataclass(frozen=True)
class EngineBenchReport:
    """Outcome of one engine bench: per-workload timings plus extras."""

    repeats: int
    scale: float
    results: tuple[WorkloadResult, ...]
    scenario: Mapping[str, object]
    replicate: Mapping[str, object]

    def result(self, name: str) -> WorkloadResult:
        for entry in self.results:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"workload {name!r} was not benched")

    @property
    def gate_speedup(self) -> float:
        return self.result(GATE_WORKLOAD).speedup

    @property
    def gate_passed(self) -> bool:
        return self.gate_speedup >= GATE_FLOOR

    @property
    def all_events_identical(self) -> bool:
        return all(entry.events_identical for entry in self.results)


def _best_of(fn: Callable[[], int], repeats: int) -> tuple[int, float]:
    """(result, best wall-clock) over ``repeats`` runs, gc paused."""
    best = math.inf
    value = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return value, best


def _time_scenario(repeats: int) -> dict[str, object]:
    """Informational: events/sec of a dhlsim bulk campaign (optimised)."""
    # Lazy import: dhlsim pulls the whole operational simulator in.
    from ..dhlsim import DhlApi, DhlSystem
    from ..storage import synthetic_dataset
    from ..units import TB

    def run() -> int:
        env = _engine.Environment()
        system = DhlSystem(env, stations_per_rack=2)
        dataset = synthetic_dataset(6 * 256 * TB, name="bench")
        system.load_dataset(dataset)
        api = DhlApi(system)
        env.run(until=api.bulk_transfer(dataset))
        return env._eid

    events, best_s = _best_of(run, repeats)
    return {
        "name": "dhlsim-bulk-6-carts",
        "events": events,
        "best_s": round(best_s, 6),
        "events_per_sec": round(events / best_s, 1),
    }


def _time_replicate(seeds: int, workers: int | None) -> dict[str, object]:
    """Serial vs process-pool Monte-Carlo fan-out, or a recorded skip."""
    cpu_count = os.cpu_count() or 1
    if cpu_count == 1 and not (workers and workers > 1):
        # A process pool on one core measures scheduler noise, not
        # speedup; record why rather than committing a junk comparison.
        return {"skipped": "cpu_count == 1"}
    from .replicate import render_payload, replicate, result_payload

    seed_list = range(seeds)
    timings: dict[str, float] = {}
    payloads: dict[str, str] = {}
    for engine in ("serial", "process"):
        started = time.perf_counter()
        result = replicate(
            replicate_probe, seed_list, engine=engine,
            workers=workers if engine == "process" else None,
        )
        timings[engine] = time.perf_counter() - started
        payloads[engine] = render_payload(result_payload(result))
    return {
        "seeds": seeds,
        "serial_s": round(timings["serial"], 6),
        "process_s": round(timings["process"], 6),
        "speedup": round(timings["serial"] / timings["process"], 3),
        "identical_payloads": payloads["serial"] == payloads["process"],
    }


def run_engine_bench(
    repeats: int = DEFAULT_REPEATS,
    scale: float = 1.0,
    workers: int | None = None,
    include_scenario: bool = True,
    include_replicate: bool = True,
    replicate_seeds: int = 4,
) -> EngineBenchReport:
    """Time every workload on both engines; best run of each counts.

    ``scale`` multiplies every workload's iteration count (tests use a
    small fraction); the committed baseline uses 1.0.
    """
    if repeats <= 0:
        raise ConfigurationError("repeats must be >= 1")
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    results: list[WorkloadResult] = []
    for name, (fn, base_n) in WORKLOADS.items():
        n = max(1, int(base_n * scale))
        opt_events, opt_s = _best_of(lambda: fn(OPTIMISED, n), repeats)
        ref_events, ref_s = _best_of(lambda: fn(REFERENCE, n), repeats)
        results.append(WorkloadResult(
            name=name,
            iterations=n,
            events=opt_events,
            optimised_s=opt_s,
            reference_s=ref_s,
            events_identical=opt_events == ref_events,
        ))
    scenario = _time_scenario(repeats) if include_scenario else {"skipped": "disabled"}
    replicate = (
        _time_replicate(replicate_seeds, workers)
        if include_replicate else {"skipped": "disabled"}
    )
    return EngineBenchReport(
        repeats=repeats,
        scale=scale,
        results=tuple(results),
        scenario=scenario,
        replicate=replicate,
    )


# -- reporting ---------------------------------------------------------------


def environment_info() -> dict[str, object]:
    """The hardware/software context a baseline was measured under."""
    from ..analysis.perf import environment_info as _info

    return _info()


def report_payload(report: EngineBenchReport) -> dict[str, object]:
    """The JSON-serialisable form of a bench report (``BENCH_engine.json``)."""
    return {
        "schema": SCHEMA,
        "repeats": report.repeats,
        "scale": report.scale,
        "gate": {
            "workload": GATE_WORKLOAD,
            "floor": GATE_FLOOR,
            "speedup": round(report.gate_speedup, 3),
            "passed": report.gate_passed,
        },
        "events_identical": report.all_events_identical,
        "workloads": {
            entry.name: {
                "iterations": entry.iterations,
                "events": entry.events,
                "optimised_s": round(entry.optimised_s, 6),
                "reference_s": round(entry.reference_s, 6),
                "optimised_events_per_sec": round(entry.optimised_events_per_sec, 1),
                "reference_events_per_sec": round(entry.reference_events_per_sec, 1),
                "speedup": round(entry.speedup, 3),
                "floor": SPEEDUP_FLOORS[entry.name],
            }
            for entry in report.results
        },
        "scenario": dict(report.scenario),
        "replicate": dict(report.replicate),
        "environment": environment_info(),
    }


def write_report(report: EngineBenchReport, path: str) -> str:
    """Write ``BENCH_engine.json`` and return the path."""
    payload = report_payload(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed engine-bench baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    ratio_floor: float = 0.6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    Absolute events/sec are machine-dependent; speedups are same-machine
    ratios, so both sides are held to the committed floors directly.
    The fresh per-workload speedups must additionally stay above
    ``ratio_floor`` of the baseline's — a collapse of relative
    performance flags a regression even where a floor still passes.
    The replicate byte-identity invariant must hold wherever the
    section ran (it is recorded as skipped on 1-core machines).
    """
    problems: list[str] = []
    for side, report in (("fresh", payload), ("baseline", baseline)):
        gate = dict(report.get("gate", {}))
        if not gate.get("passed", False):
            problems.append(
                f"{side} gate failed: {GATE_WORKLOAD} speedup "
                f"{gate.get('speedup')}x is below the {GATE_FLOOR:.1f}x floor"
            )
        if not report.get("events_identical", False):
            problems.append(
                f"{side} engines no longer schedule identical event counts"
            )
        replicate = dict(report.get("replicate", {}))
        if "skipped" not in replicate and not replicate.get(
            "identical_payloads", False
        ):
            problems.append(
                f"{side} replicate payloads differ between serial and process"
            )
    fresh_workloads = dict(payload.get("workloads", {}))
    base_workloads = dict(baseline.get("workloads", {}))
    for name, base_entry in base_workloads.items():
        floor = float(dict(base_entry).get("floor", 0.0))
        base_speedup = float(dict(base_entry).get("speedup", 0.0))
        if base_speedup < floor:
            problems.append(
                f"baseline {name} speedup {base_speedup:.2f}x is below its "
                f"{floor:.1f}x floor"
            )
        fresh_entry = fresh_workloads.get(name)
        if fresh_entry is None:
            problems.append(f"workload {name!r} missing from fresh run")
            continue
        fresh_speedup = float(dict(fresh_entry).get("speedup", 0.0))
        if fresh_speedup < floor:
            problems.append(
                f"{name} speedup {fresh_speedup:.2f}x is below its "
                f"{floor:.1f}x floor"
            )
        if base_speedup and fresh_speedup < base_speedup * ratio_floor:
            problems.append(
                f"{name} speedup {fresh_speedup:.2f}x regressed below "
                f"{ratio_floor:.0%} of the baseline's {base_speedup:.2f}x"
            )
    return problems


def bench_table(report: EngineBenchReport) -> tuple[list[str], list[list[object]]]:
    """Headers and rows for the CLI rendering of an engine bench."""
    headers = [
        "Workload", "Events", "Optimised ev/s", "Reference ev/s",
        "Speedup", "Floor",
    ]
    rows: list[list[object]] = []
    for entry in report.results:
        rows.append([
            entry.name + (" (gate)" if entry.name == GATE_WORKLOAD else ""),
            entry.events,
            f"{entry.optimised_events_per_sec:,.0f}",
            f"{entry.reference_events_per_sec:,.0f}",
            f"{entry.speedup:.2f}x",
            f"{SPEEDUP_FLOORS[entry.name]:.1f}x",
        ])
    return headers, rows
