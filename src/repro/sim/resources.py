"""Shared-resource primitives for the discrete-event engine.

Mirrors simpy's resource layer closely enough for the DHL simulators:

* :class:`Resource` — capacity-limited, FIFO request queue, used for
  track occupancy and dock slots.
* :class:`PriorityResource` — requests carry a priority (lower first).
* :class:`Store` — a FIFO buffer of Python objects (carts, messages).
* :class:`Container` — a continuous level (bytes buffered at an endpoint).
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Any, Callable

from ..errors import SimulationError
from .engine import PENDING, _PRIORITY_BAND, Environment, Event


class Request(Event):
    """A pending claim on a :class:`Resource`; fires when granted.

    Usable as a context manager so ``with resource.request() as req:``
    releases automatically.
    """

    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource"):
        # Flat init (no super() chain): requests are allocated on every
        # resource claim, squarely on the engine's hot path.
        self.env = resource.env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self._defused = False
        self._cancelled = False
        self.resource = resource
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.resource._release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class Resource:
    """A counted resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of grants currently held."""
        return len(self.users)

    def request(self) -> Request:
        """Claim one unit; the returned event fires once granted.

        Construction and the immediate-grant succeed are inlined (no
        constructor or ``succeed`` frame): requests are the engine's
        hottest allocation after timeouts.
        """
        env = self.env
        request = Request.__new__(Request)
        request.env = env
        request.callbacks = []
        request._defused = False
        request._cancelled = False
        request.resource = self
        request._released = False
        if len(self.users) < self.capacity:
            self.users.append(request)
            request._ok = True
            request._value = request
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, request))
        else:
            request._ok = None
            request._value = PENDING
            self.queue.append(request)
        return request

    def _release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        else:
            # Cancelled before being granted.
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release of a request this resource never saw") from None
            return
        env = self.env
        while self.queue and len(self.users) < self.capacity:
            waiter = self.queue.popleft()
            self.users.append(waiter)
            # Inline succeed(waiter): queued waiters are never triggered.
            waiter._ok = True
            waiter._value = waiter
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, waiter))


class PriorityRequest(Request):
    """A resource request with a priority (lower value = served earlier)."""

    __slots__ = ("priority",)

    def __init__(self, resource: "PriorityResource", priority: int):
        self.priority = priority
        super().__init__(resource)


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority, then FIFO."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: list[tuple[int, int, PriorityRequest]] = []
        self._order = 0

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        request = PriorityRequest(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed(request)
        else:
            self._order += 1
            heapq.heappush(self._heap, (priority, self._order, request))
        return request

    def _release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
        else:
            self._heap = [entry for entry in self._heap if entry[2] is not request]
            heapq.heapify(self._heap)
            return
        while self._heap and len(self.users) < self.capacity:
            _, _, waiter = heapq.heappop(self._heap)
            self.users.append(waiter)
            waiter.succeed(waiter)


class Store:
    """A FIFO buffer of items with blocking put/get.

    ``capacity`` bounds the number of buffered items (put blocks when
    full); the default is unbounded.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Deposit ``item``; fires immediately unless the store is full.

        The event construction and immediate succeed are inlined, as in
        :meth:`Resource.request`.
        """
        env = self.env
        event = Event.__new__(Event)
        event.env = env
        event.callbacks = []
        event._defused = False
        event._cancelled = False
        if len(self.items) < self.capacity:
            self.items.append(item)
            event._ok = True
            event._value = None
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, event))
            self._serve_getters()
        else:
            event._ok = None
            event._value = PENDING
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; fires when one is available."""
        env = self.env
        event = Event.__new__(Event)
        event.env = env
        event.callbacks = []
        event._defused = False
        event._cancelled = False
        if self.items:
            event._ok = True
            event._value = self.items.popleft()
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, event))
            self._serve_putters()
        else:
            event._ok = None
            event._value = PENDING
            self._getters.append(event)
        return event

    def get_matching(self, predicate: Callable[[Any], bool]) -> Event:
        """Take the oldest item satisfying ``predicate`` if one is buffered.

        Unlike :meth:`get`, this never blocks: the event fails with
        :class:`SimulationError` when nothing matches right now.
        """
        event = Event(self.env)
        for index, item in enumerate(self.items):
            if predicate(item):
                del self.items[index]
                event.succeed(item)
                self._serve_putters()
                return event
        event.fail(SimulationError("no matching item in store"))
        event.defuse()
        return event

    def _serve_getters(self) -> None:
        env = self.env
        while self._getters and self.items:
            getter = self._getters.popleft()
            # Inline succeed: queued getters are never triggered.
            getter._ok = True
            getter._value = self.items.popleft()
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, getter))

    def _serve_putters(self) -> None:
        env = self.env
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self.items.append(item)
            putter._ok = True
            putter._value = None
            eid = env._eid = env._eid + 1
            heappush(env._queue, (env._now, _PRIORITY_BAND + eid, putter))
            self._serve_getters()

    def __len__(self) -> int:
        return len(self.items)


class Container:
    """A continuous quantity (e.g. bytes buffered) with blocking put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf"),
                 initial: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"container capacity must be positive, got {capacity}")
        if not 0 <= initial <= capacity:
            raise SimulationError(f"initial level {initial} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = initial
        self._getters: deque[tuple[Event, float]] = deque()
        self._putters: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError(f"put amount must be positive, got {amount}")
        if amount > self.capacity:
            raise SimulationError(f"put of {amount} exceeds capacity {self.capacity}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise SimulationError(f"get amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    event.succeed()
                    progressed = True
