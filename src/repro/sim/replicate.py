"""Seeded Monte-Carlo replication: many runs, one confidence interval.

Every simulation in this repo is deterministic given its seed, so a
single run answers "what happens under seed 0" — not "what happens".
This module turns any picklable ``seed -> {metric: value}`` function
into a replicated estimate: it fans the seed list across the
order-preserving :func:`repro.core.sweep.map_chunks` dispatcher
(serial in-process or a ``ProcessPoolExecutor``), then merges the
per-seed outputs into per-metric mean / sample standard deviation /
95% confidence interval / tail percentiles (the percentile rule is
:mod:`repro.core.percentiles`, the repo's single definition).

Determinism is the design constraint: ``map_chunks`` concatenates
chunk results in submission order, the merge is pure arithmetic over
those ordered outputs, and :func:`result_payload` deliberately excludes
everything engine- or machine-dependent (engine name, worker count,
wall time).  The same seed list therefore serialises to byte-identical
reports whichever engine ran it — the invariant
``tests/sim/test_replicate.py`` and the CLI's ``--engine both`` mode
assert.

:mod:`repro.fleet.montecarlo` instantiates this for fleet scenarios.
"""

from __future__ import annotations

import functools
import json
import math
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..core.percentiles import percentiles
from ..core.sweep import map_chunks
from ..errors import ConfigurationError

SCHEMA = "repro-replicate/1"

ENGINES: tuple[str, ...] = ("auto", "serial", "process")
"""Engine names accepted by :func:`replicate` (see ``map_chunks``)."""

Z_95 = 1.96
"""Normal z-score for the two-sided 95% confidence interval."""

#: Decimal places every payload float is rounded to.
_PAYLOAD_DIGITS = 6


def _run_chunk(run_one: Callable[[int], Mapping[str, float]],
               chunk: tuple[int, ...]) -> tuple[Mapping[str, float], ...]:
    """Process-pool worker: evaluate one chunk of seeds in order."""
    return tuple(run_one(seed) for seed in chunk)


@dataclass(frozen=True)
class MetricStats:
    """Replication statistics of one metric across all seeds."""

    name: str
    n: int
    mean: float
    std: float
    ci95: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float


def summarise(name: str, samples: Iterable[float]) -> MetricStats:
    """Merge one metric's per-seed samples into a :class:`MetricStats`.

    ``std`` is the sample standard deviation (``ddof=1``; 0.0 for a
    single replication) and ``ci95`` the normal-approximation half-width
    ``1.96 * std / sqrt(n)`` — the error bar a replicated table quotes.
    """
    values = [float(value) for value in samples]
    if not values:
        raise ConfigurationError(f"metric {name!r} has no samples")
    n = len(values)
    mean = math.fsum(values) / n
    if n > 1:
        variance = math.fsum((value - mean) ** 2 for value in values) / (n - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    tails = percentiles(values, (50.0, 95.0, 99.0))
    return MetricStats(
        name=name,
        n=n,
        mean=mean,
        std=std,
        ci95=Z_95 * std / math.sqrt(n),
        p50=tails[50.0],
        p95=tails[95.0],
        p99=tails[99.0],
        minimum=min(values),
        maximum=max(values),
    )


@dataclass(frozen=True)
class ReplicationResult:
    """All per-seed outputs of one replication plus their merged stats."""

    seeds: tuple[int, ...]
    engine: str
    per_seed: tuple[Mapping[str, float], ...]
    stats: tuple[MetricStats, ...]
    wall_s: float

    def stat(self, name: str) -> MetricStats:
        for entry in self.stats:
            if entry.name == name:
                return entry
        raise ConfigurationError(f"metric {name!r} was not replicated")


def replicate(
    run_one: Callable[[int], Mapping[str, float]],
    seeds: Iterable[int],
    engine: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
) -> ReplicationResult:
    """Run ``run_one`` under every seed and merge the outputs.

    ``run_one`` must be deterministic per seed, return the same metric
    keys for every seed, and — for the ``"process"`` engine — be
    picklable (a module-level function, or ``functools.partial`` over
    one with picklable arguments).
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    seed_list = tuple(int(seed) for seed in seeds)
    if not seed_list:
        raise ConfigurationError("at least one seed is required")
    if len(set(seed_list)) != len(seed_list):
        raise ConfigurationError("replication seeds must be unique")
    started = time.perf_counter()
    outputs = map_chunks(
        functools.partial(_run_chunk, run_one),
        seed_list,
        engine=engine,
        workers=workers,
        chunk_size=chunk_size,
    )
    wall_s = time.perf_counter() - started
    expected = set(outputs[0])
    if not expected:
        raise ConfigurationError("run_one returned no metrics")
    for seed, output in zip(seed_list, outputs):
        if set(output) != expected:
            raise ConfigurationError(
                f"seed {seed} produced metrics {sorted(output)} but seed "
                f"{seed_list[0]} produced {sorted(expected)}"
            )
    stats = tuple(
        summarise(name, [output[name] for output in outputs])
        for name in sorted(expected)
    )
    return ReplicationResult(
        seeds=seed_list,
        engine=engine,
        per_seed=tuple(dict(output) for output in outputs),
        stats=stats,
        wall_s=wall_s,
    )


# -- deterministic reporting -------------------------------------------------


def result_payload(result: ReplicationResult) -> dict[str, object]:
    """The JSON-serialisable form of a replication.

    Engine name, worker count and wall time are deliberately absent:
    the payload is a function of the seed list alone, so serial and
    process runs of the same seeds serialise byte-identically.
    """
    digits = _PAYLOAD_DIGITS
    return {
        "schema": SCHEMA,
        "n_replications": len(result.seeds),
        "seeds": list(result.seeds),
        "metrics": {
            entry.name: {
                "mean": round(entry.mean, digits),
                "std": round(entry.std, digits),
                "ci95": round(entry.ci95, digits),
                "p50": round(entry.p50, digits),
                "p95": round(entry.p95, digits),
                "p99": round(entry.p99, digits),
                "min": round(entry.minimum, digits),
                "max": round(entry.maximum, digits),
            }
            for entry in result.stats
        },
        "per_seed": [
            {"seed": seed,
             **{name: round(float(value), digits)
                for name, value in sorted(output.items())}}
            for seed, output in zip(result.seeds, result.per_seed)
        ],
    }


def render_payload(payload: Mapping[str, object]) -> str:
    """The canonical byte form of a payload (sorted keys, 2-space indent)."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_report(payload: Mapping[str, object], path: str) -> str:
    """Write a replication payload in canonical form and return the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_payload(payload))
    return path


def replicate_table(result: ReplicationResult) -> tuple[list[str], list[list[object]]]:
    """Headers and rows for the CLI rendering of a replication."""
    headers = ["Metric", "Mean", "±CI95", "Std", "p50", "p95", "Min", "Max"]
    rows: list[list[object]] = []
    for entry in result.stats:
        rows.append([
            entry.name,
            f"{entry.mean:.3f}",
            f"{entry.ci95:.3f}",
            f"{entry.std:.3f}",
            f"{entry.p50:.3f}",
            f"{entry.p95:.3f}",
            f"{entry.minimum:.3f}",
            f"{entry.maximum:.3f}",
        ])
    return headers, rows
