"""Reusable property-based testing machinery for the DHL repro.

Everything here requires `hypothesis <https://hypothesis.works>`_ (an
optional ``test`` extra); importing :mod:`repro.testing` without it
raises a clear error instead of an obscure one mid-suite.

* :mod:`repro.testing.strategies` — hypothesis strategies for the
  repro's value types: physics parameters, dataset sizes, chaos specs,
  fault campaigns, degradation policies and whole fleet scenarios.
  Promoted out of the test tree so every suite (and downstream users)
  draw from one vocabulary of "valid configuration".
* :mod:`repro.testing.statemachine` — stateful fuzzing: a DHL API
  machine issuing random Open/Close/Read/Write sequences and a fleet
  machine issuing dispatch sequences, both optionally under an active
  chaos campaign, with conservation/leak/ordering invariants checked
  after every rule.  Each machine doubles as a plain object with
  ``do_*`` methods plus a deterministic seeded :func:`random_walk`
  driver, so CI can pin an exact >= 500-rule replay independent of
  hypothesis' example scheduling.
* :mod:`repro.testing.traffic` — the demand layer's vocabulary and
  fuzz target: strategies for trace records, tenant profiles and whole
  synthesis specs, plus :class:`TraceReplayMachine`, which emits
  monotone records, encodes them live through both codecs, and
  open-loop injects them into a chaos-ridden control plane while
  checking round-trip identity and cart conservation.
* :mod:`repro.testing.surrogate` — the surrogate layer's vocabulary
  and fuzz target: strategies for scenario points, fit configurations
  and synthetic training rows, plus :class:`SurrogateFitMachine`,
  which drives random train/predict/refit sequences (with misuse
  probes) while checking fingerprint determinism, finite non-negative
  predictions, pessimistic >= median ordering and capacity
  monotonicity after every rule.
* :mod:`repro.testing.learn` — the learned-control layer's vocabulary
  and fuzz target: strategies for joint actions, environment
  configurations and policies of every family, plus
  :class:`FleetEnvMachine`, which interleaves legal epoch steps with
  illegal-usage probes against the gym contract (monotone virtual
  time, normalised observations, rejected misuse without side effects,
  no leaked carts at drain).
"""

try:
    import hypothesis  # noqa: F401
except ImportError as exc:  # pragma: no cover - exercised only sans extra
    raise ImportError(
        "repro.testing requires the 'hypothesis' package; install the "
        "project's [test] extra"
    ) from exc

from .learn import (
    FleetEnvMachine,
    FleetEnvStateMachine,
    actions,
    env_configs,
    learn_policies,
)
from .statemachine import (
    DhlApiMachine,
    DhlApiStateMachine,
    FleetDispatchMachine,
    FleetStateMachine,
    ShardCosimMachine,
    ShardCosimStateMachine,
    random_walk,
)
from .strategies import (
    campaign_events,
    chaos_campaigns,
    chaos_specs,
    degradation_policies,
    dhl_params,
    fleet_scenarios,
    valid_lengths,
    valid_sizes_pb,
    valid_speeds,
    valid_ssds,
)
from .surrogate import (
    SurrogateFitMachine,
    SurrogateFitStateMachine,
    fit_configs,
    scenario_points,
    synthetic_row,
    training_rows,
)
from .traffic import (
    TraceReplayMachine,
    TraceReplayStateMachine,
    fuzz_header,
    tenant_profiles,
    trace_records,
    trace_specs,
)

__all__ = [
    "DhlApiMachine",
    "DhlApiStateMachine",
    "FleetDispatchMachine",
    "FleetEnvMachine",
    "FleetEnvStateMachine",
    "FleetStateMachine",
    "ShardCosimMachine",
    "ShardCosimStateMachine",
    "SurrogateFitMachine",
    "SurrogateFitStateMachine",
    "TraceReplayMachine",
    "TraceReplayStateMachine",
    "actions",
    "campaign_events",
    "chaos_campaigns",
    "chaos_specs",
    "degradation_policies",
    "dhl_params",
    "env_configs",
    "fit_configs",
    "fleet_scenarios",
    "fuzz_header",
    "learn_policies",
    "random_walk",
    "scenario_points",
    "synthetic_row",
    "training_rows",
    "tenant_profiles",
    "trace_records",
    "trace_specs",
    "valid_lengths",
    "valid_sizes_pb",
    "valid_speeds",
    "valid_ssds",
]
