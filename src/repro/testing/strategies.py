"""Hypothesis strategies for the repro's value types.

One vocabulary of "valid configuration", shared by the property suites
and the stateful fuzzer.  Ranges mirror the validation bounds of the
underlying dataclasses: everything drawn here constructs without a
:class:`~repro.errors.ConfigurationError`, so shrinking explores the
behaviour space rather than the input-validation space.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..chaos.campaigns import (
    BROWNOUT,
    CACHE_NODE_LOSS,
    CART_BATCH_FAILURE,
    CampaignEvent,
    ChaosCampaign,
    TRACK_OUTAGE,
)
from ..core.params import DhlParams
from ..dhlsim.reliability import ChaosSpec
from ..fleet.cache import CacheConfig
from ..fleet.controlplane import POLICIES, FleetScenario
from ..fleet.health import DegradationPolicy

#: Physically sensible operating ranges (paper Figs. 3-5 sweep inside them).
valid_speeds = st.floats(min_value=5.0, max_value=400.0)
valid_lengths = st.floats(min_value=5.0, max_value=5000.0)
valid_ssds = st.integers(min_value=1, max_value=128)
valid_sizes_pb = st.floats(min_value=0.01, max_value=200.0)


@st.composite
def dhl_params(draw) -> DhlParams:
    """A valid :class:`~repro.core.params.DhlParams` design point."""
    return DhlParams(
        max_speed=draw(valid_speeds),
        track_length=draw(valid_lengths),
        ssds_per_cart=draw(valid_ssds),
    )


@st.composite
def chaos_specs(draw) -> ChaosSpec:
    """A background fault cocktail with bounded, always-repairable faults.

    MTTFs are kept comfortably above MTTRs so a fuzzed system spends
    most of its time healthy — the interesting interleavings come from
    faults landing *during* operations, not from a permanently dead rig.
    """
    maybe_mttf = st.one_of(st.none(), st.floats(min_value=200.0, max_value=5000.0))
    return ChaosSpec(
        track_mttf_s=draw(maybe_mttf),
        track_mttr_s=draw(st.floats(min_value=1.0, max_value=120.0)),
        lim_mttf_s=draw(maybe_mttf),
        lim_mttr_s=draw(st.floats(min_value=1.0, max_value=120.0)),
        lim_slowdown=draw(st.floats(min_value=1.0, max_value=8.0)),
        dock_mttf_s=draw(maybe_mttf),
        dock_mttr_s=draw(st.floats(min_value=1.0, max_value=120.0)),
        stall_prob=draw(st.floats(min_value=0.0, max_value=0.3)),
        stall_time_s=draw(st.floats(min_value=0.0, max_value=30.0)),
        stall_abort_prob=draw(st.floats(min_value=0.0, max_value=0.3)),
        drive_failure_prob=draw(st.floats(min_value=0.0, max_value=0.01)),
        distribution=draw(st.sampled_from(("exponential", "fixed"))),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@st.composite
def campaign_events(draw, n_tracks: int = 2, horizon_s: float = 3600.0) -> CampaignEvent:
    """One valid scheduled fault within ``horizon_s``."""
    kind = draw(
        st.sampled_from(
            (TRACK_OUTAGE, BROWNOUT, CART_BATCH_FAILURE, CACHE_NODE_LOSS)
        )
    )
    track = draw(
        st.one_of(st.none(), st.integers(min_value=0, max_value=n_tracks - 1))
    )
    at_s = draw(st.floats(min_value=0.0, max_value=horizon_s * 0.8))
    if kind in (TRACK_OUTAGE, BROWNOUT):
        duration_s = draw(st.floats(min_value=10.0, max_value=horizon_s / 4))
    else:
        duration_s = 0.0
    if kind == BROWNOUT:
        intensity = draw(st.floats(min_value=1.0, max_value=8.0))
    elif kind == CART_BATCH_FAILURE:
        intensity = draw(st.floats(min_value=1e-4, max_value=0.05))
    else:
        intensity = 0.0
    return CampaignEvent(
        kind=kind,
        at_s=at_s,
        duration_s=duration_s,
        track=track,
        intensity=intensity,
    )


@st.composite
def chaos_campaigns(draw, n_tracks: int = 2, horizon_s: float = 3600.0) -> ChaosCampaign:
    """A valid campaign: 1-5 scheduled events, optional background, crews."""
    events = tuple(
        draw(
            st.lists(
                campaign_events(n_tracks=n_tracks, horizon_s=horizon_s),
                min_size=1,
                max_size=5,
            )
        )
    )
    background = draw(st.one_of(st.none(), chaos_specs()))
    return ChaosCampaign(
        name="fuzzed",
        events=events,
        background=background,
        crews=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=3))),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
    )


@st.composite
def degradation_policies(draw) -> DegradationPolicy:
    """A valid breaker/shedding configuration."""
    return DegradationPolicy(
        failure_threshold=draw(st.integers(min_value=1, max_value=10)),
        reset_timeout_s=draw(st.floats(min_value=10.0, max_value=600.0)),
        half_open_probes=draw(st.integers(min_value=1, max_value=4)),
        shed_classes=draw(
            st.sampled_from(((), ("archive",), ("archive", "batch")))
        ),
        divert_queued=draw(st.booleans()),
    )


@st.composite
def fleet_scenarios(draw, with_chaos: bool = False) -> FleetScenario:
    """A valid (small-horizon) fleet scenario for end-to-end properties."""
    cache = draw(
        st.one_of(
            st.none(),
            st.builds(
                CacheConfig,
                policy=st.sampled_from(("lru", "lfu", "ttl")),
                ttl_s=st.floats(min_value=60.0, max_value=1200.0),
            ),
        )
    )
    horizon_s = draw(st.floats(min_value=600.0, max_value=1800.0))
    chaos = (
        draw(st.one_of(st.none(), chaos_campaigns(horizon_s=horizon_s)))
        if with_chaos
        else None
    )
    degradation = (
        draw(st.one_of(st.none(), degradation_policies())) if with_chaos else None
    )
    return FleetScenario(
        policy=draw(st.sampled_from(POLICIES)),
        cache=cache,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon_s=horizon_s,
        chaos=chaos,
        degradation=degradation,
    )
