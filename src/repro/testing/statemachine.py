"""Stateful fuzzing of the DHL API, fleet control plane and shard runner.

Each machine here is usable three ways:

* directly — ``do_*`` methods drive one operation to completion on the
  DES clock and ``check()`` asserts the invariants;
* through :func:`random_walk` — a seeded, deterministic driver that
  issues a pinned number of random rules (CI's >= 500-rule gate replays
  bit-identically);
* through hypothesis — :class:`DhlApiStateMachine`,
  :class:`FleetStateMachine` and :class:`ShardCosimStateMachine` wrap
  them as :class:`~hypothesis.stateful.RuleBasedStateMachine`\\ s, so
  shrinking finds minimal failing operation sequences.

:class:`ShardCosimMachine` fuzzes the sharded co-simulator itself:
rules reshard the fleet (pod count, boundary latency, chaos on/off)
between short campaigns and every run re-checks the co-simulation
contract — no job lost or duplicated across shard boundaries, the
forwarded/outcome-note counters balanced, and previously seen
configurations reproduced byte for byte.

Invariants checked after **every** rule:

* virtual time is monotone;
* no leaked resources: the scheduler's own audit
  (:meth:`~repro.dhlsim.scheduler.DhlSystem.leaked_resources`) and the
  trace-derived audit (:func:`~repro.obs.probe.trace_leaked_resources`)
  both read zero on the quiescent system, and they agree;
* cart conservation: every cart is in the library, docked, or in a
  recovery bay — chaos never makes hardware vanish;
* byte conservation: a Read returns exactly
  ``min(requested, shard size)`` bytes;
* span nesting: the trace's span tree never interleaves illegally;
* breaker legality: every circuit-breaker transition is on the legal
  edge set and timestamps never run backwards.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from ..chaos.campaigns import (
    BROWNOUT,
    CART_BATCH_FAILURE,
    CHAOS_SHUTTLE_POLICY,
    CampaignEvent,
    ChaosCampaign,
    TRACK_OUTAGE,
    default_campaign,
)
from ..chaos.runner import CampaignRunner, install_campaign
from ..dhlsim.api import DhlApi
from ..dhlsim.reliability import ChaosSpec
from ..dhlsim.scheduler import DhlSystem
from ..errors import ReproError, SchedulingError
from ..fleet.controlplane import ControlPlane, FleetScenario, _FleetJob, default_scenario
from ..fleet.health import BREAKER_STATES, DegradationPolicy, illegal_transitions
from ..fleet.shard import (
    ShardPlan,
    render_signature,
    report_signature,
    run_sharded,
)
from ..fleet.sla import DEFAULT_TARGET, Outcome
from ..fleet.topology import FleetSpec, FleetTopology
from ..obs import TraceLevel, Tracer
from ..obs.probe import trace_leaked_resources
from ..obs.tracer import span_nesting_violations
from ..sim import Environment
from ..storage.datasets import synthetic_dataset
from ..units import TB
from ..workloads.generator import TransferJob


def api_fuzz_campaign(seed: int = 0) -> ChaosCampaign:
    """The default single-track campaign the API fuzzer runs under."""
    return ChaosCampaign(
        name="api-fuzz",
        events=(
            CampaignEvent(TRACK_OUTAGE, at_s=300.0, duration_s=60.0, track=0),
            CampaignEvent(BROWNOUT, at_s=700.0, duration_s=120.0, intensity=2.0),
            CampaignEvent(CART_BATCH_FAILURE, at_s=1100.0, track=0,
                          intensity=0.003),
        ),
        background=ChaosSpec(
            track_mttf_s=900.0,
            track_mttr_s=45.0,
            stall_prob=0.05,
            stall_time_s=3.0,
            stall_abort_prob=0.1,
            drive_failure_prob=0.0005,
            seed=seed + 7,
        ),
        crews=1,
        seed=seed,
    )


class DhlApiMachine:
    """Open/Close/Read/Write fuzzing against one chaos-ridden system.

    Every ``do_*`` call drives its operation to completion (the DES
    runs until the op's process fires), so the system is quiescent at
    every ``check()`` — which is what makes the leak audits exact.
    Operations are allowed to *fail* under chaos (that is the point);
    they are never allowed to corrupt accounting.
    """

    def __init__(self, seed: int = 0,
                 campaign: ChaosCampaign | None = None,
                 n_datasets: int = 3):
        self.env = Environment()
        self.tracer = Tracer(level=TraceLevel.FULL)
        # The patient policy matters: fail-fast NO_RETRY surfaces raw
        # TrackFaultErrors that _persistent_close cannot wait out.
        self.system = DhlSystem(self.env, n_racks=1, stations_per_rack=2,
                                shuttle_policy=CHAOS_SHUTTLE_POLICY,
                                tracer=self.tracer)
        self.api = DhlApi(self.system)
        self.datasets = [f"fuzz-{index}" for index in range(n_datasets)]
        for name in self.datasets:
            self.system.load_dataset(synthetic_dataset(2 * TB, name=name))
        self.total_carts = len(self.system.library.carts)
        self.campaign = campaign if campaign is not None else api_fuzz_campaign(seed)
        self.runner: CampaignRunner = install_campaign(
            self.env, [self.system], self.campaign
        )
        self.endpoint_id = next(iter(self.system.racks))
        self.docked: dict[str, object] = {}
        self.failures = 0
        self.rules = 0
        self.bytes_read = 0.0
        self._last_now = self.env.now

    # -- op helpers --------------------------------------------------------------

    def _complete(self, event):
        """Run the DES until ``event`` fires; a chaos failure is legal."""
        try:
            return True, self.env.run(until=event)
        except ReproError:
            self.failures += 1
            return False, None

    # -- rules -------------------------------------------------------------------

    def do_open(self, index: int) -> None:
        self.rules += 1
        dataset = self.datasets[index % len(self.datasets)]
        if dataset in self.docked:
            return  # already at the rack; Open would double-dispatch
        if len(self.docked) >= self.system.stations_per_rack:
            # Every dock slot is held by a dataset we keep docked; a
            # further Open would block on the slot until a Close this
            # single-threaded machine will never issue concurrently.
            return
        ok, station = self._complete(
            self.api.open(dataset, 0, self.endpoint_id)
        )
        if ok:
            self.docked[dataset] = station

    def do_read(self, index: int, fraction: float) -> None:
        self.rules += 1
        if not self.docked:
            return
        dataset = sorted(self.docked)[index % len(self.docked)]
        station = self.docked[dataset]
        shard = station.cart.shards[(dataset, 0)]
        requested = max(1.0, fraction * 2.0 * shard.size_bytes)
        ok, done = self._complete(
            self.api.read(self.endpoint_id, dataset, 0, n_bytes=requested)
        )
        if ok:
            expected = min(requested, shard.size_bytes)
            assert done == expected, (
                f"byte conservation: read returned {done}, "
                f"expected {expected}"
            )
            self.bytes_read += done

    def do_write(self, index: int, fraction: float) -> None:
        self.rules += 1
        if not self.docked:
            return
        dataset = sorted(self.docked)[index % len(self.docked)]
        station = self.docked[dataset]
        try:
            event = self.api.write(station, max(1.0, fraction * TB))
        except SchedulingError:  # Write validates the dock synchronously
            self.failures += 1
            return
        self._complete(event)

    def do_close(self, index: int) -> None:
        self.rules += 1
        if not self.docked:
            return
        dataset = sorted(self.docked)[index % len(self.docked)]
        station = self.docked.pop(dataset)
        # Persistent form: a cart mid-outage parks at the rack and
        # re-attempts, so a Close always ends with the cart home.
        ok, _ = self._complete(
            self.env.process(
                self.api._persistent_close(station.cart, self.endpoint_id)
            )
        )
        assert ok, "persistent close must always land"

    def do_advance(self, dt: float) -> None:
        self.rules += 1
        self.env.run(until=self.env.now + max(0.1, dt))

    def step(self, rng: np.random.Generator) -> None:
        """One random rule — the deterministic-walk driver's unit."""
        choice = int(rng.integers(0, 5))
        index = int(rng.integers(0, 8))
        fraction = float(rng.random())
        if choice == 0:
            self.do_open(index)
        elif choice == 1:
            self.do_read(index, fraction)
        elif choice == 2:
            self.do_write(index, fraction)
        elif choice == 3:
            self.do_close(index)
        else:
            self.do_advance(fraction * 120.0)

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        now = self.env.now
        assert now >= self._last_now, (
            f"virtual time ran backwards: {now} < {self._last_now}"
        )
        self._last_now = now
        violations = span_nesting_violations(self.tracer.spans)
        assert not violations, f"span nesting violations: {violations[:3]}"
        audit = self.system.leaked_resources()
        assert all(count == 0 for count in audit.values()), (
            f"scheduler leak audit: {audit}"
        )
        traced = trace_leaked_resources(self.tracer, self.system)
        assert traced == audit, (
            f"trace audit {traced} disagrees with scheduler audit {audit}"
        )
        in_library = len(self.system.library.carts)
        docked = sum(
            len(rack.docked_carts) for rack in self.system.racks.values()
        )
        stranded = sum(
            len(rack.stranded) for rack in self.system.racks.values()
        )
        assert in_library + docked + stranded == self.total_carts, (
            f"cart conservation: {in_library} in library + {docked} docked "
            f"+ {stranded} stranded != {self.total_carts}"
        )

    def finish(self) -> None:
        """Drain: close everything, stop the campaign, final check."""
        for dataset in sorted(self.docked):
            self.do_close(0)
        self.runner.stop()
        self.env.run(until=self.env.now + 1.0)
        self.check()


class FleetDispatchMachine:
    """Fleet dispatch fuzzing: random jobs through the real admission,
    queueing, breaker and failover paths, under an active campaign."""

    KINDS = ("interactive", "batch", "archive")

    def __init__(self, seed: int = 0, scenario: FleetScenario | None = None):
        if scenario is None:
            scenario = default_scenario(
                policy="edf",
                cache="lru",
                seed=seed,
                spec=FleetSpec(shuttle_policy=CHAOS_SHUTTLE_POLICY),
                chaos=default_campaign(seed=seed),
                degradation=DegradationPolicy(),
            )
        self.scenario = scenario
        self.env = Environment()
        self.topology = FleetTopology(self.env, scenario.spec, scenario.catalog)
        self.plane = ControlPlane(self.env, self.topology, scenario)
        if scenario.chaos is not None:
            self.plane.attach_campaign(
                install_campaign(self.env, self.topology.systems, scenario.chaos)
            )
        for lane in self.plane.lanes.values():
            for _ in range(lane.stations):
                self.env.process(self.plane._worker(lane))
        self.targets = dict(scenario.targets)
        self.datasets = list(self.topology.homes)
        self.submitted = 0
        self.rules = 0
        self._next_job_id = 0
        self._last_now = self.env.now

    # -- rules -------------------------------------------------------------------

    def do_dispatch(self, kind_index: int, dataset_index: int,
                    size_fraction: float) -> None:
        self.rules += 1
        kind = self.KINDS[kind_index % len(self.KINDS)]
        dataset = self.datasets[dataset_index % len(self.datasets)]
        home = self.topology.home(dataset)
        target = self.targets.get(kind, DEFAULT_TARGET)
        size = max(1.0, size_fraction * 8 * TB)
        job = TransferJob(self._next_job_id, self.env.now, size, kind)
        self._next_job_id += 1
        self.plane.submit(
            _FleetJob(
                job=job,
                dataset=dataset,
                read_bytes=min(size, home.size_bytes),
                deadline_at=self.env.now + target.deadline_s,
                priority=target.priority,
            )
        )
        self.submitted += 1

    def do_advance(self, dt: float) -> None:
        self.rules += 1
        self.env.run(until=self.env.now + max(0.1, dt))

    def step(self, rng: np.random.Generator) -> None:
        if rng.random() < 0.6:
            self.do_dispatch(
                int(rng.integers(0, 3)),
                int(rng.integers(0, len(self.datasets))),
                float(rng.random()),
            )
        else:
            self.do_advance(float(rng.random()) * 90.0)

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        now = self.env.now
        assert now >= self._last_now, (
            f"virtual time ran backwards: {now} < {self._last_now}"
        )
        self._last_now = now
        for monitor in self.plane.monitors.values():
            bad = illegal_transitions(monitor.breaker.transitions)
            assert not bad, f"illegal breaker transitions on {monitor.name}: {bad}"
            assert monitor.breaker.state in BREAKER_STATES
            assert (
                0
                <= monitor.breaker.probes_in_flight
                <= monitor.policy.half_open_probes
            ), (
                f"probe accounting on {monitor.name}: "
                f"{monitor.breaker.probes_in_flight} probes in flight"
            )
        outcomes = self.plane._outcomes
        assert len(outcomes) <= self.submitted, (
            f"{len(outcomes)} outcomes for {self.submitted} submitted jobs"
        )
        legal = {Outcome.SERVED, Outcome.FAILOVER, Outcome.SHED, Outcome.FAILED}
        for record in outcomes:
            assert record.outcome in legal, f"unknown outcome {record.outcome!r}"

    def finish(self, drain_step_s: float = 300.0, max_steps: int = 400) -> None:
        """Drain every submitted job, then audit conservation end-to-end."""
        steps = 0
        while len(self.plane._outcomes) < self.submitted:
            self.env.run(until=self.env.now + drain_step_s)
            self.check()
            steps += 1
            assert steps < max_steps, (
                f"fleet failed to drain: {len(self.plane._outcomes)} of "
                f"{self.submitted} jobs resolved after {steps} steps"
            )
        if self.plane._campaign is not None:
            self.plane._campaign.stop()
        # Let in-flight evictions land so pool accounting is exact.
        self.env.run(until=self.env.now + 3600.0)
        self.check()
        seen = [record.job_id for record in self.plane._outcomes]
        assert len(seen) == len(set(seen)) == self.submitted, (
            "every submitted job must resolve exactly once"
        )
        # Cart-pool conservation: each held token is a resident (or
        # still-fetching) cache entry; nothing else may hold one.
        resident = sum(
            len(lane.cache.entries)
            for lane in self.plane.lanes.values()
            if lane.cache is not None
        )
        held = self.topology.cart_pool.count
        assert held == resident, (
            f"cart-pool tokens held ({held}) != cache residency ({resident})"
        )
        for system in self.topology.systems:
            audit = system.leaked_resources()
            # Docked cache residents legitimately hold their dock slots;
            # the audit already nets docked carts out, so zero it is.
            assert all(count == 0 for count in audit.values()), (
                f"fleet leak audit: {audit}"
            )


class ShardCosimMachine:
    """Resharding fuzz: mutate the shard plan between short campaigns.

    Rules either *reshard* the fleet (change the pod count or the
    inter-pod latency), toggle the chaos campaign, reseed the workload,
    or *run* the current plan through the serial epoch executor.  After
    every run:

    * every bound job resolved exactly once — the merged record ids
      are exactly ``0..n-1`` no matter how the fleet was cut;
    * cross-pod conservation held — every forwarded job's outcome note
      is accounted for (``forwarded == sum(remote_outcomes)``);
    * the resolved-job total matches every other sharding of the same
      workload — pods change the model's boundary latencies, never the
      offered load;
    * re-running a previously seen configuration reproduces the merged
      fleet report byte for byte.
    """

    N_TRACKS = 4

    def __init__(self, seed: int = 0, horizon_s: float = 450.0):
        self.seed = seed
        self.horizon_s = horizon_s
        self.n_pods = 2
        self.interpod_latency_s = 5.0
        self.with_chaos = False
        self.rules = 0
        self.runs = 0
        self.chaos_runs = 0
        self.forwarded_total = 0
        self._signatures: dict[tuple, str] = {}
        self._workload_jobs: dict[tuple, int] = {}

    def _scenario(self) -> FleetScenario:
        if self.with_chaos:
            return default_scenario(
                policy="edf",
                cache="lru",
                seed=self.seed,
                horizon_s=self.horizon_s,
                spec=FleetSpec(
                    n_tracks=self.N_TRACKS,
                    cart_pool=3 * self.N_TRACKS,
                    shuttle_policy=CHAOS_SHUTTLE_POLICY,
                ),
                chaos=default_campaign(seed=self.seed),
                degradation=DegradationPolicy(),
            )
        return default_scenario(
            policy="edf",
            cache="lru",
            seed=self.seed,
            horizon_s=self.horizon_s,
            spec=FleetSpec(n_tracks=self.N_TRACKS, cart_pool=3 * self.N_TRACKS),
        )

    # -- rules -------------------------------------------------------------------

    def do_reshard(self, n_pods: int, latency_s: float) -> None:
        self.rules += 1
        self.n_pods = 1 + (n_pods - 1) % self.N_TRACKS
        self.interpod_latency_s = min(120.0, max(1.0, latency_s))

    def do_toggle_chaos(self) -> None:
        self.rules += 1
        self.with_chaos = not self.with_chaos

    def do_reseed(self, seed: int) -> None:
        self.rules += 1
        self.seed = seed % 3

    def do_run(self) -> None:
        self.rules += 1
        plan = ShardPlan(
            scenario=self._scenario(),
            n_pods=self.n_pods,
            interpod_latency_s=self.interpod_latency_s,
        )
        report = run_sharded(plan, engine="serial")
        fleet = report.fleet
        assert fleet.n_jobs == sum(report.pod_jobs), (
            f"pod rows account for {sum(report.pod_jobs)} jobs but the "
            f"merged report has {fleet.n_jobs}"
        )
        ids = sorted(record.job_id for record in fleet.records)
        assert ids == list(range(fleet.n_jobs)), (
            "jobs lost or duplicated across shard boundaries: "
            f"{fleet.n_jobs} jobs but ids {ids[:5]}..{ids[-5:]}"
        )
        assert report.forwarded == sum(report.remote_outcomes.values()), (
            f"{report.forwarded} forwarded jobs but "
            f"{sum(report.remote_outcomes.values())} outcome notes"
        )
        if plan.n_pods == 1:
            assert report.forwarded == 0
            assert report.epochs == 0
        workload = (self.seed, self.horizon_s, self.with_chaos)
        expected = self._workload_jobs.setdefault(workload, fleet.n_jobs)
        assert expected == fleet.n_jobs, (
            f"sharding into {plan.n_pods} pods changed the offered load: "
            f"{fleet.n_jobs} jobs resolved, other cuts saw {expected}"
        )
        config = (*workload, self.n_pods, self.interpod_latency_s)
        signature = render_signature(report_signature(fleet))
        assert self._signatures.setdefault(config, signature) == signature, (
            f"re-running configuration {config} was not byte-identical"
        )
        self.forwarded_total += report.forwarded
        self.runs += 1
        if self.with_chaos:
            self.chaos_runs += 1

    def step(self, rng: np.random.Generator) -> None:
        choice = int(rng.integers(0, 8))
        if choice <= 2:
            self.do_reshard(
                int(rng.integers(1, self.N_TRACKS + 1)),
                float(rng.random()) * 90.0,
            )
        elif choice == 3:
            self.do_toggle_chaos()
        elif choice == 4:
            self.do_reseed(int(rng.integers(0, 3)))
        else:
            self.do_run()

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        assert 1 <= self.n_pods <= self.N_TRACKS
        assert self.interpod_latency_s > 0
        assert all(count > 0 for count in self._workload_jobs.values()), (
            "a sharded run resolved zero jobs"
        )

    def finish(self) -> None:
        """Run the current cut once more, then its monolithic twin."""
        self.do_run()
        sharded_pods = self.n_pods
        self.n_pods = 1
        self.do_run()
        self.n_pods = sharded_pods
        self.check()


def random_walk(machine, n_rules: int = 500, seed: int = 0):
    """Drive ``machine`` through ``n_rules`` seeded random rules.

    Deterministic: the same (machine config, n_rules, seed) triple
    replays the identical rule sequence and virtual-time trajectory.
    Invariants are checked after every rule; ``finish()`` runs the
    drain-and-audit teardown.  Returns the machine for inspection.
    """
    rng = np.random.default_rng(seed)
    for _ in range(n_rules):
        machine.step(rng)
        machine.check()
    machine.finish()
    return machine


class DhlApiStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable Open/Close/Read/Write sequences."""

    def __init__(self):
        super().__init__()
        self.machine = DhlApiMachine(seed=0)

    @rule(index=st.integers(min_value=0, max_value=7))
    def open(self, index):
        self.machine.do_open(index)

    @rule(index=st.integers(min_value=0, max_value=7),
          fraction=st.floats(min_value=0.0, max_value=1.0))
    def read(self, index, fraction):
        self.machine.do_read(index, fraction)

    @rule(index=st.integers(min_value=0, max_value=7),
          fraction=st.floats(min_value=0.0, max_value=1.0))
    def write(self, index, fraction):
        self.machine.do_write(index, fraction)

    @rule(index=st.integers(min_value=0, max_value=7))
    def close(self, index):
        self.machine.do_close(index)

    @rule(dt=st.floats(min_value=0.1, max_value=120.0))
    def advance(self, dt):
        self.machine.do_advance(dt)

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()


class ShardCosimStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable reshard/run sequences."""

    def __init__(self):
        super().__init__()
        self.machine = ShardCosimMachine(seed=0)

    @rule(n_pods=st.integers(min_value=1, max_value=4),
          latency=st.floats(min_value=1.0, max_value=90.0))
    def reshard(self, n_pods, latency):
        self.machine.do_reshard(n_pods, latency)

    @rule()
    def toggle_chaos(self):
        self.machine.do_toggle_chaos()

    @rule(seed=st.integers(min_value=0, max_value=2))
    def reseed(self, seed):
        self.machine.do_reseed(seed)

    @rule()
    def run(self):
        self.machine.do_run()

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()


class FleetStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable fleet dispatch sequences."""

    def __init__(self):
        super().__init__()
        self.machine = FleetDispatchMachine(seed=0)

    @rule(kind=st.integers(min_value=0, max_value=2),
          dataset=st.integers(min_value=0, max_value=11),
          size=st.floats(min_value=0.0, max_value=1.0))
    def dispatch(self, kind, dataset, size):
        self.machine.do_dispatch(kind, dataset, size)

    @rule(dt=st.floats(min_value=0.1, max_value=90.0))
    def advance(self, dt):
        self.machine.do_advance(dt)

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()
