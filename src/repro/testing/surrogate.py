"""Strategies and stateful fuzzing for the surrogate layer.

The strategies give property suites one vocabulary of "valid surrogate
input": scenario points whose construction never raises, fit
configurations the descent accepts, and synthetic training rows whose
KPIs come from a seeded analytic generator — so shrinking explores the
fit and the planner, not the (expensive) fleet DES.

:class:`SurrogateFitMachine` fuzzes the train/predict/refit lifecycle
the way the bench uses it, plus the misuse paths: random row batches
from the synthetic generator, repeated fits (same rows must fingerprint
identically), prediction probes (finite, non-negative, pessimistic
>= median, capacity-monotone), and illegal-usage rules (invalid
configurations and unfitted quantiles must raise
:class:`~repro.errors.ConfigurationError` without corrupting the
machine's state).  Like the other machines it is usable directly,
through :func:`~repro.testing.statemachine.random_walk`, or as the
hypothesis :class:`SurrogateFitStateMachine`.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from ..errors import ConfigurationError
from ..surrogate.features import CACHE_LABELS, ScenarioPoint, encode
from ..surrogate.model import TARGETS, FitConfig, QuantileModel, fit

#: Policies the fuzz vocabulary draws from (the control plane's set).
_POLICIES: tuple[str, ...] = ("fcfs", "sjf", "edf")


@st.composite
def scenario_points(draw) -> ScenarioPoint:
    """Any valid point of the five-axis configuration space."""
    n_tracks = draw(st.integers(min_value=1, max_value=4))
    return ScenarioPoint(
        n_tracks=n_tracks,
        cart_pool=draw(st.integers(min_value=n_tracks, max_value=12)),
        policy=draw(st.sampled_from(_POLICIES)),
        cache_policy=draw(st.sampled_from(CACHE_LABELS)),
        offered_load=draw(
            st.floats(min_value=0.2, max_value=2.0,
                      allow_nan=False, allow_infinity=False)
        ),
    )


@st.composite
def fit_configs(draw) -> FitConfig:
    """A valid fit configuration, small enough to converge in tests."""
    upper = draw(st.sampled_from((0.75, 0.8, 0.9, 0.95)))
    return FitConfig(
        quantiles=(0.5, upper),
        iterations=draw(st.integers(min_value=5, max_value=80)),
        learning_rate=draw(st.floats(min_value=0.01, max_value=0.5)),
        smoothing=draw(st.floats(min_value=0.005, max_value=0.1)),
    )


def synthetic_row(point: ScenarioPoint, seed: int) -> dict:
    """One deterministic pseudo-DES training row for ``point``.

    An analytic stand-in for :func:`repro.fleet.controlplane.run_fleet`
    with the same qualitative shape — latency grows with utilisation,
    caches and extra capacity help, seeds perturb multiplicatively — at
    ~10^6x the speed, so fuzz walks can afford hundreds of fits.
    """
    digest = hashlib.sha256(f"{point.label}|{seed}".encode("utf-8"))
    rng = np.random.default_rng(int.from_bytes(digest.digest()[:8], "little"))
    rho = point.offered_load / point.n_tracks
    cache_factor = 1.0 if point.cache_policy == "none" else 0.55
    policy_factor = {"fcfs": 1.0, "sjf": 0.92, "edf": 0.88}[point.policy]
    base = 20.0 + 90.0 * rho * (1.0 + rho * rho) * cache_factor
    noise = float(np.exp(rng.normal(0.0, 0.25)))
    p50 = base * policy_factor * noise
    p95 = p50 * (1.6 + 0.4 * rho)
    p99 = p95 * (1.3 + 0.2 * rho)
    energy = (
        2.0 * point.offered_load * cache_factor
        * float(np.exp(rng.normal(0.0, 0.2)))
    )
    miss = min(1.0, max(0.0, 0.05 * rho * cache_factor
                        + float(rng.normal(0.0, 0.01))))
    return {
        "point": point.label,
        "seed": seed,
        "features": encode(point),
        "p50_s": p50,
        "p95_s": p95,
        "p99_s": p99,
        "launch_energy_mj": energy,
        "deadline_miss_rate": miss,
    }


@st.composite
def training_rows(draw, min_rows: int = 8, max_rows: int = 40) -> list[dict]:
    """A synthetic training set: valid rows from the analytic generator."""
    points = draw(
        st.lists(scenario_points(), min_size=min_rows, max_size=max_rows)
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return [
        synthetic_row(point, seed + index)
        for index, point in enumerate(points)
    ]


#: Fixed grid the machine's probes walk: a capacity ladder at one load,
#: every adjacent pair differing in exactly one capacity axis.
_PROBE_POINTS: tuple[ScenarioPoint, ...] = tuple(
    ScenarioPoint(n_tracks=tracks, cart_pool=carts, policy="fcfs",
                  cache_policy="lru")
    for tracks, carts in ((1, 4), (2, 4), (3, 4), (3, 8), (3, 12))
)

#: Quick descent settings for the fuzz fits (speed over accuracy; the
#: machine checks structural invariants, not error bounds).
_FUZZ_FIT = FitConfig(quantiles=(0.5, 0.9), iterations=40,
                      learning_rate=0.2, smoothing=0.02)


class SurrogateFitMachine:
    """Train/predict/refit lifecycle fuzzing of the quantile surrogate.

    ``do_add_rows`` grows the synthetic training pool, ``do_fit``
    refits (and spot-checks that an immediate second fit of the same
    rows fingerprints identically), ``do_predict`` and
    ``do_monotone_probe`` assert the prediction contract, and the
    ``do_illegal_*`` rules assert misuse raises
    :class:`~repro.errors.ConfigurationError` and leaves the fitted
    model untouched.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rows: list[dict] = [
            synthetic_row(point, seed + index)
            for index, point in enumerate(_PROBE_POINTS)
        ]
        self.model: QuantileModel | None = None
        self.rules = 0
        self.fits = 0
        self.predictions = 0
        self.rejected = 0
        self._next_batch = 0

    # -- rules -------------------------------------------------------------------

    def do_add_rows(self, count: int) -> None:
        """Grow the pool with fresh deterministic synthetic rows."""
        self.rules += 1
        count = 1 + (count % 8)
        for _ in range(count):
            point = _PROBE_POINTS[self._next_batch % len(_PROBE_POINTS)]
            self.rows.append(
                synthetic_row(point, self.seed + 1000 + self._next_batch)
            )
            self._next_batch += 1

    def do_fit(self, check_refit: bool = False) -> None:
        """Refit on the current pool; optionally verify determinism."""
        self.rules += 1
        self.model = fit(list(self.rows), config=_FUZZ_FIT)
        self.fits += 1
        if check_refit:
            again = fit(list(self.rows), config=_FUZZ_FIT)
            assert again.fingerprint() == self.model.fingerprint(), (
                "refitting identical rows changed the model fingerprint"
            )

    def do_predict(self, index: int) -> None:
        """Median and pessimistic predictions obey the value contract."""
        self.rules += 1
        if self.model is None:
            self.do_fit()
        point = _PROBE_POINTS[index % len(_PROBE_POINTS)]
        median = self.model.predict(point)
        pessimistic = self.model.predict_pessimistic(point)
        self.predictions += 1
        for target in TARGETS:
            assert math.isfinite(median[target]), (
                f"median {target} prediction is not finite"
            )
            assert median[target] >= 0.0, (
                f"median {target} prediction is negative"
            )
            assert pessimistic[target] >= median[target] * (1.0 - 1e-12), (
                f"pessimistic {target} below the median: "
                f"{pessimistic[target]} < {median[target]}"
            )
        assert median["deadline_miss_rate"] <= 1.0 + 1e-9

    def do_monotone_probe(self, index: int) -> None:
        """Adding a track or a cart never predicts a worse p99."""
        self.rules += 1
        if self.model is None:
            self.do_fit()
        small = _PROBE_POINTS[index % (len(_PROBE_POINTS) - 1)]
        for grown in (
            ScenarioPoint(small.n_tracks + 1, max(small.cart_pool,
                                                  small.n_tracks + 1),
                          small.policy, small.cache_policy,
                          small.offered_load),
            ScenarioPoint(small.n_tracks, small.cart_pool + 2,
                          small.policy, small.cache_policy,
                          small.offered_load),
        ):
            before = self.model.predict(small)["p99_s"]
            after = self.model.predict(grown)["p99_s"]
            assert after <= before * (1.0 + 1e-9), (
                f"monotonicity violated: {grown.label} predicts p99 "
                f"{after} > {small.label}'s {before}"
            )

    def do_illegal_config(self, which: int) -> None:
        """Invalid configurations raise without touching the model."""
        self.rules += 1
        before = self.model.fingerprint() if self.model else None
        attempts = (
            lambda: FitConfig(quantiles=()),
            lambda: FitConfig(quantiles=(0.9,)),  # median missing
            lambda: FitConfig(iterations=0),
            lambda: FitConfig(learning_rate=0.0),
            lambda: FitConfig(smoothing=-1.0),
            lambda: ScenarioPoint(0, 4, "fcfs", "lru"),
            lambda: ScenarioPoint(2, 1, "fcfs", "lru"),
            lambda: ScenarioPoint(1, 4, "lifo", "lru"),
            lambda: ScenarioPoint(1, 4, "fcfs", "arc"),
            lambda: fit([]),
        )
        try:
            attempts[which % len(attempts)]()
        except ConfigurationError:
            self.rejected += 1
        else:  # pragma: no cover - the failure the fuzz exists to catch
            raise AssertionError(
                f"illegal construction {which % len(attempts)} was accepted"
            )
        after = self.model.fingerprint() if self.model else None
        assert before == after, "a rejected construction mutated the model"

    def do_illegal_tau(self) -> None:
        """Predicting at an unfitted quantile is a usage error."""
        self.rules += 1
        if self.model is None:
            self.do_fit()
        try:
            self.model.predict(_PROBE_POINTS[0], tau=0.123)
        except ConfigurationError:
            self.rejected += 1
        else:  # pragma: no cover
            raise AssertionError("an unfitted tau was accepted")

    def step(self, rng: np.random.Generator) -> None:
        """One random rule — the deterministic-walk driver's unit."""
        roll = rng.random()
        if roll < 0.25:
            self.do_add_rows(int(rng.integers(0, 8)))
        elif roll < 0.45:
            self.do_fit(check_refit=bool(rng.random() < 0.2))
        elif roll < 0.70:
            self.do_predict(int(rng.integers(0, len(_PROBE_POINTS))))
        elif roll < 0.85:
            self.do_monotone_probe(int(rng.integers(0, 100)))
        elif roll < 0.95:
            self.do_illegal_config(int(rng.integers(0, 100)))
        else:
            self.do_illegal_tau()

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        assert len(self.rows) >= len(_PROBE_POINTS), "the row pool shrank"
        if self.model is not None:
            assert self.model.training_rows >= len(_PROBE_POINTS)
            for values in self.model.coefficients.values():
                for coefs in values.values():
                    assert all(math.isfinite(c) for c in coefs), (
                        "fit produced non-finite coefficients"
                    )

    def finish(self) -> None:
        """A final fit must be deterministic end to end."""
        self.do_fit(check_refit=True)
        self.do_predict(0)
        self.do_monotone_probe(0)


class SurrogateFitStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable train/predict/refit sequences."""

    def __init__(self):
        super().__init__()
        self.machine = SurrogateFitMachine(seed=0)

    @rule(count=st.integers(min_value=0, max_value=7))
    def add_rows(self, count):
        self.machine.do_add_rows(count)

    @rule(check_refit=st.booleans())
    def refit(self, check_refit):
        self.machine.do_fit(check_refit=check_refit)

    @rule(index=st.integers(min_value=0, max_value=99))
    def predict(self, index):
        self.machine.do_predict(index)

    @rule(index=st.integers(min_value=0, max_value=99))
    def monotone_probe(self, index):
        self.machine.do_monotone_probe(index)

    @rule(which=st.integers(min_value=0, max_value=99))
    def illegal_config(self, which):
        self.machine.do_illegal_config(which)

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()


__all__ = [
    "SurrogateFitMachine",
    "SurrogateFitStateMachine",
    "fit_configs",
    "scenario_points",
    "synthetic_row",
    "training_rows",
]
