"""Strategies and stateful fuzzing for the learned-control layer.

The strategies give property suites one vocabulary of "valid learning
task": joint actions, environment configurations whose construction
never raises, and policies across every family — so shrinking explores
behaviour, not input validation.

:class:`FleetEnvMachine` fuzzes :class:`~repro.learn.env.FleetEnv` the
way training uses it, plus all the ways training must *not* use it:
random legal steps interleaved with illegal ones (out-of-range action
indices, stepping a finished episode, premature reports) that must be
rejected with :class:`~repro.errors.ConfigurationError` and leave the
environment untouched.  After every rule it checks the gym contract —
monotone virtual time, normalised observations, finite non-positive
rewards — and at teardown drains the episode and audits the underlying
fleet for leaked carts and pool tokens via the same ``obs.probe``-style
resource audits the chaos machines rely on.  Like the other machines
it is usable directly, through
:func:`~repro.testing.statemachine.random_walk`, or as the hypothesis
:class:`FleetEnvStateMachine`.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from ..errors import ConfigurationError
from ..fleet.controlplane import default_scenario
from ..fleet.topology import DatasetCatalog, FleetSpec
from ..learn.env import ACTIONS, Action, EnvConfig, FleetEnv, N_ACTIONS
from ..learn.policies import (
    EpsilonGreedyBandit,
    FixedPolicy,
    TabularQ,
)
from ..units import TB


def actions() -> st.SearchStrategy[Action]:
    """Any joint action from the factored space."""
    return st.sampled_from(ACTIONS)


@st.composite
def env_configs(draw) -> EnvConfig:
    """A small synthetic-workload environment that runs in well under a
    second — the unit fuzzing and property suites iterate on."""
    scenario = default_scenario(
        policy=draw(st.sampled_from(("fcfs", "sjf", "edf"))),
        cache=draw(st.sampled_from(("lru", "lfu", "ttl"))),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon_s=draw(st.floats(min_value=300.0, max_value=1200.0)),
        spec=FleetSpec(
            n_tracks=draw(st.integers(min_value=1, max_value=2)),
            racks_per_track=1,
            stations_per_rack=draw(st.integers(min_value=2, max_value=4)),
            cart_pool=draw(st.integers(min_value=6, max_value=10)),
        ),
        catalog=DatasetCatalog(
            n_datasets=draw(st.integers(min_value=4, max_value=12)),
            dataset_bytes=24 * TB,
        ),
    )
    return EnvConfig(
        scenario=scenario,
        epoch_s=draw(st.floats(min_value=30.0, max_value=240.0)),
        max_epochs=draw(st.integers(min_value=5, max_value=60)),
    )


@st.composite
def learn_policies(draw, n_actions: int = N_ACTIONS):
    """A policy from any family, validly constructed and seeded."""
    family = draw(st.sampled_from(("fixed", "bandit", "tabular")))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    if family == "fixed":
        return FixedPolicy(draw(st.integers(min_value=0,
                                            max_value=n_actions - 1)))
    if family == "bandit":
        return EpsilonGreedyBandit(
            epsilon=draw(st.floats(min_value=0.0, max_value=1.0)),
            seed=seed,
        )
    return TabularQ(
        epsilon=draw(st.floats(min_value=0.0, max_value=1.0)),
        alpha=draw(st.floats(min_value=0.05, max_value=1.0)),
        gamma=draw(st.floats(min_value=0.0, max_value=0.99)),
        bins=draw(st.integers(min_value=1, max_value=6)),
        seed=seed,
    )


#: The machine's fixed fuzz task: small, fast, cache-enabled.
def _fuzz_config(seed: int) -> EnvConfig:
    return EnvConfig(
        scenario=default_scenario(
            policy="edf",
            cache="lru",
            seed=seed,
            horizon_s=1800.0,
            spec=FleetSpec(n_tracks=2, racks_per_track=1,
                           stations_per_rack=2, cart_pool=6),
            catalog=DatasetCatalog(n_datasets=8, dataset_bytes=24 * TB),
        ),
        epoch_s=60.0,
        max_epochs=200,
    )


class FleetEnvMachine:
    """Legal/illegal step fuzzing of the gym-on-DES environment.

    ``do_step`` advances one epoch under a random action;
    ``do_illegal_*`` rules fire the misuse paths (bad action index,
    stepping after done, premature report) and assert both the raised
    :class:`~repro.errors.ConfigurationError` *and* that the
    environment's clock, epoch counter and observation are untouched
    by the rejected call.
    """

    def __init__(self, seed: int = 0):
        self.config = _fuzz_config(seed)
        self.env = FleetEnv(self.config, seed=seed)
        self.obs = self.env.reset()
        self.n_obs = len(self.obs)
        self.rules = 0
        self.steps = 0
        self.rejected = 0
        self.total_reward = 0.0
        self.done = False
        self._last_now = self.env.sim.now

    # -- rules -------------------------------------------------------------------

    def do_step(self, action_index: int) -> None:
        self.rules += 1
        if self.done:
            self.do_illegal_step_after_done(action_index)
            return
        obs, reward, done, info = self.env.step(action_index % N_ACTIONS)
        self.obs = obs
        self.total_reward += reward
        self.steps += 1
        self.done = done
        assert math.isfinite(reward) and reward <= 0.0, (
            f"reward must be finite and non-positive, got {reward}"
        )
        assert info["epoch"] == self.env.epoch

    def do_illegal_action(self, offset: int) -> None:
        """Out-of-range indices are rejected without side effects."""
        self.rules += 1
        bad = N_ACTIONS + (offset % 50) if offset >= 0 else -1 - (-offset % 50)
        before = (self.env.sim.now, self.env.epoch, self.env.observe())
        try:
            self.env.step(bad)
        except ConfigurationError:
            self.rejected += 1
        else:  # pragma: no cover - the failure the fuzz exists to catch
            raise AssertionError(f"action index {bad} was accepted")
        assert before == (self.env.sim.now, self.env.epoch,
                          self.env.observe()), (
            "rejected action mutated the environment"
        )

    def do_illegal_step_after_done(self, action_index: int) -> None:
        """A finished episode refuses further steps."""
        self.rules += 1
        if not self.done:
            return
        try:
            self.env.step(action_index % N_ACTIONS)
        except ConfigurationError:
            self.rejected += 1
        else:  # pragma: no cover
            raise AssertionError("stepping a finished episode succeeded")

    def do_premature_report(self) -> None:
        """``report()`` before the episode drains is a usage error."""
        self.rules += 1
        if self.done:
            return
        try:
            self.env.report()
        except ConfigurationError:
            self.rejected += 1
        else:  # pragma: no cover
            raise AssertionError("report() before done succeeded")

    def step(self, rng: np.random.Generator) -> None:
        """One random rule — the deterministic-walk driver's unit."""
        roll = rng.random()
        if roll < 0.70:
            self.do_step(int(rng.integers(0, N_ACTIONS)))
        elif roll < 0.85:
            self.do_illegal_action(int(rng.integers(-100, 100)))
        elif roll < 0.95:
            self.do_premature_report()
        else:
            self.do_illegal_step_after_done(int(rng.integers(0, N_ACTIONS)))

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        now = self.env.sim.now
        assert now >= self._last_now, (
            f"virtual time ran backwards: {now} < {self._last_now}"
        )
        self._last_now = now
        obs = self.env.observe()
        assert len(obs) == self.n_obs == len(self.env.obs_names()), (
            f"observation dimensionality drifted: {len(obs)}"
        )
        for name, value in zip(self.env.obs_names(), obs):
            assert 0.0 <= value <= 1.0 and math.isfinite(value), (
                f"observation {name} outside [0, 1]: {value}"
            )
        plane = self.env.plane
        assert plane._resolved <= plane._submitted, (
            f"{plane._resolved} resolved of {plane._submitted} submitted"
        )

    def finish(self) -> None:
        """Drain the episode, then audit the fleet for leaks."""
        while not self.done:
            self.do_step(0)
            self.check()
        report = self.env.report()
        assert report.n_jobs == self.env.plane._resolved
        # No leaked carts: every held pool token is a cache resident,
        # and the per-rail probe audits read zero.
        topology = self.env.topology
        resident = sum(
            len(lane.cache.entries)
            for lane in self.env.plane.lanes.values()
            if lane.cache is not None
        )
        assert topology.cart_pool.count == resident, (
            f"cart-pool tokens held ({topology.cart_pool.count}) != "
            f"cache residency ({resident})"
        )
        for system in topology.systems:
            audit = system.leaked_resources()
            assert all(count == 0 for count in audit.values()), (
                f"fleet-env leak audit: {audit}"
            )


class FleetEnvStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable legal/illegal step sequences."""

    def __init__(self):
        super().__init__()
        self.machine = FleetEnvMachine(seed=0)

    @rule(index=st.integers(min_value=0, max_value=N_ACTIONS - 1))
    def legal_step(self, index):
        self.machine.do_step(index)

    @rule(offset=st.integers(min_value=-100, max_value=100))
    def illegal_action(self, offset):
        self.machine.do_illegal_action(offset)

    @rule()
    def premature_report(self):
        self.machine.do_premature_report()

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()
