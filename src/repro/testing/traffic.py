"""Strategies and stateful fuzzing for the trace-driven demand layer.

The strategies give property suites one vocabulary of "valid trace":
records consistent with a header, and whole synthesis specs whose
construction never raises — so shrinking explores behaviour, not input
validation.

:class:`TraceReplayMachine` fuzzes the full pipeline the way
production uses it: records are emitted with non-decreasing arrivals,
encoded live into **both** codecs, and injected open-loop into a real
:class:`~repro.fleet.controlplane.ControlPlane` under an active chaos
campaign.  After every rule it checks the layer's three contracts —
monotone arrivals, codec round-trip identity, and (at teardown) no
leaked carts or cart-pool tokens despite mid-replay chaos.  Like the
other machines it is usable directly, through
:func:`~repro.testing.statemachine.random_walk`, or as the hypothesis
:class:`TraceReplayStateMachine`.
"""

from __future__ import annotations

import io

import numpy as np
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from ..chaos.campaigns import CHAOS_SHUTTLE_POLICY, default_campaign
from ..chaos.runner import install_campaign
from ..fleet.controlplane import ControlPlane, FleetScenario, _FleetJob, default_scenario
from ..fleet.health import DegradationPolicy
from ..fleet.sla import DEFAULT_TARGET, Outcome
from ..fleet.topology import DatasetCatalog, FleetSpec, FleetTopology
from ..sim import Environment
from ..traffic.codec import (
    BinaryTraceWriter,
    JsonlTraceWriter,
    read_binary_header,
    read_binary_records,
    read_jsonl_header,
    read_jsonl_records,
)
from ..traffic.schema import TraceHeader, TraceRecord
from ..traffic.synth import DemandClass, FlashCrowd, TenantProfile, TraceSpec
from ..units import TB

#: The fuzz vocabulary: small closed tables every fuzzed trace uses.
FUZZ_TENANTS = ("alpha", "beta", "gamma")
FUZZ_KINDS = ("interactive", "batch", "archive")


def fuzz_header(catalog: DatasetCatalog | None = None) -> TraceHeader:
    """The header :class:`TraceReplayMachine` emits records under."""
    catalog = catalog if catalog is not None else DatasetCatalog()
    return TraceHeader(
        seed=0,
        horizon_s=7200.0,
        tenants=FUZZ_TENANTS,
        datasets=catalog.names,
        kinds=FUZZ_KINDS,
    )


@st.composite
def trace_records(draw, header: TraceHeader | None = None,
                  max_arrival_s: float = 7200.0) -> TraceRecord:
    """One record valid under ``header`` (arrival order not implied)."""
    if header is None:
        header = fuzz_header()
    arrival = draw(st.floats(min_value=0.0, max_value=max_arrival_s))
    kind = draw(st.sampled_from(header.kinds))
    return TraceRecord(
        arrival_s=arrival,
        tenant=draw(st.sampled_from(header.tenants)),
        dataset=draw(st.sampled_from(header.datasets)),
        size_bytes=draw(st.floats(min_value=1.0, max_value=30 * TB)),
        kind=kind,
        deadline_s=arrival + draw(st.floats(min_value=1.0, max_value=3600.0)),
    )


@st.composite
def tenant_profiles(draw, kinds: tuple[str, ...] = FUZZ_KINDS,
                    name: str = "tenant") -> TenantProfile:
    """A valid tenant demand profile over ``kinds``."""
    n_kinds = draw(st.integers(min_value=1, max_value=len(kinds)))
    return TenantProfile(
        name=name,
        base_rate_per_s=draw(st.floats(min_value=0.01, max_value=5.0)),
        diurnal_amplitude=draw(st.floats(min_value=0.0, max_value=1.0)),
        peak_s=draw(st.floats(min_value=0.0, max_value=86400.0)),
        class_weights=tuple(
            (kind, draw(st.floats(min_value=0.05, max_value=1.0)))
            for kind in kinds[:n_kinds]
        ),
        zipf_alpha=draw(st.floats(min_value=0.1, max_value=3.0)),
    )


@st.composite
def trace_specs(draw) -> TraceSpec:
    """A valid small-horizon synthesis spec for end-to-end properties."""
    horizon_s = draw(st.floats(min_value=120.0, max_value=1800.0))
    tenants = tuple(
        draw(tenant_profiles(name=f"tenant-{index}"))
        for index in range(draw(st.integers(min_value=1, max_value=3)))
    )
    crowds = ()
    if draw(st.booleans()):
        crowds = (FlashCrowd(
            tenant=tenants[0].name,
            kind=tenants[0].class_weights[0][0],
            start_s=draw(st.floats(min_value=0.0, max_value=horizon_s * 0.8)),
            duration_s=draw(st.floats(min_value=10.0, max_value=horizon_s)),
            peak_rate_per_s=draw(st.floats(min_value=0.1, max_value=20.0)),
        ),)
    return TraceSpec(
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon_s=horizon_s,
        window_s=draw(st.floats(min_value=30.0, max_value=600.0)),
        tenants=tenants,
        crowds=crowds,
        classes=tuple(
            DemandClass(kind, median_bytes=2 * TB, sigma=0.5)
            for kind in FUZZ_KINDS
        ),
    )


class TraceReplayMachine:
    """Emit -> encode -> inject fuzzing of the trace replay pipeline.

    ``do_emit`` appends a record at (or after) the machine's trace
    clock, writes it through both live codec writers, and queues it;
    ``do_advance`` moves the DES clock and open-loop injects every
    queued record whose arrival has come due through the control
    plane's real admission path, tenant attached.  Chaos is active the
    whole time, so injection races faults exactly as a day-scale
    replay would.
    """

    def __init__(self, seed: int = 0, scenario: FleetScenario | None = None):
        if scenario is None:
            scenario = default_scenario(
                policy="edf",
                cache="lru",
                seed=seed,
                spec=FleetSpec(shuttle_policy=CHAOS_SHUTTLE_POLICY),
                chaos=default_campaign(seed=seed),
                degradation=DegradationPolicy(),
            )
        self.scenario = scenario
        self.env = Environment()
        self.topology = FleetTopology(self.env, scenario.spec, scenario.catalog)
        self.plane = ControlPlane(self.env, self.topology, scenario)
        if scenario.chaos is not None:
            self.plane.attach_campaign(
                install_campaign(self.env, self.topology.systems,
                                 scenario.chaos)
            )
        for lane in self.plane.lanes.values():
            for _ in range(lane.stations):
                self.env.process(self.plane._worker(lane))
        self.header = fuzz_header(scenario.catalog)
        self.targets = dict(scenario.targets)
        self._binary = io.BytesIO()
        self._jsonl = io.StringIO()
        self._bin_writer = BinaryTraceWriter(self._binary, self.header)
        self._jsonl_writer = JsonlTraceWriter(self._jsonl, self.header)
        self.emitted: list[TraceRecord] = []
        self.pending: list[TraceRecord] = []
        self.injected = 0
        self.rules = 0
        self._clock = 0.0
        self._next_job_id = 0
        self._last_now = self.env.now

    # -- rules -------------------------------------------------------------------

    def do_emit(self, tenant_index: int, dataset_index: int, kind_index: int,
                gap_s: float, size_fraction: float,
                deadline_slack_s: float) -> None:
        self.rules += 1
        arrival = self._clock + max(0.0, gap_s)
        record = TraceRecord(
            arrival_s=arrival,
            tenant=self.header.tenants[tenant_index % len(self.header.tenants)],
            dataset=self.header.datasets[
                dataset_index % len(self.header.datasets)
            ],
            size_bytes=max(1.0, size_fraction * 8 * TB),
            kind=self.header.kinds[kind_index % len(self.header.kinds)],
            deadline_s=arrival + max(1.0, deadline_slack_s),
        )
        self._clock = arrival
        self._bin_writer.write(record)
        self._jsonl_writer.write(record)
        self.emitted.append(record)
        self.pending.append(record)

    def do_advance(self, dt: float) -> None:
        self.rules += 1
        self.env.run(until=self.env.now + max(0.1, dt))
        self._inject_due()

    def _inject_due(self) -> None:
        """Open-loop injection: every due record enters admission."""
        now = self.env.now
        while self.pending and self.pending[0].arrival_s <= now:
            record = self.pending.pop(0)
            target = self.targets.get(record.kind, DEFAULT_TARGET)
            self.plane.submit(_FleetJob(
                job=record.to_job(self._next_job_id),
                dataset=record.dataset,
                read_bytes=min(record.size_bytes,
                               self.scenario.catalog.dataset_bytes),
                deadline_at=record.deadline_s,
                priority=target.priority,
                tenant=record.tenant,
            ))
            self._next_job_id += 1
            self.injected += 1

    def step(self, rng: np.random.Generator) -> None:
        """One random rule — the deterministic-walk driver's unit."""
        if rng.random() < 0.55:
            self.do_emit(
                int(rng.integers(0, len(self.header.tenants))),
                int(rng.integers(0, len(self.header.datasets))),
                int(rng.integers(0, len(self.header.kinds))),
                float(rng.random()) * 60.0,
                float(rng.random()),
                float(rng.random()) * 1800.0,
            )
        else:
            self.do_advance(float(rng.random()) * 90.0)

    # -- invariants --------------------------------------------------------------

    def check(self) -> None:
        now = self.env.now
        assert now >= self._last_now, (
            f"virtual time ran backwards: {now} < {self._last_now}"
        )
        self._last_now = now
        arrivals = [record.arrival_s for record in self.emitted]
        assert arrivals == sorted(arrivals), "emitted arrivals not monotone"
        assert self._decode_binary() == self.emitted, (
            f"binary round-trip mismatch after {len(self.emitted)} records"
        )
        assert self.plane._resolved <= self.injected, (
            f"{self.plane._resolved} outcomes for {self.injected} "
            "injected records"
        )
        legal = {Outcome.SERVED, Outcome.FAILOVER, Outcome.SHED,
                 Outcome.FAILED}
        for record in self.plane._outcomes:
            assert record.outcome in legal, (
                f"unknown outcome {record.outcome!r}"
            )
            assert record.tenant in self.header.tenants, (
                f"outcome lost its tenant: {record!r}"
            )

    def _decode_binary(self) -> list[TraceRecord]:
        stream = io.BytesIO(self._binary.getvalue())
        return list(read_binary_records(stream, read_binary_header(stream)))

    def _decode_jsonl(self) -> list[TraceRecord]:
        stream = io.StringIO(self._jsonl.getvalue())
        return list(read_jsonl_records(stream, read_jsonl_header(stream)))

    def finish(self, drain_step_s: float = 300.0, max_steps: int = 400) -> None:
        """Inject and drain everything, then audit conservation."""
        if self.pending:
            self.env.run(until=max(self.env.now + drain_step_s,
                                   self.pending[-1].arrival_s + 1.0))
            self._inject_due()
        assert not self.pending, "all emitted records must inject"
        steps = 0
        while self.plane._resolved < self.injected:
            self.env.run(until=self.env.now + drain_step_s)
            self.check()
            steps += 1
            assert steps < max_steps, (
                f"replay failed to drain: {self.plane._resolved} of "
                f"{self.injected} records resolved after {steps} steps"
            )
        if self.plane._campaign is not None:
            self.plane._campaign.stop()
        # Let in-flight evictions land so pool accounting is exact.
        self.env.run(until=self.env.now + 3600.0)
        self.check()
        assert self._decode_jsonl() == self.emitted, (
            "JSONL round-trip mismatch at teardown"
        )
        # Per-tenant accounting reconciles: every resolved record kept
        # its tenant, and the tenant rows sum to the overall count.
        tenant_jobs = sum(
            stats.n_jobs for stats in self.plane.sla._by_tenant.values()
        )
        assert tenant_jobs == self.plane._resolved, (
            f"tenant accounting lost records: {tenant_jobs} != "
            f"{self.plane._resolved}"
        )
        # No leaked carts under mid-replay chaos: each held pool token
        # is a cache resident, and the per-rail audits read zero.
        resident = sum(
            len(lane.cache.entries)
            for lane in self.plane.lanes.values()
            if lane.cache is not None
        )
        held = self.topology.cart_pool.count
        assert held == resident, (
            f"cart-pool tokens held ({held}) != cache residency ({resident})"
        )
        for system in self.topology.systems:
            audit = system.leaked_resources()
            assert all(count == 0 for count in audit.values()), (
                f"replay leak audit: {audit}"
            )


class TraceReplayStateMachine(RuleBasedStateMachine):
    """Hypothesis wrapper: shrinkable emit/advance replay sequences."""

    def __init__(self):
        super().__init__()
        self.machine = TraceReplayMachine(seed=0)

    @rule(tenant=st.integers(min_value=0, max_value=2),
          dataset=st.integers(min_value=0, max_value=11),
          kind=st.integers(min_value=0, max_value=2),
          gap=st.floats(min_value=0.0, max_value=60.0),
          size=st.floats(min_value=0.0, max_value=1.0),
          slack=st.floats(min_value=1.0, max_value=1800.0))
    def emit(self, tenant, dataset, kind, gap, size, slack):
        self.machine.do_emit(tenant, dataset, kind, gap, size, slack)

    @rule(dt=st.floats(min_value=0.1, max_value=90.0))
    def advance(self, dt):
        self.machine.do_advance(dt)

    @invariant()
    def invariants_hold(self):
        self.machine.check()

    def teardown(self):
        self.machine.finish()
