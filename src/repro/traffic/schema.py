"""Versioned trace records: the demand language of :mod:`repro.traffic`.

A trace is a header followed by a time-ordered stream of
:class:`TraceRecord` values — one per request an internet-scale user
population makes of the fleet.  The schema is deliberately tiny (six
fields) and versioned (:data:`TRACE_SCHEMA_VERSION`), because traces
outlive code: a committed or archived trace must either decode exactly
or fail loudly, never reinterpret silently.

The header pre-declares every tenant, dataset and traffic-class name
the records may use.  That makes the packed-binary codec possible
(strings become small integer ids) and turns "typo'd dataset name"
into a write-time error instead of a mid-replay surprise a million
records in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import ConfigurationError, DataIntegrityError
from ..units import assert_positive
from ..workloads.generator import TransferJob

#: Bumped on any change to the record layout or header semantics; both
#: codecs embed it and refuse to decode a trace from another version.
TRACE_SCHEMA_VERSION = 1

#: First bytes of every packed-binary trace ("DHL Trace, version 1").
TRACE_MAGIC = b"DHT1"

#: First key of every JSONL trace header line.
JSONL_SCHEMA = f"dhl-trace/{TRACE_SCHEMA_VERSION}"


@dataclass(frozen=True)
class TraceRecord:
    """One demand event: who wants which dataset, how much, by when."""

    arrival_s: float
    tenant: str
    dataset: str
    size_bytes: float
    kind: str
    deadline_s: float
    """Absolute virtual time by which the request should complete —
    pre-resolved at synthesis so replay never needs the SLA table to
    interpret a record."""

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigurationError(
                f"arrival_s must be >= 0, got {self.arrival_s}"
            )
        assert_positive("size_bytes", self.size_bytes)
        if self.deadline_s < self.arrival_s:
            raise ConfigurationError(
                f"deadline_s ({self.deadline_s}) precedes arrival_s "
                f"({self.arrival_s})"
            )
        for name in ("tenant", "dataset", "kind"):
            if not getattr(self, name):
                raise ConfigurationError(f"record {name} must be non-empty")

    def to_job(self, job_id: int) -> TransferJob:
        """The workload-layer view of this record."""
        return TransferJob(
            job_id=job_id,
            arrival_s=self.arrival_s,
            size_bytes=self.size_bytes,
            kind=self.kind,
        )


@dataclass(frozen=True)
class TraceHeader:
    """Self-describing preamble written before any records.

    The three name tables are closed vocabularies: a record whose
    tenant, dataset or kind is not declared here is rejected at encode
    time by both codecs.  Table order is significant — it defines the
    binary codec's integer ids — so headers compare equal iff they
    would decode the same bytes the same way.
    """

    seed: int = 0
    horizon_s: float = 0.0
    tenants: tuple[str, ...] = ()
    datasets: tuple[str, ...] = ()
    kinds: tuple[str, ...] = ()
    version: int = TRACE_SCHEMA_VERSION
    extra: tuple[tuple[str, float], ...] = field(default=())
    """Free-form numeric annotations (e.g. the synthesis rate scale)
    carried through both codecs untouched."""

    def __post_init__(self) -> None:
        if self.version != TRACE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"trace schema version {self.version} is not the supported "
                f"version {TRACE_SCHEMA_VERSION}"
            )
        if self.horizon_s < 0:
            raise ConfigurationError("horizon_s must be >= 0")
        for label, table in (("tenants", self.tenants),
                             ("datasets", self.datasets),
                             ("kinds", self.kinds)):
            if len(set(table)) != len(table):
                raise ConfigurationError(f"duplicate names in {label}: {table}")
            if any(not name for name in table):
                raise ConfigurationError(f"empty name in {label}")
            if len(table) > 0xFFFF:
                raise ConfigurationError(
                    f"{label} table exceeds the 65535-entry binary id space"
                )

    def to_dict(self) -> dict[str, object]:
        return {
            "version": self.version,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "tenants": list(self.tenants),
            "datasets": list(self.datasets),
            "kinds": list(self.kinds),
            "extra": {key: value for key, value in self.extra},
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "TraceHeader":
        try:
            return cls(
                version=int(payload["version"]),
                seed=int(payload["seed"]),
                horizon_s=float(payload["horizon_s"]),
                tenants=tuple(payload["tenants"]),
                datasets=tuple(payload["datasets"]),
                kinds=tuple(payload["kinds"]),
                extra=tuple(sorted(dict(payload.get("extra", {})).items())),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataIntegrityError(
                f"malformed trace header: {exc}"
            ) from exc

    def validate_record(self, record: TraceRecord) -> None:
        """Reject records naming anything outside the header tables."""
        if record.tenant not in self.tenants:
            raise ConfigurationError(
                f"tenant {record.tenant!r} is not declared in the header"
            )
        if record.dataset not in self.datasets:
            raise ConfigurationError(
                f"dataset {record.dataset!r} is not declared in the header"
            )
        if record.kind not in self.kinds:
            raise ConfigurationError(
                f"kind {record.kind!r} is not declared in the header"
            )


def monotone(records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
    """Pass records through, failing fast on a backwards arrival.

    Both codecs wrap their streams in this so an out-of-order trace is a
    :class:`~repro.errors.DataIntegrityError` at the offending record,
    not a subtly wrong replay an hour of virtual time later.
    """
    last = float("-inf")
    for index, record in enumerate(records):
        if record.arrival_s < last:
            raise DataIntegrityError(
                f"trace arrivals must be non-decreasing: record {index} "
                f"arrives at {record.arrival_s} after {last}"
            )
        last = record.arrival_s
        yield record
