"""Trace-driven internet-scale demand for the DHL fleet.

The north star asks for "heavy traffic from millions of users"; this
package is that demand layer.  It has four parts, each usable alone:

* :mod:`~repro.traffic.schema` — a compact, versioned trace record
  (arrival, tenant, dataset, bytes, class, deadline) with a
  self-describing header;
* :mod:`~repro.traffic.codec` — JSONL and packed-binary codecs with
  constant-memory streaming readers and writers, so a 10M-request day
  never lives in RAM;
* :mod:`~repro.traffic.synth` — seeded synthesis: diurnal
  non-homogeneous Poisson arrivals via thinning, superimposed
  flash-crowd bursts, Zipf popularity over the fleet's dataset
  catalog, multi-tenant class mixes — byte-identical serially or
  across :func:`repro.core.sweep.map_chunks` process pools;
* :mod:`~repro.traffic.replay` — an open-loop adapter that feeds a
  trace into :func:`repro.fleet.controlplane.run_fleet` incrementally
  on the DES clock behind a bounded lookahead cursor, with per-tenant
  SLA accounting surfaced through the fleet report.

``repro traffic`` (see :mod:`repro.cli`) runs the benchmark pipeline
end to end and gates it against the committed ``BENCH_traffic.json``.
"""

from .schema import (
    JSONL_SCHEMA,
    TRACE_MAGIC,
    TRACE_SCHEMA_VERSION,
    TraceHeader,
    TraceRecord,
    monotone,
)
from .codec import (
    BinaryTraceWriter,
    FORMATS,
    JsonlTraceWriter,
    RECORD_STRUCT,
    read_binary_header,
    read_binary_records,
    read_jsonl_header,
    read_jsonl_records,
    read_trace,
    write_trace,
)
from .synth import (
    DAY_S,
    DEFAULT_WINDOW_S,
    DemandClass,
    FlashCrowd,
    TenantProfile,
    TraceSpec,
    default_spec,
    expected_records,
    expected_window_counts,
    synthesise,
    synthesise_pooled,
    synthesise_window,
    trace_header,
)
from .replay import (
    LookaheadCursor,
    ReplayConfig,
    ReplayResult,
    bound_jobs,
    check_compatible,
    replay_fleet,
    replay_fleet_sharded,
)
from .bench import (
    TrafficBenchReport,
    bench_scenario,
    in_system_bound,
    run_traffic_bench,
)

__all__ = [
    "BinaryTraceWriter",
    "DAY_S",
    "DEFAULT_WINDOW_S",
    "DemandClass",
    "FORMATS",
    "FlashCrowd",
    "JSONL_SCHEMA",
    "JsonlTraceWriter",
    "LookaheadCursor",
    "RECORD_STRUCT",
    "ReplayConfig",
    "ReplayResult",
    "TRACE_MAGIC",
    "TRACE_SCHEMA_VERSION",
    "TenantProfile",
    "TraceHeader",
    "TraceRecord",
    "TraceSpec",
    "TrafficBenchReport",
    "bench_scenario",
    "bound_jobs",
    "check_compatible",
    "default_spec",
    "expected_records",
    "expected_window_counts",
    "in_system_bound",
    "monotone",
    "read_binary_header",
    "read_binary_records",
    "read_jsonl_header",
    "read_jsonl_records",
    "read_trace",
    "replay_fleet",
    "replay_fleet_sharded",
    "run_traffic_bench",
    "synthesise",
    "synthesise_pooled",
    "synthesise_window",
    "trace_header",
    "write_trace",
]
