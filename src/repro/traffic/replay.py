"""Open-loop trace replay into the fleet control plane.

The replay path is the whole point of the trace layer: demand arrives
at the control plane *as the DES clock reaches it*, so admission
control, shedding, circuit breakers and caches react to offered load
the way a live fleet would — not to a pre-built job list.

Two bounds keep a 10M-request day in constant memory:

* the control plane's lazy intake holds at most **one** bound job ahead
  of the clock (see ``ControlPlane._arrivals``);
* the :class:`LookaheadCursor` in front of it decodes records in small
  chunks, never buffering more than ``max_pending`` records nor more
  than ``lookahead_s`` of virtual time past the last record it handed
  out.  ``peak_pending`` records the high-water mark, the live-object
  count the traffic bench gates on.

Replay is open-loop: the trace is the offered load, full stop.  Jobs
the fleet sheds do not come back as retries — exactly the
assume-nothing baseline the paper's contention studies need.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.shard import ShardPlan, ShardReport

from ..errors import ConfigurationError
from ..obs import Tracer
from ..fleet.controlplane import FleetReport, FleetScenario, run_fleet
from ..fleet.controlplane import _FleetJob
from ..fleet.sla import DEFAULT_TARGET, ClassTarget, SlaReport
from .schema import TraceHeader, TraceRecord


@dataclass(frozen=True)
class ReplayConfig:
    """Bounds on how far replay may decode ahead of the DES clock."""

    max_pending: int = 4096
    """Hard cap on decoded-but-not-yet-injected records."""
    lookahead_s: float = 60.0
    """Virtual-time horizon: never decode past the last injected
    arrival by more than this."""
    chunk_records: int = 256
    """Records decoded per refill — the injection batch size."""

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ConfigurationError("max_pending must be >= 1")
        if self.lookahead_s <= 0:
            raise ConfigurationError("lookahead_s must be positive")
        if not 1 <= self.chunk_records <= self.max_pending:
            raise ConfigurationError(
                f"chunk_records must be within [1, max_pending="
                f"{self.max_pending}], got {self.chunk_records}"
            )


class LookaheadCursor:
    """Bounded decode-ahead over a streaming record iterator.

    Chunked: a refill decodes up to ``chunk_records`` records at once
    (amortising codec overhead), but stops early at the lookahead
    horizon, carrying the first over-horizon record until the clock
    catches up.  Because the control plane pulls the next record only
    after submitting the previous one, the last record handed out is a
    faithful proxy for the DES clock — no back-reference into the
    environment is needed, which keeps the cursor a plain iterator.
    """

    def __init__(self, records: Iterable[TraceRecord],
                 config: ReplayConfig | None = None):
        self.config = config if config is not None else ReplayConfig()
        self._records = iter(records)
        self._buffer: deque[TraceRecord] = deque()
        self._carry: TraceRecord | None = None
        self._exhausted = False
        self._last_out: float | None = None
        self.n_records = 0
        self.peak_pending = 0

    @property
    def pending(self) -> int:
        """Decoded records waiting for injection (carry included)."""
        return len(self._buffer) + (1 if self._carry is not None else 0)

    def _refill(self) -> None:
        horizon = (
            None if self._last_out is None
            else self._last_out + self.config.lookahead_s
        )
        if self._carry is not None:
            if horizon is not None and self._carry.arrival_s > horizon:
                # Still beyond the window; hand it out alone so the
                # clock can advance to it.
                self._buffer.append(self._carry)
                self._carry = None
                return
            self._buffer.append(self._carry)
            self._carry = None
        while len(self._buffer) < self.config.chunk_records:
            if self._exhausted:
                break
            try:
                record = next(self._records)
            except StopIteration:
                self._exhausted = True
                break
            if (
                horizon is not None
                and record.arrival_s > horizon
                and self._buffer
            ):
                self._carry = record
                break
            self._buffer.append(record)
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending

    def __iter__(self) -> Iterator[TraceRecord]:
        return self

    def __next__(self) -> TraceRecord:
        if not self._buffer:
            self._refill()
        if not self._buffer:
            raise StopIteration
        record = self._buffer.popleft()
        self._last_out = record.arrival_s
        self.n_records += 1
        return record


def bound_jobs(
    records: Iterable[TraceRecord],
    targets: dict[str, ClassTarget],
    cart_bytes: float,
    default: ClassTarget = DEFAULT_TARGET,
) -> Iterator[_FleetJob]:
    """Lazily turn trace records into pre-bound fleet jobs.

    Unlike the synthetic path there is no random binding draw: the
    trace already names dataset, tenant and deadline.  Job ids number
    records in arrival order.  Priorities still come from the
    scenario's targets so scheduling policy and trace stay decoupled.
    """
    for job_id, record in enumerate(records):
        yield _FleetJob(
            job=record.to_job(job_id),
            dataset=record.dataset,
            read_bytes=min(record.size_bytes, cart_bytes),
            deadline_at=record.deadline_s,
            priority=targets.get(record.kind, default).priority,
            tenant=record.tenant,
        )


@dataclass(frozen=True)
class ReplayResult:
    """One trace replay: the fleet report plus replay-side accounting."""

    fleet: FleetReport
    n_records: int
    peak_pending: int
    config: ReplayConfig
    wall_s: float
    header: TraceHeader | None = field(default=None)

    @property
    def tenant_sla(self) -> SlaReport:
        if self.fleet.tenant_sla is None:
            raise ConfigurationError(
                "the replay observed no tenants — was the trace empty?"
            )
        return self.fleet.tenant_sla

    @property
    def peak_in_system(self) -> int:
        return self.fleet.peak_in_system


def check_compatible(header: TraceHeader, scenario: FleetScenario) -> None:
    """Fail fast when a trace names datasets the fleet does not serve."""
    known = set(scenario.catalog.names)
    unknown = [name for name in header.datasets if name not in known]
    if unknown:
        raise ConfigurationError(
            f"trace datasets {unknown} are not in the scenario catalog "
            f"({scenario.catalog.n_datasets} datasets)"
        )


def replay_fleet(
    scenario: FleetScenario,
    records: Iterable[TraceRecord],
    config: ReplayConfig | None = None,
    header: TraceHeader | None = None,
    tracer: Tracer | None = None,
) -> ReplayResult:
    """Stream a trace through :func:`~repro.fleet.controlplane.run_fleet`.

    ``records`` may be a live synthesis stream or a codec reader; either
    way it is consumed incrementally behind a :class:`LookaheadCursor`.
    Pass the trace ``header`` when available to validate dataset
    compatibility before the first launch.  Day-scale traces should use
    a scenario with ``retain_records=False`` so SLA accounting stays
    constant-memory too.
    """
    config = config if config is not None else ReplayConfig()
    if header is not None:
        check_compatible(header, scenario)
    cursor = LookaheadCursor(records, config)
    started = time.perf_counter()
    report = run_fleet(
        scenario,
        tracer=tracer,
        jobs=bound_jobs(
            cursor, dict(scenario.targets), scenario.catalog.dataset_bytes
        ),
    )
    return ReplayResult(
        fleet=report,
        n_records=cursor.n_records,
        peak_pending=cursor.peak_pending,
        config=config,
        wall_s=time.perf_counter() - started,
        header=header,
    )


def replay_fleet_sharded(
    plan: "ShardPlan",
    records: Iterable[TraceRecord],
    config: ReplayConfig | None = None,
    header: TraceHeader | None = None,
    engine: str = "process",
    workers: int | None = None,
) -> tuple[ReplayResult, "ShardReport"]:
    """Stream a trace through the sharded multi-process fleet runner.

    The same bounded-lookahead cursor feeds the parent's epoch pump, so
    the memory contract is unchanged: at most ``max_pending`` decoded
    records plus one epoch window of bound jobs exist at any moment.
    Returns the familiar :class:`ReplayResult` (built from the merged
    fleet report) alongside the full
    :class:`~repro.fleet.shard.ShardReport`.  This is how a 1M-request
    day finally uses every core — see ``docs/scaling.md``.
    """
    from ..fleet.shard import run_sharded

    config = config if config is not None else ReplayConfig()
    scenario = plan.scenario
    if header is not None:
        check_compatible(header, scenario)
    cursor = LookaheadCursor(records, config)
    started = time.perf_counter()
    shard_report = run_sharded(
        plan,
        engine=engine,
        workers=workers,
        jobs=bound_jobs(
            cursor, dict(scenario.targets), scenario.catalog.dataset_bytes
        ),
    )
    result = ReplayResult(
        fleet=shard_report.fleet,
        n_records=cursor.n_records,
        peak_pending=cursor.peak_pending,
        config=config,
        wall_s=time.perf_counter() - started,
        header=header,
    )
    return result, shard_report
