"""Traffic benchmarking: the ``repro traffic`` artefact.

Synthesises a scaled-down internet day (same shape as the headline
million-request trace: three tenants, diurnal curves, one flash
crowd), encodes it through the binary codec, replays it open-loop into
the fleet control plane, and serialises the KPIs to
``BENCH_traffic.json`` — the committed baseline CI regenerates on
every push.

As with the fleet bench, every gated KPI is **virtual-time** output of
a seeded deterministic pipeline, so the regression gate compares
values directly; synthesis and replay throughput (events/s) and wall
time are recorded as informational context only.  The payload also
pins the layer's structural invariants as booleans: codec round-trip
identity, the lookahead cap on decoded records, and the admission
bound on live jobs — the constant-memory contract.
"""

from __future__ import annotations

import io
import json
import math
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..errors import ConfigurationError
from ..fleet.cache import CacheConfig
from ..fleet.controlplane import AdmissionControl, FleetScenario
from ..fleet.sla import ClassSla
from .codec import (
    BinaryTraceWriter,
    JsonlTraceWriter,
    read_binary_header,
    read_binary_records,
    read_jsonl_header,
    read_jsonl_records,
)
from .replay import ReplayConfig, ReplayResult, replay_fleet
from .schema import TraceHeader, TraceRecord
from .synth import TraceSpec, default_spec, expected_records, synthesise, trace_header

SCHEMA = "repro-bench-traffic/1"

DEFAULT_SEED = 0
DEFAULT_HORIZON_S = 3600.0
#: Bench-sized request target: big enough that shedding, the flash
#: crowd and the reservoirs all engage, small enough for a CI smoke.
DEFAULT_REQUESTS = 25_000

#: Records round-tripped through both codecs for the identity check.
ROUNDTRIP_SAMPLE = 512

DEFAULT_REPLAY_CONFIG = ReplayConfig(
    max_pending=2048, lookahead_s=120.0, chunk_records=256
)


def bench_scenario(spec: TraceSpec, horizon_s: float) -> FleetScenario:
    """The fleet the bench replays into: EDF + LRU, shed past the queue.

    ``failover_links=0`` makes overflow shed instead of queueing on
    optical links, which is what makes the live-job bound of
    :func:`in_system_bound` airtight; ``retain_records=False`` keeps
    SLA accounting constant-memory, the mode any day-scale replay uses.
    """
    return FleetScenario(
        catalog=spec.catalog,
        targets=spec.targets,
        policy="edf",
        cache=CacheConfig(policy="lru"),
        admission=AdmissionControl(max_queue_depth=64, failover_links=0),
        seed=spec.seed,
        horizon_s=horizon_s,
        retain_records=False,
    )


def in_system_bound(scenario: FleetScenario) -> int:
    """Worst-case simultaneously-live jobs under shed-overflow admission.

    Every lane queues at most ``max_queue_depth``, every station serves
    at most one, and one job can transiently sit in ``submit`` before
    the shed decision resolves it.
    """
    spec = scenario.spec
    return (
        spec.n_racks * scenario.admission.max_queue_depth
        + spec.total_stations
        + 1
    )


def _roundtrip_identical(header: TraceHeader,
                         sample: list[TraceRecord]) -> bool:
    """Encode + decode the sample through both codecs; demand identity."""
    binary = io.BytesIO()
    writer = BinaryTraceWriter(binary, header)
    for record in sample:
        writer.write(record)
    binary.seek(0)
    from_binary = list(
        read_binary_records(binary, read_binary_header(binary))
    )
    text = io.StringIO()
    jsonl = JsonlTraceWriter(text, header)
    for record in sample:
        jsonl.write(record)
    text.seek(0)
    from_jsonl = list(read_jsonl_records(text, read_jsonl_header(text)))
    return from_binary == sample and from_jsonl == sample


class _StreamMeter:
    """Counts tenants/kinds/bytes of a record stream as it passes."""

    def __init__(self) -> None:
        self.tenant_counts: dict[str, int] = {}
        self.kind_counts: dict[str, int] = {}
        self.offered_bytes = 0.0

    def tap(self, records: Iterable[TraceRecord]) -> Iterator[TraceRecord]:
        for record in records:
            self.tenant_counts[record.tenant] = (
                self.tenant_counts.get(record.tenant, 0) + 1
            )
            self.kind_counts[record.kind] = (
                self.kind_counts.get(record.kind, 0) + 1
            )
            self.offered_bytes += record.size_bytes
            yield record


@dataclass(frozen=True)
class TrafficBenchReport:
    """One synthesis + encode + replay pass with its accounting."""

    seed: int
    horizon_s: float
    requests: int
    rate_scale: float
    spec: TraceSpec
    scenario: FleetScenario
    n_records: int
    offered_bytes: float
    trace_bytes: int
    tenant_counts: tuple[tuple[str, int], ...]
    kind_counts: tuple[tuple[str, int], ...]
    synth_wall_s: float
    roundtrip_ok: bool
    result: ReplayResult

    @property
    def in_system_bound(self) -> int:
        return in_system_bound(self.scenario)

    @property
    def invariants(self) -> dict[str, bool]:
        tenant_sla = self.result.fleet.tenant_sla
        return {
            "codec_roundtrip_identical": self.roundtrip_ok,
            "peak_pending_within_cap": (
                self.result.peak_pending <= self.result.config.max_pending
            ),
            "peak_in_system_bounded": (
                self.result.peak_in_system <= self.in_system_bound
            ),
            "all_records_replayed": (
                self.result.n_records == self.n_records
                and self.result.fleet.n_jobs == self.n_records
            ),
            "every_tenant_accounted": (
                tenant_sla is not None
                and len(tenant_sla.classes) == len(self.spec.tenants)
            ),
        }


def run_traffic_bench(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    requests: int = DEFAULT_REQUESTS,
    config: ReplayConfig = DEFAULT_REPLAY_CONFIG,
) -> TrafficBenchReport:
    """Synthesise, encode and replay one bench-sized day slice."""
    if requests < 100:
        raise ConfigurationError(
            f"the bench needs >= 100 requests to exercise anything, "
            f"got {requests}"
        )
    base = default_spec(seed=seed, horizon_s=horizon_s, rate_scale=1.0)
    rate_scale = requests / expected_records(base)
    spec = default_spec(seed=seed, horizon_s=horizon_s, rate_scale=rate_scale)
    header = trace_header(spec)

    meter = _StreamMeter()
    encoded = io.BytesIO()
    writer = BinaryTraceWriter(encoded, header)
    sample: list[TraceRecord] = []
    started = time.perf_counter()
    for record in meter.tap(synthesise(spec)):
        if len(sample) < ROUNDTRIP_SAMPLE:
            sample.append(record)
        writer.write(record)
    synth_wall_s = time.perf_counter() - started

    roundtrip_ok = _roundtrip_identical(header, sample)

    encoded.seek(0)
    decoded_header = read_binary_header(encoded)
    scenario = bench_scenario(spec, horizon_s)
    result = replay_fleet(
        scenario,
        read_binary_records(encoded, decoded_header),
        config=config,
        header=decoded_header,
    )
    return TrafficBenchReport(
        seed=seed,
        horizon_s=horizon_s,
        requests=requests,
        rate_scale=rate_scale,
        spec=spec,
        scenario=scenario,
        n_records=writer.count,
        offered_bytes=meter.offered_bytes,
        trace_bytes=encoded.getbuffer().nbytes,
        tenant_counts=tuple(sorted(meter.tenant_counts.items())),
        kind_counts=tuple(sorted(meter.kind_counts.items())),
        synth_wall_s=synth_wall_s,
        roundtrip_ok=roundtrip_ok,
        result=result,
    )


def _sla_kpis(sla: ClassSla) -> dict[str, object]:
    return {
        "n_jobs": sla.n_jobs,
        "n_completed": sla.n_completed,
        "p50_s": round(sla.p50_s, 3),
        "p95_s": round(sla.p95_s, 3),
        "p99_s": round(sla.p99_s, 3),
        "deadline_miss_rate": round(sla.deadline_miss_rate, 6),
        "goodput_gb_per_s": round(sla.goodput_bytes_per_s / 1e9, 3),
    }


def report_payload(bench: TrafficBenchReport) -> dict[str, object]:
    """The JSON-serialisable form (``BENCH_traffic.json``)."""
    from ..analysis.perf import environment_info

    fleet = bench.result.fleet
    replay_wall = bench.result.wall_s
    return {
        "schema": SCHEMA,
        "seed": bench.seed,
        "horizon_s": bench.horizon_s,
        "requests_target": bench.requests,
        "rate_scale": round(bench.rate_scale, 9),
        "synthesis": {
            "n_records": bench.n_records,
            "offered_pb": round(bench.offered_bytes / 1e15, 6),
            "trace_mb": round(bench.trace_bytes / 1e6, 6),
            "tenants": {name: count for name, count in bench.tenant_counts},
            "kinds": {name: count for name, count in bench.kind_counts},
            "events_per_s_informational": round(
                bench.n_records / bench.synth_wall_s, 0
            ) if bench.synth_wall_s > 0 else 0.0,
        },
        "replay": {
            "n_jobs": fleet.n_jobs,
            "served": fleet.served,
            "shed": fleet.shed,
            "failovers": fleet.failovers,
            "failed": fleet.failed,
            "p50_s": round(fleet.sla.overall.p50_s, 3),
            "p95_s": round(fleet.sla.overall.p95_s, 3),
            "p99_s": round(fleet.p99_s, 3),
            "deadline_miss_rate": round(fleet.deadline_miss_rate, 6),
            "goodput_gb_per_s": round(fleet.goodput_bytes_per_s / 1e9, 3),
            "cache_hit_rate": round(fleet.hit_rate, 6),
            "launches": fleet.launches,
            "makespan_s": round(fleet.makespan_s, 3),
            "peak_in_system": fleet.peak_in_system,
            "in_system_bound": bench.in_system_bound,
            "peak_pending": bench.result.peak_pending,
            "max_pending": bench.result.config.max_pending,
            "events_per_s_informational": round(
                fleet.n_jobs / replay_wall, 0
            ) if replay_wall > 0 else 0.0,
        },
        "tenants": {
            sla.kind: _sla_kpis(sla)
            for sla in bench.result.tenant_sla.classes
        },
        "invariants": bench.invariants,
        "wall_s_informational": round(bench.synth_wall_s + replay_wall, 3),
        "environment": environment_info(),
    }


def write_report(bench: TrafficBenchReport, path: str) -> str:
    """Write ``BENCH_traffic.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed traffic baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _compare_section(
    label: str,
    fresh: Mapping[str, object],
    base: Mapping[str, object],
    rel_tol: float,
    problems: list[str],
) -> None:
    for key, base_value in base.items():
        if key.endswith("_informational"):
            continue
        fresh_value = fresh.get(key)
        if isinstance(base_value, Mapping):
            _compare_section(
                f"{label}.{key}", dict(fresh_value or {}), base_value,
                rel_tol, problems,
            )
        elif isinstance(base_value, bool) or not isinstance(
            base_value, (int, float)
        ):
            if fresh_value != base_value:
                problems.append(
                    f"{label}.{key}: {fresh_value!r} != baseline "
                    f"{base_value!r}"
                )
        elif fresh_value is None or not math.isclose(
            float(fresh_value), float(base_value), rel_tol=rel_tol,
            abs_tol=rel_tol,
        ):
            problems.append(
                f"{label}.{key}: {fresh_value} drifted from baseline "
                f"{base_value}"
            )


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    Every gated KPI is virtual-time output of a seeded pipeline, so it
    must match the baseline to float-noise tolerance on any machine;
    throughput numbers (``*_informational``) are exempt.  Invariants
    must hold in both payloads.
    """
    problems: list[str] = []
    for source, values in (("fresh run", payload.get("invariants", {})),
                           ("baseline", baseline.get("invariants", {}))):
        for name, value in dict(values).items():
            if not value:
                problems.append(f"invariant failed in {source}: {name}")
    for section in ("synthesis", "replay", "tenants"):
        _compare_section(
            section,
            dict(payload.get(section, {})),
            dict(baseline.get(section, {})),
            rel_tol,
            problems,
        )
    return problems
