"""Seeded trace synthesis: diurnal NHPP demand with flash crowds.

Arrivals are a superposition of non-homogeneous Poisson processes —
one per tenant (a diurnal cosine around its base rate) plus one per
flash crowd (a triangular burst) — realised by **thinning**: each
component draws homogeneous candidates at its peak rate ``lambda_max``
over a window, then keeps each candidate at ``t`` with probability
``lambda(t) / lambda_max``.  Kept arrivals get a traffic class from the
tenant's weights, a dataset from a Zipf draw over the fleet's
:class:`~repro.fleet.topology.DatasetCatalog`, a lognormal size from
the class model, and an absolute deadline from the SLA targets.

Determinism is **window-partitioned**: every ``(seed, component,
window)`` triple owns an independent
:class:`numpy.random.SeedSequence` substream, so a trace is
byte-identical whether windows are synthesised serially, out of order,
or fanned out across :func:`repro.core.sweep.map_chunks` process
workers — the property the fleet's replication layer already relies on
for reports, extended here to demand itself.  Memory is bounded by one
window's records, never the whole day's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Iterator

import numpy as np

from ..core.sweep import map_chunks
from ..errors import ConfigurationError
from ..units import TB, assert_positive
from ..fleet.controlplane import FLEET_TARGETS
from ..fleet.sla import DEFAULT_TARGET, ClassTarget
from ..fleet.topology import DatasetCatalog
from .schema import TraceHeader, TraceRecord

#: One diurnal period.
DAY_S = 86400.0

#: Default synthesis window: fine enough that a 30-minute flash crowd
#: spans several windows, coarse enough that per-window numpy batches
#: stay in the vectorised regime.
DEFAULT_WINDOW_S = 600.0

_integrate = getattr(np, "trapezoid", None) or np.trapz


@dataclass(frozen=True)
class DemandClass:
    """Size model for one traffic class of the synthetic demand."""

    name: str
    median_bytes: float
    sigma: float = 0.6

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("class name must be non-empty")
        assert_positive("median_bytes", self.median_bytes)
        assert_positive("sigma", self.sigma)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's demand: diurnal rate curve + class mix + popularity."""

    name: str
    base_rate_per_s: float
    diurnal_amplitude: float = 0.6
    """Relative swing of the cosine: rate peaks at ``base * (1 + a)``
    and troughs at ``base * (1 - a)``."""
    peak_s: float = 50400.0
    """Time of day the cosine peaks (default 14:00)."""
    class_weights: tuple[tuple[str, float], ...] = ()
    zipf_alpha: float = 1.1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        assert_positive("base_rate_per_s", self.base_rate_per_s)
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ConfigurationError(
                f"diurnal_amplitude must be within [0, 1], got "
                f"{self.diurnal_amplitude}"
            )
        if not self.class_weights:
            raise ConfigurationError(
                f"tenant {self.name!r} needs at least one class weight"
            )
        for kind, weight in self.class_weights:
            if weight <= 0:
                raise ConfigurationError(
                    f"tenant {self.name!r} weight for {kind!r} must be "
                    f"positive, got {weight}"
                )
        assert_positive("zipf_alpha", self.zipf_alpha)

    @property
    def peak_rate_per_s(self) -> float:
        return self.base_rate_per_s * (1.0 + self.diurnal_amplitude)

    def intensity(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous arrival rate at time-of-day ``t`` (vectorised)."""
        phase = 2.0 * np.pi * (np.asarray(t, dtype=float) - self.peak_s) / DAY_S
        return self.base_rate_per_s * (
            1.0 + self.diurnal_amplitude * np.cos(phase)
        )


@dataclass(frozen=True)
class FlashCrowd:
    """A triangular burst on top of one tenant's diurnal demand."""

    tenant: str
    kind: str
    start_s: float
    duration_s: float
    peak_rate_per_s: float
    """Added arrival rate at the burst apex (``start + duration / 2``)."""

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ConfigurationError("flash crowd start_s must be >= 0")
        assert_positive("duration_s", self.duration_s)
        assert_positive("peak_rate_per_s", self.peak_rate_per_s)

    def intensity(self, t: np.ndarray) -> np.ndarray:
        """Triangular added rate at ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        apex = self.start_s + self.duration_s / 2.0
        half = self.duration_s / 2.0
        return self.peak_rate_per_s * np.clip(
            1.0 - np.abs(t - apex) / half, 0.0, None
        )


@dataclass(frozen=True)
class TraceSpec:
    """A complete, picklable description of one synthetic trace."""

    seed: int = 0
    horizon_s: float = DAY_S
    window_s: float = DEFAULT_WINDOW_S
    tenants: tuple[TenantProfile, ...] = ()
    crowds: tuple[FlashCrowd, ...] = ()
    classes: tuple[DemandClass, ...] = ()
    catalog: DatasetCatalog = field(default_factory=DatasetCatalog)
    targets: tuple[tuple[str, ClassTarget], ...] = FLEET_TARGETS

    def __post_init__(self) -> None:
        assert_positive("horizon_s", self.horizon_s)
        assert_positive("window_s", self.window_s)
        if not self.tenants:
            raise ConfigurationError("a trace spec needs at least one tenant")
        if not self.classes:
            raise ConfigurationError("a trace spec needs at least one class")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate tenant names: {names}")
        kinds = {demand.name for demand in self.classes}
        for tenant in self.tenants:
            for kind, _ in tenant.class_weights:
                if kind not in kinds:
                    raise ConfigurationError(
                        f"tenant {tenant.name!r} weights unknown class "
                        f"{kind!r}"
                    )
        for crowd in self.crowds:
            if crowd.tenant not in set(names):
                raise ConfigurationError(
                    f"flash crowd names unknown tenant {crowd.tenant!r}"
                )
            if crowd.kind not in kinds:
                raise ConfigurationError(
                    f"flash crowd names unknown class {crowd.kind!r}"
                )

    @property
    def n_windows(self) -> int:
        return int(math.ceil(self.horizon_s / self.window_s))

    def window_bounds(self, index: int) -> tuple[float, float]:
        if not 0 <= index < self.n_windows:
            raise ConfigurationError(
                f"window {index} outside [0, {self.n_windows})"
            )
        start = index * self.window_s
        return start, min(start + self.window_s, self.horizon_s)

    def tenant(self, name: str) -> TenantProfile:
        for profile in self.tenants:
            if profile.name == name:
                return profile
        raise ConfigurationError(f"unknown tenant {name!r}")


def trace_header(spec: TraceSpec) -> TraceHeader:
    """The header a synthesised trace carries: the spec's vocabularies."""
    return TraceHeader(
        seed=spec.seed,
        horizon_s=spec.horizon_s,
        tenants=tuple(tenant.name for tenant in spec.tenants),
        datasets=spec.catalog.names,
        kinds=tuple(demand.name for demand in spec.classes),
    )


#: One arrival component: a tenant's diurnal curve or a crowd's burst.
#: ``kind`` is None for tenants (drawn per record from the weights).
@dataclass(frozen=True)
class _Component:
    index: int
    tenant: TenantProfile
    crowd: FlashCrowd | None

    @property
    def peak_rate_per_s(self) -> float:
        if self.crowd is not None:
            return self.crowd.peak_rate_per_s
        return self.tenant.peak_rate_per_s

    def intensity(self, t: np.ndarray) -> np.ndarray:
        if self.crowd is not None:
            return self.crowd.intensity(t)
        return self.tenant.intensity(t)


def _components(spec: TraceSpec) -> tuple[_Component, ...]:
    parts = [
        _Component(index, tenant, None)
        for index, tenant in enumerate(spec.tenants)
    ]
    for offset, crowd in enumerate(spec.crowds):
        parts.append(_Component(
            len(spec.tenants) + offset, spec.tenant(crowd.tenant), crowd
        ))
    return tuple(parts)


def _class_arrays(
    spec: TraceSpec,
) -> tuple[dict[str, int], np.ndarray, np.ndarray, np.ndarray]:
    """(kind -> id, log-median, sigma, deadline) lookup arrays."""
    ids = {demand.name: index for index, demand in enumerate(spec.classes)}
    log_median = np.array(
        [math.log(demand.median_bytes) for demand in spec.classes]
    )
    sigma = np.array([demand.sigma for demand in spec.classes])
    targets = dict(spec.targets)
    deadline = np.array([
        targets.get(demand.name, DEFAULT_TARGET).deadline_s
        for demand in spec.classes
    ])
    return ids, log_median, sigma, deadline


def synthesise_window(spec: TraceSpec,
                      window_index: int) -> tuple[TraceRecord, ...]:
    """All records of one window, sorted by arrival.

    Module-level and driven by ``(spec, window_index)`` alone, with one
    seeded substream per component, so it is picklable into
    :func:`~repro.core.sweep.map_chunks` workers and byte-identical
    however the windows are scheduled.
    """
    t0, t1 = spec.window_bounds(window_index)
    span = t1 - t0
    kind_ids, log_median, sigma, deadline = _class_arrays(spec)
    kinds = tuple(demand.name for demand in spec.classes)
    datasets = spec.catalog.names
    per_component: list[list[TraceRecord]] = []
    for component in _components(spec):
        rng = np.random.default_rng(
            np.random.SeedSequence([spec.seed, component.index, window_index])
        )
        lam_max = component.peak_rate_per_s
        # Thinning: homogeneous candidates at the component's peak rate,
        # kept with probability intensity(t) / lam_max.  The candidate
        # count, times and acceptance draws are consumed in a fixed
        # order so the substream is a pure function of the triple.
        n_candidates = int(rng.poisson(lam_max * span))
        times = rng.uniform(t0, t1, size=n_candidates)
        keep = rng.random(n_candidates) * lam_max < component.intensity(times)
        times = np.sort(times[keep])
        n = len(times)
        if n == 0:
            per_component.append([])
            continue
        if component.crowd is not None:
            kind_idx = np.full(n, kind_ids[component.crowd.kind])
        else:
            weights = np.array(
                [weight for _, weight in component.tenant.class_weights]
            )
            cumulative = np.cumsum(weights / weights.sum())
            draw = rng.random(n)
            kind_idx = np.searchsorted(cumulative, draw, side="right")
            kind_idx = np.take(
                np.array([kind_ids[kind]
                          for kind, _ in component.tenant.class_weights]),
                np.clip(kind_idx, 0, len(weights) - 1),
            )
        zipf = np.cumsum(spec.catalog.zipf_weights(component.tenant.zipf_alpha))
        dataset_idx = np.clip(
            np.searchsorted(zipf, rng.random(n), side="right"),
            0, len(datasets) - 1,
        )
        sizes = np.exp(
            log_median[kind_idx] + sigma[kind_idx] * rng.standard_normal(n)
        )
        deadlines = times + deadline[kind_idx]
        tenant = component.tenant.name
        per_component.append([
            TraceRecord(
                arrival_s=float(times[i]),
                tenant=tenant,
                dataset=datasets[int(dataset_idx[i])],
                size_bytes=float(sizes[i]),
                kind=kinds[int(kind_idx[i])],
                deadline_s=float(deadlines[i]),
            )
            for i in range(n)
        ])
    merged: list[TraceRecord] = [
        record for records in per_component for record in records
    ]
    # Stable sort: equal arrivals keep component order, so the merge is
    # deterministic without comparing beyond the timestamp.
    merged.sort(key=lambda record: record.arrival_s)
    return tuple(merged)


def synthesise(spec: TraceSpec) -> Iterator[TraceRecord]:
    """Stream the whole trace window by window, constant memory."""
    for window_index in range(spec.n_windows):
        yield from synthesise_window(spec, window_index)


def _synthesise_chunk(
    spec: TraceSpec, chunk: tuple[int, ...]
) -> tuple[tuple[TraceRecord, ...], ...]:
    """``map_chunks`` worker: synthesise each window index in ``chunk``."""
    return tuple(synthesise_window(spec, index) for index in chunk)


def synthesise_pooled(
    spec: TraceSpec,
    engine: str = "serial",
    workers: int | None = None,
) -> tuple[TraceRecord, ...]:
    """The whole trace at once, windows fanned out over ``engine``.

    Materialises every record — meant for tests and moderate traces;
    day-scale replay should stream :func:`synthesise` instead.  The
    result is byte-identical across engines and worker counts.
    """
    windows = map_chunks(
        partial(_synthesise_chunk, spec),
        range(spec.n_windows),
        engine=engine,
        workers=workers,
    )
    return tuple(record for window in windows for record in window)


def expected_window_counts(spec: TraceSpec) -> np.ndarray:
    """Expected record count per window: the NHPP intensity integral.

    The reference curve chi-squared-style synthesis tests compare
    realised counts against.
    """
    counts = np.zeros(spec.n_windows)
    components = _components(spec)
    for window_index in range(spec.n_windows):
        t0, t1 = spec.window_bounds(window_index)
        grid = np.linspace(t0, t1, 65)
        counts[window_index] = sum(
            float(_integrate(component.intensity(grid), grid))
            for component in components
        )
    return counts


def expected_records(spec: TraceSpec) -> float:
    """Expected total record count of the spec."""
    return float(expected_window_counts(spec).sum())


def default_spec(
    seed: int = 0,
    horizon_s: float = DAY_S,
    rate_scale: float = 1.0,
    catalog: DatasetCatalog | None = None,
) -> TraceSpec:
    """The headline internet-scale day: three tenants, one flash crowd.

    At ``rate_scale=1.0`` the tenants sum to ~11.6 req/s — almost
    exactly one million requests over a full day — with a 30-minute
    evening flash crowd on the ``search`` tenant adding ~36k more.
    Classes reuse the fleet's rack-read size mix and SLA targets, so a
    replayed trace is directly comparable to the synthetic fleet bench.
    """
    assert_positive("rate_scale", rate_scale)
    return TraceSpec(
        seed=seed,
        horizon_s=horizon_s,
        tenants=(
            TenantProfile(
                name="search",
                base_rate_per_s=6.0 * rate_scale,
                diurnal_amplitude=0.7,
                peak_s=50400.0,
                class_weights=(("interactive", 0.8), ("batch", 0.2)),
                zipf_alpha=1.2,
            ),
            TenantProfile(
                name="analytics",
                base_rate_per_s=4.0 * rate_scale,
                diurnal_amplitude=0.4,
                peak_s=10800.0,
                class_weights=(("batch", 0.7), ("interactive", 0.3)),
                zipf_alpha=0.9,
            ),
            TenantProfile(
                name="backup",
                base_rate_per_s=1.6 * rate_scale,
                diurnal_amplitude=0.9,
                peak_s=14400.0,
                class_weights=(("archive", 0.75), ("batch", 0.25)),
                zipf_alpha=0.6,
            ),
        ),
        crowds=(
            FlashCrowd(
                tenant="search",
                kind="interactive",
                start_s=min(68400.0, max(0.0, horizon_s - 1800.0)),
                duration_s=1800.0,
                peak_rate_per_s=40.0 * rate_scale,
            ),
        ),
        classes=(
            DemandClass("interactive", median_bytes=2 * TB, sigma=0.5),
            DemandClass("batch", median_bytes=6 * TB, sigma=0.6),
            DemandClass("archive", median_bytes=16 * TB, sigma=0.5),
        ),
        catalog=catalog if catalog is not None else DatasetCatalog(),
    )
