"""Streaming JSONL and packed-binary trace codecs.

Both codecs share one contract: a :class:`~repro.traffic.schema.
TraceHeader` first, then records in non-decreasing arrival order, and
constant memory at any trace length — writers accept one record at a
time, readers yield one record at a time (decoding in fixed-size
batches internally for throughput).

``jsonl``
    one JSON object per line, human-greppable, ~170 bytes/record.
    Floats are serialised with :func:`repr` semantics, so a record
    round-trips bit-exactly.
``bin``
    :data:`~repro.traffic.schema.TRACE_MAGIC`, a length-prefixed JSON
    header, then fixed 30-byte records (``<dHHHdd``) whose strings are
    integer ids into the header's name tables.  A 10M-request day is
    ~300 MB on disk and decodes at millions of records/s.

:func:`read_trace` auto-detects the format from the first bytes, so
callers never track which codec wrote a file.
"""

from __future__ import annotations

import io
import json
import struct
from typing import BinaryIO, Iterable, Iterator, TextIO

from ..errors import ConfigurationError, DataIntegrityError
from .schema import (
    JSONL_SCHEMA,
    TRACE_MAGIC,
    TraceHeader,
    TraceRecord,
    monotone,
)

#: Packed layout of one binary record: arrival, tenant id, dataset id,
#: kind id, size, absolute deadline.
RECORD_STRUCT = struct.Struct("<dHHHdd")

#: Records decoded per read() batch by the binary reader.
DECODE_BATCH = 4096

FORMATS = ("bin", "jsonl")


class _MonotoneGate:
    """Write-side arrival-order enforcement shared by both writers."""

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = float("-inf")

    def check(self, record: TraceRecord) -> None:
        if record.arrival_s < self._last:
            raise DataIntegrityError(
                f"trace arrivals must be non-decreasing: got "
                f"{record.arrival_s} after {self._last}"
            )
        self._last = record.arrival_s


class JsonlTraceWriter:
    """Streams records to a text file-like, one JSON object per line."""

    def __init__(self, stream: TextIO, header: TraceHeader):
        self.stream = stream
        self.header = header
        self.count = 0
        self._gate = _MonotoneGate()
        stream.write(json.dumps(
            {"schema": JSONL_SCHEMA, **header.to_dict()}, sort_keys=True
        ))
        stream.write("\n")

    def write(self, record: TraceRecord) -> None:
        self.header.validate_record(record)
        self._gate.check(record)
        self.stream.write(json.dumps({
            "t": record.arrival_s,
            "tenant": record.tenant,
            "dataset": record.dataset,
            "bytes": record.size_bytes,
            "kind": record.kind,
            "deadline": record.deadline_s,
        }, sort_keys=True))
        self.stream.write("\n")
        self.count += 1


class BinaryTraceWriter:
    """Streams fixed 30-byte records to a binary file-like."""

    def __init__(self, stream: BinaryIO, header: TraceHeader):
        self.stream = stream
        self.header = header
        self.count = 0
        self._gate = _MonotoneGate()
        self._tenant_ids = {name: i for i, name in enumerate(header.tenants)}
        self._dataset_ids = {name: i for i, name in enumerate(header.datasets)}
        self._kind_ids = {name: i for i, name in enumerate(header.kinds)}
        blob = json.dumps(header.to_dict(), sort_keys=True).encode("utf-8")
        stream.write(TRACE_MAGIC)
        stream.write(struct.pack("<I", len(blob)))
        stream.write(blob)

    def write(self, record: TraceRecord) -> None:
        self._gate.check(record)
        try:
            packed = RECORD_STRUCT.pack(
                record.arrival_s,
                self._tenant_ids[record.tenant],
                self._dataset_ids[record.dataset],
                self._kind_ids[record.kind],
                record.size_bytes,
                record.deadline_s,
            )
        except KeyError:
            # Re-raise through the schema check for the precise message.
            self.header.validate_record(record)
            raise  # pragma: no cover - validate_record always raises
        self.stream.write(packed)
        self.count += 1


def _read_exact(stream: BinaryIO, n: int, what: str) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise DataIntegrityError(
            f"truncated binary trace: expected {n} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def read_binary_header(stream: BinaryIO) -> TraceHeader:
    """Decode the magic + header preamble, leaving ``stream`` at record 0."""
    magic = _read_exact(stream, len(TRACE_MAGIC), "magic")
    if magic != TRACE_MAGIC:
        raise DataIntegrityError(
            f"not a binary trace: magic {magic!r} != {TRACE_MAGIC!r}"
        )
    (length,) = struct.unpack("<I", _read_exact(stream, 4, "header length"))
    blob = _read_exact(stream, length, "header")
    try:
        payload = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataIntegrityError(f"corrupt binary trace header: {exc}") from exc
    return TraceHeader.from_dict(payload)


def read_binary_records(stream: BinaryIO,
                        header: TraceHeader) -> Iterator[TraceRecord]:
    """Stream records off a binary trace positioned past its header."""
    size = RECORD_STRUCT.size
    tenants, datasets, kinds = header.tenants, header.datasets, header.kinds

    def decoded() -> Iterator[TraceRecord]:
        while True:
            batch = stream.read(size * DECODE_BATCH)
            if not batch:
                return
            if len(batch) % size:
                raise DataIntegrityError(
                    f"truncated binary trace: {len(batch) % size} trailing "
                    "bytes are not a whole record"
                )
            for arrival, tenant_id, dataset_id, kind_id, size_bytes, deadline \
                    in RECORD_STRUCT.iter_unpack(batch):
                try:
                    yield TraceRecord(
                        arrival_s=arrival,
                        tenant=tenants[tenant_id],
                        dataset=datasets[dataset_id],
                        size_bytes=size_bytes,
                        kind=kinds[kind_id],
                        deadline_s=deadline,
                    )
                except IndexError:
                    raise DataIntegrityError(
                        f"binary record references id outside the header "
                        f"tables ({tenant_id}, {dataset_id}, {kind_id})"
                    ) from None

    return monotone(decoded())


def read_jsonl_header(stream: TextIO) -> TraceHeader:
    """Decode the JSONL header line, leaving ``stream`` at record 0."""
    line = stream.readline()
    if not line:
        raise DataIntegrityError("empty JSONL trace: no header line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DataIntegrityError(f"corrupt JSONL trace header: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != JSONL_SCHEMA:
        raise DataIntegrityError(
            f"not a JSONL trace: header schema {payload!r:.80}"
        )
    return TraceHeader.from_dict(payload)


def read_jsonl_records(stream: TextIO,
                       header: TraceHeader) -> Iterator[TraceRecord]:
    """Stream records off a JSONL trace positioned past its header."""

    def decoded() -> Iterator[TraceRecord]:
        for number, line in enumerate(stream, start=2):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                record = TraceRecord(
                    arrival_s=float(row["t"]),
                    tenant=row["tenant"],
                    dataset=row["dataset"],
                    size_bytes=float(row["bytes"]),
                    kind=row["kind"],
                    deadline_s=float(row["deadline"]),
                )
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                raise DataIntegrityError(
                    f"corrupt JSONL trace record on line {number}: {exc}"
                ) from exc
            header.validate_record(record)
            yield record

    return monotone(decoded())


def write_trace(path: str, header: TraceHeader,
                records: Iterable[TraceRecord], fmt: str = "bin") -> int:
    """Stream ``records`` to ``path`` in ``fmt``; returns the count."""
    if fmt not in FORMATS:
        raise ConfigurationError(f"format must be one of {FORMATS}, got {fmt!r}")
    if fmt == "bin":
        with open(path, "wb") as handle:
            bin_writer = BinaryTraceWriter(handle, header)
            for record in records:
                bin_writer.write(record)
            return bin_writer.count
    with open(path, "w", encoding="utf-8") as handle:
        writer = JsonlTraceWriter(handle, header)
        for record in records:
            writer.write(record)
        return writer.count


def read_trace(path: str) -> tuple[TraceHeader, Iterator[TraceRecord]]:
    """Open a trace of either format, auto-detected from its first bytes.

    Returns the header plus a lazy record iterator that holds the file
    open until exhausted (or garbage-collected) — a 10M-request trace
    is never materialised.
    """
    probe = open(path, "rb")
    magic = probe.read(len(TRACE_MAGIC))
    if magic == TRACE_MAGIC:
        probe.seek(0)
        header = read_binary_header(probe)
        return header, _closing(read_binary_records(probe, header), probe)
    probe.close()
    text = open(path, encoding="utf-8")
    header = read_jsonl_header(text)
    return header, _closing(read_jsonl_records(text, header), text)


def _closing(records: Iterator[TraceRecord],
             handle: io.IOBase) -> Iterator[TraceRecord]:
    try:
        yield from records
    finally:
        handle.close()
