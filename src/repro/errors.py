"""Exception hierarchy for the DHL reproduction library.

All library-specific failures derive from :class:`ReproError`, so callers
can catch one base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A model or simulator was configured with inconsistent parameters."""


class PhysicsError(ReproError, ValueError):
    """A physics computation received parameters outside its valid regime."""


class TopologyError(ReproError):
    """A network topology query could not be satisfied (unknown node, no path)."""


class SimulationError(ReproError):
    """The discrete-event engine or a simulator detected an invalid state."""


class SchedulingError(SimulationError):
    """The DHL scheduler was asked to perform an impossible operation."""


class CartStateError(SchedulingError):
    """A cart was asked to transition to an invalid state (e.g. launch while docked)."""


class StorageError(ReproError):
    """A storage-layer operation failed (unknown device, capacity exceeded)."""


class DataIntegrityError(StorageError):
    """Data on an SSD was lost or corrupted beyond what RAID can recover."""
