"""Exception hierarchy for the DHL reproduction library.

All library-specific failures derive from :class:`ReproError`, so callers
can catch one base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A model or simulator was configured with inconsistent parameters."""


class PhysicsError(ReproError, ValueError):
    """A physics computation received parameters outside its valid regime."""


class TopologyError(ReproError):
    """A network topology query could not be satisfied (unknown node, no path)."""


class SimulationError(ReproError):
    """The discrete-event engine or a simulator detected an invalid state."""


class SchedulingError(SimulationError):
    """The DHL scheduler was asked to perform an impossible operation."""


class CartStateError(SchedulingError):
    """A cart was asked to transition to an invalid state (e.g. launch while docked)."""


class TrackFaultError(SchedulingError):
    """A shuttle attempt failed because the track is faulted.

    Raised when the tube is breached (unavailable), a cart stalls
    in-tube and has to be extracted, or the attempt cannot physically
    proceed.  Retryable: :class:`~repro.dhlsim.policy.ShuttlePolicy`
    catches it and backs off.
    """

    def __init__(self, message: str, *, track: str | None = None,
                 cause: str | None = None):
        super().__init__(message)
        self.track = track
        self.cause = cause


class ShuttleTimeoutError(SchedulingError):
    """A shuttle operation exceeded its per-operation deadline.

    Raised by the retry wrapper when the deadline race (``AnyOf`` of the
    attempt process and a ``Timeout``) is won by the timeout.  Not
    retried: the deadline bounds the whole operation, not one attempt.
    """


class DegradedServiceError(SchedulingError):
    """The DHL cannot serve a request within its fault policy.

    Raised when retries are exhausted or a track outage has lasted past
    the failover threshold.  Callers holding a
    :class:`~repro.dhlsim.policy.FailoverPolicy` respond by re-routing
    the transfer over the optical network.
    """


class StorageError(ReproError):
    """A storage-layer operation failed (unknown device, capacity exceeded)."""


class DataIntegrityError(StorageError):
    """Data on an SSD was lost or corrupted beyond what RAID can recover."""
