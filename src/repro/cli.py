"""Command-line interface: print any reproduced table or figure.

Usage::

    python -m repro table6
    python -m repro fig6
    python -m repro all
    dhl-repro table7a          # via the console script
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .core.sensitivity import sensitivity_table
from .analysis import (
    breakeven_summary,
    engineering_table,
    fig2_table,
    figure6_ascii,
    hybrid_policy_table,
    intro_example,
    multistop_table,
    reliability_table,
    render_table,
    reuse_table,
    sneakernet_table,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7a,
    table7b,
    table8a,
    table8b,
    table8c,
)

_TABLES: dict[str, tuple[str, Callable[[], tuple[list[str], list[list[object]]]]]] = {
    "intro": ("Section I/II-C motivating numbers", intro_example),
    "table1": ("Table I: large emerging datasets", table1),
    "table2": ("Table II: storage solutions", table2),
    "table3": ("Table III: networking power", table3),
    "fig2": ("Figure 2: 29 PB route energies", fig2_table),
    "table4": ("Table IV: large ML models", table4),
    "table5": ("Table V: DHL parameters", table5),
    "table6": ("Table VI: design-space exploration", table6),
    "table7a": ("Table VII(a): iso-power comparison", table7a),
    "table7b": ("Table VII(b): iso-time comparison", table7b),
    "table8a": ("Table VIII(a): rail cost", table8a),
    "table8b": ("Table VIII(b): LIM cost", table8b),
    "table8c": ("Table VIII(c): total cost", table8c),
    "breakeven": ("Section V-E: minimum specifications", breakeven_summary),
    "sneakernet": ("Extension: friction-limited baselines", sneakernet_table),
    "hybrid": ("Extension: hybrid routing policies", hybrid_policy_table),
    "engineering": ("Extension: Section VI feasibility checks", engineering_table),
    "multistop": ("Extension: multi-stop contention vs speed", multistop_table),
    "reliability": ("Extension: fault tolerance vs availability model", reliability_table),
    "reuse": ("Extension: dataset-reuse economics", reuse_table),
    "sensitivity": ("Extension: parameter elasticities", sensitivity_table),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dhl-repro",
        description=(
            "Reproduce tables and figures from 'The Case For Data Centre "
            "Hyperloops' (ISCA 2024)."
        ),
    )
    choices = list(_TABLES) + ["fig6", "validate", "export", "all"]
    parser.add_argument(
        "artefact",
        choices=choices,
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--max-tracks",
        type=int,
        default=4,
        help="fig6: DHL tracks per curve (larger is slower)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="validate: skip the minute-long ML-simulation checks",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="export: output directory for CSV/JSON artefacts",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="export: include the slow Table VII and Fig. 6 artefacts",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: render the requested artefact(s) to stdout."""
    args = build_parser().parse_args(argv)
    if args.artefact == "fig6":
        from .mlsim.analysis import figure6_series

        print(figure6_ascii(figure6_series(max_tracks=args.max_tracks)))
        return 0
    if args.artefact == "export":
        from .analysis.export import export_tables

        written = export_tables(
            args.out, include_slow=args.full, include_fig6=args.full
        )
        for path in written:
            print(path)
        print(f"wrote {len(written)} artefacts to {args.out}/")
        return 0
    if args.artefact == "validate":
        from .analysis.validation import run_validation

        suite = run_validation(include_simulation=not args.fast)
        headers = ["Section", "Check", "Paper", "Measured", "Dev", "Status"]
        print(render_table(headers, suite.rows(),
                           title="Paper-vs-measured validation"))
        if suite.all_passed:
            print(f"\nAll {len(suite.checks)} checks passed.")
            return 0
        print(f"\n{len(suite.failures)} of {len(suite.checks)} checks FAILED.")
        return 1
    if args.artefact == "all":
        for name, (title, generator) in _TABLES.items():
            headers, rows = generator()
            print(render_table(headers, rows, title=f"[{name}] {title}"))
            print()
        return 0
    title, generator = _TABLES[args.artefact]
    headers, rows = generator()
    print(render_table(headers, rows, title=title))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
