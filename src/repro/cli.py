"""Command-line interface: print any reproduced table or figure.

Usage::

    python -m repro table6
    python -m repro fig6
    python -m repro all
    dhl-repro table7a          # via the console script
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .core.sensitivity import sensitivity_table
from .analysis import (
    breakeven_summary,
    engineering_table,
    fig2_table,
    figure6_ascii,
    hybrid_policy_table,
    intro_example,
    multistop_table,
    reliability_table,
    render_table,
    reuse_table,
    sneakernet_table,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7a,
    table7b,
    table8a,
    table8b,
    table8c,
)

_TABLES: dict[str, tuple[str, Callable[[], tuple[list[str], list[list[object]]]]]] = {
    "intro": ("Section I/II-C motivating numbers", intro_example),
    "table1": ("Table I: large emerging datasets", table1),
    "table2": ("Table II: storage solutions", table2),
    "table3": ("Table III: networking power", table3),
    "fig2": ("Figure 2: 29 PB route energies", fig2_table),
    "table4": ("Table IV: large ML models", table4),
    "table5": ("Table V: DHL parameters", table5),
    "table6": ("Table VI: design-space exploration", table6),
    "table7a": ("Table VII(a): iso-power comparison", table7a),
    "table7b": ("Table VII(b): iso-time comparison", table7b),
    "table8a": ("Table VIII(a): rail cost", table8a),
    "table8b": ("Table VIII(b): LIM cost", table8b),
    "table8c": ("Table VIII(c): total cost", table8c),
    "breakeven": ("Section V-E: minimum specifications", breakeven_summary),
    "sneakernet": ("Extension: friction-limited baselines", sneakernet_table),
    "hybrid": ("Extension: hybrid routing policies", hybrid_policy_table),
    "engineering": ("Extension: Section VI feasibility checks", engineering_table),
    "multistop": ("Extension: multi-stop contention vs speed", multistop_table),
    "reliability": ("Extension: fault tolerance vs availability model", reliability_table),
    "reuse": ("Extension: dataset-reuse economics", reuse_table),
    "sensitivity": ("Extension: parameter elasticities", sensitivity_table),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dhl-repro",
        description=(
            "Reproduce tables and figures from 'The Case For Data Centre "
            "Hyperloops' (ISCA 2024)."
        ),
    )
    choices = list(_TABLES) + ["fig6", "validate", "export", "trace", "bench",
                               "fleet", "chaos", "replicate", "traffic",
                               "learn", "surrogate", "all"]
    parser.add_argument(
        "artefact",
        choices=choices,
        help="which paper artefact to regenerate",
    )
    parser.add_argument(
        "--scenario",
        default="bulk-faults",
        help="trace: named scenario to run (bulk, bulk-faults, bulk-failover)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="trace: dataset shards (one cart each) in the campaign "
             "(default 4); fleet: run the scenario sharded into N pods "
             "via the multi-process co-simulator",
    )
    parser.add_argument(
        "--interpod-latency",
        type=float,
        default=5.0,
        help="fleet --shards: boundary latency between pods in simulated "
             "seconds (also the conservative epoch window)",
    )
    parser.add_argument(
        "--shard-engine",
        choices=("serial", "process"),
        default="process",
        help="fleet --shards: epoch executor (results are byte-identical "
             "either way)",
    )
    parser.add_argument(
        "--shard-out",
        default="BENCH_shard.json",
        help="bench shard mode: output path for the shard baseline JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="trace: seed for the scenario's fault cocktail and retries",
    )
    parser.add_argument(
        "--trace-out",
        default="trace.json",
        help="trace: output path for the Perfetto/Chrome trace JSON",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help="trace: also write a structured JSONL event log here",
    )
    parser.add_argument(
        "--max-tracks",
        type=int,
        default=4,
        help="fig6: DHL tracks per curve (larger is slower)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="validate: skip the minute-long ML-simulation checks",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="export: output directory for CSV/JSON artefacts",
    )
    parser.add_argument(
        "--mode",
        choices=("sweep", "engine", "chaos", "traffic", "shard", "learn",
                 "surrogate"),
        default="sweep",
        help="bench: 'sweep' times the design-space engines, 'engine' the "
             "DES core against the frozen reference, 'chaos' the "
             "graceful-degradation gate (same as the chaos artefact), "
             "'traffic' the trace synthesis + replay gate (same as the "
             "traffic artefact), 'shard' the sharded co-simulation "
             "identity + speedup gate, 'learn' the learned-control gate "
             "(same as the learn artefact), 'surrogate' the "
             "surrogate-planner gate (same as the surrogate artefact)",
    )
    parser.add_argument(
        "--points",
        type=int,
        default=None,
        help="bench: minimum number of design points in the sweep grid",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="bench engine mode: workload iteration-count multiplier",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="bench: timing repeats per engine (best run is reported)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="bench: worker processes for the 'process' engine",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        help="bench: output path for the perf baseline JSON "
             "(default BENCH_sweep.json, or BENCH_engine.json in engine mode)",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        default=None,
        help="bench: compare against a committed baseline and fail on regression",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="export: include the slow Table VII and Fig. 6 artefacts",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=3600.0,
        help="fleet: workload horizon in simulated seconds",
    )
    parser.add_argument(
        "--fleet-out",
        default="BENCH_fleet.json",
        help="fleet: output path for the fleet KPI baseline JSON",
    )
    parser.add_argument(
        "--capacity",
        action="store_true",
        help="fleet: also run the capacity planner over the candidate grid",
    )
    parser.add_argument(
        "--chaos-out",
        default="BENCH_chaos.json",
        help="chaos: output path for the chaos KPI baseline JSON",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=8,
        help="replicate: number of consecutive seeds, starting at --seed",
    )
    parser.add_argument(
        "--engine",
        choices=("serial", "process", "both"),
        default="both",
        help="replicate: evaluation engine; 'both' also verifies the "
             "serial and process reports are byte-identical",
    )
    parser.add_argument(
        "--policy",
        default="edf",
        help="replicate: fleet scheduling policy (fcfs, sjf, edf)",
    )
    parser.add_argument(
        "--cache",
        default="lru",
        help="replicate: rack cache policy (lru, lfu, size, none)",
    )
    parser.add_argument(
        "--replicate-out",
        default="REPLICATE_fleet.json",
        help="replicate: output path for the deterministic report JSON",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="traffic: approximate request count the synthesised trace "
             "targets over the horizon",
    )
    parser.add_argument(
        "--traffic-out",
        default="BENCH_traffic.json",
        help="traffic: output path for the traffic KPI baseline JSON",
    )
    parser.add_argument(
        "--learn-out",
        default="BENCH_learn.json",
        help="learn: output path for the learned-control baseline JSON",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="learn: training rounds (default the committed-gate shape)",
    )
    parser.add_argument(
        "--episodes-per-round",
        type=int,
        default=None,
        help="learn: episodes fanned out per training round",
    )
    parser.add_argument(
        "--no-parity-probe",
        action="store_true",
        help="learn/surrogate: skip the serial/process training parity "
             "probe (marks the invariant false; quick local iterations "
             "only)",
    )
    parser.add_argument(
        "--surrogate-out",
        default="BENCH_surrogate.json",
        help="surrogate: output path for the surrogate-planner baseline JSON",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: render the requested artefact(s) to stdout."""
    args = build_parser().parse_args(argv)
    if args.artefact == "fig6":
        from .mlsim.analysis import figure6_series

        print(figure6_ascii(figure6_series(max_tracks=args.max_tracks)))
        return 0
    if args.artefact == "export":
        from .analysis.export import export_tables

        written = export_tables(
            args.out, include_slow=args.full, include_fig6=args.full
        )
        for path in written:
            print(path)
        print(f"wrote {len(written)} artefacts to {args.out}/")
        return 0
    if args.artefact == "validate":
        from .analysis.validation import run_validation

        suite = run_validation(include_simulation=not args.fast)
        headers = ["Section", "Check", "Paper", "Measured", "Dev", "Status"]
        print(render_table(headers, suite.rows(),
                           title="Paper-vs-measured validation"))
        if suite.all_passed:
            print(f"\nAll {len(suite.checks)} checks passed.")
            return 0
        print(f"\n{len(suite.failures)} of {len(suite.checks)} checks FAILED.")
        return 1
    if args.artefact == "trace":
        import json

        # Lazy: scenarios import the whole simulator stack.
        from .obs.export import event_log, to_chrome_trace, validate_chrome_trace
        from .obs.scenarios import run_scenario

        result = run_scenario(
            args.scenario,
            shards=args.shards if args.shards is not None else 4,
            seed=args.seed,
        )
        payload = to_chrome_trace(result.tracer)
        validate_chrome_trace(payload)
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        print(f"scenario {result.name}: {result.report.shards_moved} shards, "
              f"makespan {result.makespan_s:.1f} s, "
              f"{result.report.launches} launches")
        print(f"wrote {len(payload['traceEvents'])} trace events to "
              f"{args.trace_out} (load in https://ui.perfetto.dev)")
        if args.events_out:
            events = event_log(result.tracer)
            with open(args.events_out, "w", encoding="utf-8") as handle:
                for entry in events:
                    handle.write(json.dumps(entry))
                    handle.write("\n")
            print(f"wrote {len(events)} log records to {args.events_out}")
        snapshot = result.system.metrics.snapshot()
        for name in sorted(snapshot):
            if name.startswith("count."):
                print(f"  {name} = {snapshot[name]['value']:g}")
        return 0
    if args.artefact == "bench" and args.mode == "engine":
        # Lazy: the engine bench imports both DES engines and dhlsim.
        from .sim import bench as engine_bench

        report = engine_bench.run_engine_bench(
            repeats=args.repeats or engine_bench.DEFAULT_REPEATS,
            scale=args.scale,
            workers=args.workers,
        )
        headers, rows = engine_bench.bench_table(report)
        print(render_table(headers, rows,
                           title="DES engine bench (optimised vs reference)"))
        scenario = dict(report.scenario)
        if "events_per_sec" in scenario:
            print(f"\ndhlsim scenario {scenario['name']}: "
                  f"{scenario['events_per_sec']:,.0f} events/s "
                  f"({scenario['events']} events, informational)")
        replicate_info = dict(report.replicate)
        if "skipped" in replicate_info:
            print(f"replicate comparison skipped: {replicate_info['skipped']}")
        else:
            print(f"replicate: process {replicate_info['speedup']}x over "
                  f"serial across {replicate_info['seeds']} seeds, "
                  f"identical payloads: {replicate_info['identical_payloads']}")
        out_path = args.bench_out or "BENCH_engine.json"
        path = engine_bench.write_report(report, out_path)
        print(f"\nwrote engine perf baseline to {path}")
        if not report.gate_passed:
            print(f"FAIL: {engine_bench.GATE_WORKLOAD} speedup "
                  f"{report.gate_speedup:.2f}x is below the "
                  f"{engine_bench.GATE_FLOOR:.1f}x gate")
            return 1
        if args.check:
            problems = engine_bench.compare_to_baseline(
                engine_bench.report_payload(report),
                engine_bench.load_baseline(args.check),
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "bench" and args.mode == "sweep":
        # Lazy: the bench sweeps hundreds of design points.
        from .analysis import perf

        report = perf.run_bench(
            n_points=args.points or perf.DEFAULT_POINTS,
            repeats=args.repeats or perf.DEFAULT_REPEATS,
            workers=args.workers,
        )
        headers, rows = perf.bench_table(report)
        print(render_table(headers, rows,
                           title=f"Sweep-engine bench ({report.n_points} points)"))
        print()
        headers, rows = perf.cache_stats_table(report)
        print(render_table(
            headers, rows,
            title="Report memo-cache probe (cold pass + warm re-evaluation)",
        ))
        path = perf.write_report(report, args.bench_out or "BENCH_sweep.json")
        print(f"\nwrote perf baseline to {path}")
        if not report.identical_results:
            print("FAIL: engines disagree on sweep results")
            return 1
        if args.check:
            problems = perf.compare_to_baseline(
                perf.report_payload(report), perf.load_baseline(args.check)
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "chaos" or (
        args.artefact == "bench" and args.mode == "chaos"
    ):
        # Lazy: chaos runs drive the full fleet simulator three times.
        from .analysis.fleetview import chaos_mode_table, lane_health_table
        from .chaos import bench as chaos_bench

        bench = chaos_bench.run_chaos_bench(
            seed=args.seed, horizon_s=args.horizon
        )
        campaign = chaos_bench.default_campaign(seed=args.seed)
        headers, rows = campaign.table()
        print(render_table(
            headers, rows,
            title=f"Chaos campaign '{campaign.name}' (seed {args.seed})",
        ))
        print()
        headers, rows = chaos_mode_table(bench)
        print(render_table(
            headers, rows,
            title=f"Graceful degradation (seed {bench.seed}, "
                  f"{bench.horizon_s:.0f} s horizon)",
        ))
        print()
        headers, rows = lane_health_table(bench.report("hardened"))
        print(render_table(headers, rows,
                           title="Lane health after the storm (hardened)"))
        path = chaos_bench.write_report(bench, args.chaos_out)
        print(f"\nwrote chaos KPI baseline to {path}")
        failed = [name for name, ok in bench.invariants.items() if not ok]
        if failed:
            print(f"FAIL: degradation invariants violated: {', '.join(failed)}")
            return 1
        if args.check:
            problems = chaos_bench.compare_to_baseline(
                chaos_bench.report_payload(bench),
                chaos_bench.load_baseline(args.check),
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "bench" and args.mode == "shard":
        # Lazy: the shard bench runs the 10x fleet on both executors.
        from .analysis.fleetview import shard_pod_table, shard_timing_table
        from .fleet import shardbench

        bench = shardbench.run_shard_bench(
            seed=args.seed, horizon_s=args.horizon, workers=args.workers
        )
        payload = shardbench.report_payload(bench)
        headers, rows = shard_pod_table(bench.serial)
        print(render_table(
            headers, rows,
            title=f"Shard bench ({bench.plan.n_pods} pods over "
                  f"{bench.plan.scenario.spec.n_tracks} tracks, "
                  f"W={bench.plan.window_s:g} s, {bench.serial.epochs} epochs)",
        ))
        print()
        headers, rows = shard_timing_table(payload)
        print(render_table(headers, rows,
                           title="Executor timings (informational)"))
        print(f"\nserial sha256 {bench.serial_digest[:16]}.., process "
              f"sha256 {bench.process_digest[:16]}.., identical: "
              f"{bench.identical}")
        for name, reason in dict(payload["skipped"]).items():
            print(f"{name} invariant skipped: {reason}")
        path = shardbench.write_report(bench, args.shard_out)
        print(f"wrote shard baseline to {path}")
        failed = [
            name for name, ok in dict(payload["invariants"]).items() if not ok
        ]
        if failed:
            print(f"FAIL: shard invariants violated: {', '.join(failed)}")
            return 1
        if args.check:
            problems = shardbench.compare_to_baseline(
                payload, shardbench.load_baseline(args.check)
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "fleet" and args.shards:
        # Lazy: a sharded run builds one control plane per pod.
        from .analysis.fleetview import fleet_sla_table, shard_pod_table
        from .fleet.controlplane import default_scenario
        from .fleet.shard import ShardPlan, run_sharded, signature_digest

        plan = ShardPlan(
            scenario=default_scenario(seed=args.seed, horizon_s=args.horizon),
            n_pods=args.shards,
            interpod_latency_s=args.interpod_latency,
        )
        report = run_sharded(
            plan, engine=args.shard_engine, workers=args.workers
        )
        headers, rows = shard_pod_table(report)
        print(render_table(
            headers, rows,
            title=f"Sharded fleet ({plan.n_pods} pods, "
                  f"W={plan.window_s:g} s, engine {report.engine} x "
                  f"{report.workers} workers)",
        ))
        print()
        headers, rows = fleet_sla_table(report.fleet)
        print(render_table(headers, rows, title="Merged per-class SLA"))
        print(f"\n{report.epochs} epochs, {report.forwarded} cross-pod "
              f"forwards, {sum(report.remote_outcomes.values())} outcome "
              f"notes, signature {signature_digest(report.fleet)[:16]}.., "
              f"{report.wall_s:.2f} s wall")
        return 0
    if args.artefact == "fleet":
        # Lazy: the fleet scenarios drive the full simulator stack.
        from .analysis.fleetview import (
            capacity_table,
            fleet_policy_table,
            fleet_sla_table,
        )
        from .fleet import bench as fleet_bench

        bench = fleet_bench.run_fleet_bench(
            seed=args.seed, horizon_s=args.horizon
        )
        headers, rows = fleet_policy_table(bench)
        print(render_table(
            headers, rows,
            title=f"Fleet policy comparison (seed {bench.seed}, "
                  f"{bench.horizon_s:.0f} s horizon)",
        ))
        print()
        headers, rows = fleet_sla_table(bench.report("edf+lru"))
        print(render_table(headers, rows, title="Per-class SLA (edf+lru)"))
        path = fleet_bench.write_report(bench, args.fleet_out)
        print(f"\nwrote fleet KPI baseline to {path}")
        p99_wins, energy_wins = bench.cache_beats_baseline
        if not (p99_wins and energy_wins):
            print("FAIL: edf+lru no longer beats fcfs+none "
                  f"(p99 win: {p99_wins}, launch-energy win: {energy_wins})")
            return 1
        if args.capacity:
            from .fleet.capacity import SlaRequirement, plan_capacity
            from .fleet.controlplane import default_scenario

            plan = plan_capacity(
                SlaRequirement(max_p99_s=300.0, max_miss_rate=0.05),
                default_scenario(policy="fcfs", cache="lru", seed=args.seed,
                                 horizon_s=min(args.horizon, 1800.0)),
                engine="process" if args.workers else "serial",
                workers=args.workers,
            )
            headers, rows = capacity_table(plan)
            print()
            print(render_table(headers, rows, title="Capacity plan"))
            if plan.best is None:
                print("FAIL: no candidate met the SLA requirement")
                return 1
        if args.check:
            problems = fleet_bench.compare_to_baseline(
                fleet_bench.report_payload(bench),
                fleet_bench.load_baseline(args.check),
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "traffic" or (
        args.artefact == "bench" and args.mode == "traffic"
    ):
        # Lazy: a traffic bench synthesises and replays a whole trace.
        from .analysis.fleetview import (
            traffic_synthesis_table,
            traffic_tenant_table,
        )
        from .traffic import bench as traffic_bench

        bench = traffic_bench.run_traffic_bench(
            seed=args.seed,
            horizon_s=args.horizon,
            requests=args.requests or traffic_bench.DEFAULT_REQUESTS,
        )
        headers, rows = traffic_synthesis_table(bench)
        print(render_table(
            headers, rows,
            title=f"Synthesised demand (seed {bench.seed}, "
                  f"{bench.horizon_s:.0f} s horizon, "
                  f"{bench.trace_bytes / 1e6:.1f} MB binary trace)",
        ))
        print()
        headers, rows = traffic_tenant_table(bench.result)
        print(render_table(headers, rows, title="Per-tenant SLA (replay)"))
        print(f"\nsynthesis: {bench.n_records} records in "
              f"{bench.synth_wall_s:.2f} s "
              f"({bench.n_records / max(bench.synth_wall_s, 1e-9):,.0f} "
              "events/s)")
        print(f"replay: {bench.result.n_records} records in "
              f"{bench.result.wall_s:.2f} s "
              f"({bench.result.n_records / max(bench.result.wall_s, 1e-9):,.0f}"
              " events/s), peak "
              f"{bench.result.fleet.peak_in_system} live jobs "
              f"(bound {bench.in_system_bound}), "
              f"{bench.result.peak_pending} decoded ahead "
              f"(cap {bench.result.config.max_pending})")
        path = traffic_bench.write_report(bench, args.traffic_out)
        print(f"wrote traffic KPI baseline to {path}")
        failed = [name for name, ok in bench.invariants.items() if not ok]
        if failed:
            print(f"FAIL: traffic invariants violated: {', '.join(failed)}")
            return 1
        if args.check:
            problems = traffic_bench.compare_to_baseline(
                traffic_bench.report_payload(bench),
                traffic_bench.load_baseline(args.check),
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "learn" or (
        args.artefact == "bench" and args.mode == "learn"
    ):
        # Lazy: a learn bench trains hundreds of fleet episodes.
        from .analysis.fleetview import learn_comparison_table
        from .learn import bench as learn_bench

        bench = learn_bench.run_learn_bench(
            seed=args.seed,
            rounds=args.rounds or learn_bench.DEFAULT_ROUNDS,
            episodes_per_round=(
                args.episodes_per_round
                or learn_bench.DEFAULT_EPISODES_PER_ROUND
            ),
            check_process_parity=not args.no_parity_probe,
        )
        payload = learn_bench.report_payload(bench)
        headers, rows = learn_comparison_table(payload)
        print(render_table(
            headers, rows,
            title=f"Learned vs fixed control (eval seed "
                  f"{bench.report.eval_seed}, {bench.rounds}x"
                  f"{bench.episodes_per_round} training episodes)",
        ))
        margins = dict(payload["margins"])
        print(f"\npolicy fingerprint {bench.report.fingerprint[:16]}.., "
              f"trained in {bench.train_wall_s:.1f} s wall")
        print(f"margins over best fixed ({payload['best_fixed']}): "
              f"p99 {margins['p99_s']:+.1f} s, "
              f"launch energy {margins['launch_energy_mj']:+.3f} MJ")
        path = learn_bench.write_report(bench, args.learn_out)
        print(f"wrote learn baseline to {path}")
        failed = [name for name, ok in bench.invariants.items() if not ok]
        if failed:
            print(f"FAIL: learn invariants violated: {', '.join(failed)}")
            return 1
        if args.check:
            problems = learn_bench.compare_to_baseline(
                payload, learn_bench.load_baseline(args.check)
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "surrogate" or (
        args.artefact == "bench" and args.mode == "surrogate"
    ):
        # Lazy: a surrogate bench fans out hundreds of training runs.
        from .analysis.fleetview import (
            surrogate_planner_table,
            surrogate_validation_table,
        )
        from .surrogate import bench as surrogate_bench

        bench = surrogate_bench.run_surrogate_bench(
            seed=args.seed,
            check_process_parity=not args.no_parity_probe,
        )
        payload = surrogate_bench.report_payload(bench)
        headers, rows = surrogate_validation_table(payload)
        print(render_table(
            headers, rows,
            title=f"Surrogate validation (seeds "
                  f"{surrogate_bench.VALIDATION_SEEDS[0]}.."
                  f"{surrogate_bench.VALIDATION_SEEDS[-1]}, "
                  f"seed-median DES truth)",
        ))
        print()
        headers, rows = surrogate_planner_table(payload)
        print(render_table(
            headers, rows,
            title=f"Capacity planners (p99 <= "
                  f"{surrogate_bench.GATE_REQUIREMENT.max_p99_s:g} s, "
                  f"miss <= "
                  f"{surrogate_bench.GATE_REQUIREMENT.max_miss_rate:.0%})",
        ))
        print(f"\ntraining: {bench.training_rows} rows over "
              f"{len(surrogate_bench.TRAIN_SEEDS)} seeds in "
              f"{bench.train_wall_s:.1f} s wall, fit in "
              f"{bench.fit_wall_s:.1f} s")
        print(f"model fingerprint {bench.model_fingerprint_serial[:16]}.., "
              f"training set {bench.train_fingerprint_serial[:16]}..")
        wall = dict(payload["wall_informational"])
        print(f"plan wall: exhaustive {wall['exhaustive_plan_s']:.3f} s, "
              f"surrogate {wall['surrogate_plan_s']:.3f} s "
              f"({wall['plan_speedup']:.1f}x, informational)")
        path = surrogate_bench.write_report(bench, args.surrogate_out)
        print(f"wrote surrogate baseline to {path}")
        failed = [name for name, ok in bench.invariants.items() if not ok]
        if failed:
            print(f"FAIL: surrogate invariants violated: {', '.join(failed)}")
            return 1
        if args.check:
            problems = surrogate_bench.compare_to_baseline(
                payload, surrogate_bench.load_baseline(args.check)
            )
            if problems:
                for problem in problems:
                    print(f"REGRESSION: {problem}")
                return 1
            print(f"no regression against {args.check}")
        return 0
    if args.artefact == "replicate":
        # Lazy: replication drives the full fleet simulator per seed.
        from .fleet.controlplane import default_scenario
        from .fleet.montecarlo import montecarlo_payload, replicate_fleet
        from .sim.replicate import render_payload, replicate_table

        cache = None if args.cache == "none" else args.cache
        scenario = default_scenario(policy=args.policy, cache=cache,
                                    seed=args.seed, horizon_s=args.horizon)
        seeds = range(args.seed, args.seed + args.replications)
        engines = (("serial", "process") if args.engine == "both"
                   else (args.engine,))
        rendered: dict[str, str] = {}
        result = None
        for engine in engines:
            result = replicate_fleet(scenario, seeds=seeds, engine=engine,
                                     workers=args.workers)
            rendered[engine] = render_payload(
                montecarlo_payload(scenario, result)
            )
            print(f"{engine}: {len(result.seeds)} replications in "
                  f"{result.wall_s:.2f} s wall")
        headers, rows = replicate_table(result)
        print()
        print(render_table(
            headers, rows,
            title=f"Fleet Monte-Carlo ({args.policy}+{scenario.cache_label}, "
                  f"seeds {seeds.start}..{seeds.stop - 1}, "
                  f"{scenario.horizon_s:.0f} s horizon)",
        ))
        if len(rendered) == 2 and rendered["serial"] != rendered["process"]:
            print("FAIL: serial and process reports are not byte-identical")
            return 1
        if len(rendered) == 2:
            print("\nserial and process reports are byte-identical")
        with open(args.replicate_out, "w", encoding="utf-8") as handle:
            handle.write(rendered[engines[0]])
        print(f"wrote replication report to {args.replicate_out}")
        return 0
    if args.artefact == "all":
        for name, (title, generator) in _TABLES.items():
            headers, rows = generator()
            print(render_table(headers, rows, title=f"[{name}] {title}"))
            print()
        return 0
    title, generator = _TABLES[args.artefact]
    headers, rows = generator()
    print(render_table(headers, rows, title=title))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
