"""Sharded multi-process fleet co-simulation.

One shared DES clock caps :mod:`repro.fleet` at a single core.  This
module partitions a large :class:`~repro.fleet.topology.FleetSpec` into
weakly-coupled **pods** — contiguous track ranges, each simulated by
its own :class:`~repro.sim.Environment` + control plane — that
exchange work only at inter-pod boundaries, and runs the pods on a
serial or persistent-multiprocess epoch executor.

**Conservative time windows.**  Every cross-pod interaction (a job
forwarded to the pod owning its dataset, an outcome notification sent
back) pays at least ``interpod_latency_s`` of virtual time.  Pods can
therefore run ``interpod_latency_s`` of virtual time completely
independently: epoch *k* executes the window ``(k*W, (k+1)*W]`` on
every pod, and messages produced during epoch *k* are timestamped
strictly later than ``(k+1)*W``, so delivering them at a later epoch
barrier never schedules into a pod's past.  This is the classic
conservative (CMB-style) synchronisation scheme with the lookahead
fixed at the physical inter-pod latency.

**Determinism contract.**  For a fixed :class:`ShardPlan`, the epoch
schedule, message set and canonical per-barrier injection order are
computed by the parent alone, so the serial executor and the process
executor (at *any* worker count) produce byte-identical
:class:`~repro.fleet.controlplane.FleetReport` signatures — the same
idiom as the existing serial==process sweep gates.  Changing
``n_pods`` changes the *model* (split cart pools, forwarding latency),
exactly like changing ``n_tracks`` would; ``n_pods == 1`` delegates to
the monolithic :func:`~repro.fleet.controlplane.run_fleet` and matches
it bit for bit.

See ``docs/scaling.md`` for the partitioning rules, the window maths,
the metric-merge semantics and a copy-pasteable N-core recipe.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import re
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Iterator, Mapping

from ..chaos.campaigns import ChaosCampaign
from ..chaos.runner import install_campaign
from ..errors import ConfigurationError, SimulationError
from ..obs import merge_snapshots_additive
from ..sim import Environment
from ..workloads.generator import TransferJob
from .controlplane import (
    ControlPlane,
    FleetReport,
    FleetScenario,
    _bind_jobs,
    _FleetJob,
)
from .sla import (
    JobRecord,
    SlaReport,
    SlaState,
    merge_sla_states,
    report_from_state,
    tenant_report_from_state,
)
from .topology import DatasetHome, FleetSpec, FleetTopology, assign_homes

#: Default inter-pod boundary latency (seconds of virtual time): the
#: conservative window W.  Cross-pod hops cost at least this much, and
#: every pod runs W of virtual time per epoch with no synchronisation.
DEFAULT_INTERPOD_LATENCY_S = 5.0

#: Epoch executors ``run_sharded`` accepts.
SHARD_ENGINES = ("serial", "process")

#: Counter name for jobs whose ingress pod did not own their dataset.
FORWARDED_COUNTER = "count.fleet.shard.forwarded"

#: Counter-name prefix for outcome notes delivered back to ingress pods.
REMOTE_OUTCOME_PREFIX = "count.fleet.shard.remote_outcome."

# A cross-pod message is a plain picklable tuple
#     (deliver_s, rank, job_id, dest_pod, payload)
# with rank 0 for forwarded jobs (payload: _FleetJob) and rank 1 for
# outcome notes (payload: outcome string).  Sorting messages by tuple
# order IS the canonical injection order: deliver-time first, jobs
# before notes, then job id — payloads are never compared because
# (rank, job_id) is unique.
_JOB_RANK = 0
_NOTE_RANK = 1

_TRACK_TARGET = re.compile(r"^t(\d+)")


def _globalise_target(target: str, offset: int) -> str:
    """Rewrite a pod-local ``t<track>...`` target to global track numbering."""
    return _TRACK_TARGET.sub(
        lambda match: f"t{int(match.group(1)) + offset}", target, count=1
    )


@dataclass(frozen=True)
class ShardPlan:
    """How one fleet scenario is carved into pods.

    The plan is pure data (picklable, hashable-by-value) and fully
    determines the sharded model: contiguous track ranges per pod via
    largest-remainder splitting, a proportional cart-pool share per
    pod, per-pod chaos campaigns, and the conservative window
    ``interpod_latency_s``.  Everything the executors need derives from
    the plan, which is what makes serial and process runs of the same
    plan byte-identical.
    """

    scenario: FleetScenario = field(default_factory=FleetScenario)
    n_pods: int = 2
    interpod_latency_s: float = DEFAULT_INTERPOD_LATENCY_S

    def __post_init__(self) -> None:
        spec = self.scenario.spec
        if self.n_pods < 1:
            raise ConfigurationError(f"n_pods must be >= 1, got {self.n_pods}")
        if self.n_pods > spec.n_tracks:
            raise ConfigurationError(
                f"n_pods ({self.n_pods}) exceeds the {spec.n_tracks} "
                "track(s) available to shard — a pod needs at least one rail"
            )
        if self.interpod_latency_s <= 0:
            raise ConfigurationError(
                f"interpod_latency_s must be positive, got "
                f"{self.interpod_latency_s}"
            )
        chaos = self.scenario.chaos
        if chaos is not None:
            for event in chaos.events:
                if event.track is not None and not (
                    0 <= event.track < spec.n_tracks
                ):
                    raise ConfigurationError(
                        f"chaos event targets track {event.track} but the "
                        f"fleet has {spec.n_tracks} tracks"
                    )

    @property
    def window_s(self) -> float:
        """The conservative epoch window W (== the inter-pod latency)."""
        return self.interpod_latency_s

    @property
    def track_ranges(self) -> tuple[tuple[int, int], ...]:
        """Per-pod ``(first_track, n_tracks)`` contiguous ranges."""
        base, remainder = divmod(self.scenario.spec.n_tracks, self.n_pods)
        ranges: list[tuple[int, int]] = []
        start = 0
        for pod in range(self.n_pods):
            count = base + (1 if pod < remainder else 0)
            ranges.append((start, count))
            start += count
        return tuple(ranges)

    @property
    def cart_shares(self) -> tuple[int, ...]:
        """Cart-pool split, proportional to tracks (largest remainder).

        Because the global spec guarantees ``cart_pool >= n_tracks``,
        every share is at least the pod's track count, so each pod's
        :class:`~repro.fleet.topology.FleetSpec` stays valid.
        """
        pool = self.scenario.spec.cart_pool
        n_tracks = self.scenario.spec.n_tracks
        shares = [(pool * count) // n_tracks for _, count in self.track_ranges]
        remainders = [(pool * count) % n_tracks for _, count in self.track_ranges]
        order = sorted(range(self.n_pods), key=lambda p: (-remainders[p], p))
        for pod in order[: pool - sum(shares)]:
            shares[pod] += 1
        return tuple(shares)

    def pod_of_track(self, track_index: int) -> int:
        """The pod owning a global track index."""
        for pod, (start, count) in enumerate(self.track_ranges):
            if start <= track_index < start + count:
                return pod
        raise ConfigurationError(
            f"track {track_index} is outside the fleet's "
            f"{self.scenario.spec.n_tracks} tracks"
        )

    def dataset_owners(self) -> dict[str, int]:
        """Dataset name -> owning pod, from the global round-robin homing."""
        homes = assign_homes(self.scenario.spec, self.scenario.catalog)
        return {
            name: self.pod_of_track(home.track_index)
            for name, home in homes.items()
        }

    def pod_spec(self, pod: int) -> FleetSpec:
        """The pod's own :class:`FleetSpec`: its tracks, its cart share."""
        _start, count = self.track_ranges[pod]
        return replace(
            self.scenario.spec, n_tracks=count, cart_pool=self.cart_shares[pod]
        )

    def pod_homes(self, pod: int) -> dict[str, DatasetHome]:
        """The pod's slice of the global homing, re-indexed to local tracks."""
        start, count = self.track_ranges[pod]
        return {
            name: replace(home, track_index=home.track_index - start)
            for name, home in assign_homes(
                self.scenario.spec, self.scenario.catalog
            ).items()
            if start <= home.track_index < start + count
        }

    def pod_chaos(self, pod: int) -> ChaosCampaign | None:
        """The pod's slice of the chaos campaign.

        Track-scoped events move to the owning pod with local track
        indices; pod-wide events (``track=None``) replicate to every
        pod (the runner fans them out over the pod's local tracks, so
        global coverage is preserved).  The background spec's seed is
        offset by ``1000 * first_track`` so the runner's per-track seed
        derivation reproduces the *global* per-track seeds exactly.
        """
        campaign = self.scenario.chaos
        if campaign is None:
            return None
        start, count = self.track_ranges[pod]
        events = []
        for event in campaign.ordered_events:
            if event.track is None:
                events.append(event)
            elif start <= event.track < start + count:
                events.append(replace(event, track=event.track - start))
        background = campaign.background
        if background is not None:
            background = replace(background, seed=background.seed + 1000 * start)
        if not events and background is None:
            return None
        return replace(campaign, events=tuple(events), background=background)

    def pod_scenario(self, pod: int) -> FleetScenario:
        """The complete per-pod scenario a :class:`_PodRunner` simulates."""
        return replace(
            self.scenario, spec=self.pod_spec(pod), chaos=self.pod_chaos(pod)
        )


@dataclass(frozen=True)
class _PodState:
    """Everything a finished pod ships back to the parent."""

    pod_index: int
    track_offset: int
    report: FleetReport
    sla_state: SlaState
    metrics: dict[str, dict[str, Any]]
    leftover_notes: tuple[tuple, ...]


class _HomesView:
    """Duck-typed stand-in for ``FleetTopology.home`` used by the parent.

    Parent-side job binding only needs ``home(dataset)``; building a
    full topology (N simulators, staged carts) just for that would
    dwarf the cost of binding itself.
    """

    __slots__ = ("_homes",)

    def __init__(self, homes: Mapping[str, DatasetHome]):
        self._homes = homes

    def home(self, dataset: str) -> DatasetHome:
        try:
            return self._homes[dataset]
        except KeyError:
            raise ConfigurationError(f"unknown dataset {dataset!r}") from None


class _Pump:
    """One-ahead buffer over the bound job stream.

    Keeps at most one job materialised beyond the current epoch, so a
    trace-driven day streams through the sharded runner with the same
    bounded-memory contract the monolithic lazy intake gives.
    """

    __slots__ = ("_iterator", "_next", "exhausted")

    def __init__(self, iterator: Iterator[_FleetJob]):
        self._iterator = iterator
        self._next: _FleetJob | None = None
        self.exhausted = False
        self._advance()

    def _advance(self) -> None:
        try:
            self._next = next(self._iterator)
        except StopIteration:
            self._next = None
            self.exhausted = True

    def pull(self, until: float) -> list[_FleetJob]:
        """All not-yet-pulled jobs arriving at or before ``until``."""
        out: list[_FleetJob] = []
        while not self.exhausted and self._next.job.arrival_s <= until:
            out.append(self._next)
            self._advance()
        return out


class _PodRunner:
    """One pod: an isolated environment + control plane, run in epochs."""

    def __init__(self, plan: ShardPlan, pod_index: int):
        self.plan = plan
        self.pod_index = pod_index
        self.track_offset = plan.track_ranges[pod_index][0]
        self.window_s = plan.window_s
        self.n_pods = plan.n_pods
        self.owners = plan.dataset_owners()
        scenario = plan.pod_scenario(pod_index)
        self.env = Environment()
        topology = FleetTopology(
            self.env, scenario.spec, scenario.catalog,
            homes=plan.pod_homes(pod_index),
        )
        self.plane = ControlPlane(self.env, topology, scenario)
        if scenario.chaos is not None:
            self.plane.attach_campaign(
                install_campaign(self.env, topology.systems, scenario.chaos)
            )
        self.plane.start_workers()
        self.outbox: list[tuple] = []
        self.plane.outcome_hook = self._on_outcome

    def _on_outcome(self, record: JobRecord) -> None:
        # Jobs whose ingress pod differs from ours were forwarded here;
        # the resolution travels back as a note, one boundary hop later.
        ingress = record.job_id % self.n_pods
        if ingress != self.pod_index:
            self.outbox.append((
                self.env.now + self.window_s,
                _NOTE_RANK,
                record.job_id,
                ingress,
                str(record.outcome),
            ))

    def deliver(self, messages: Iterable[tuple],
                arrivals: Iterable[_FleetJob]) -> None:
        """Apply one barrier's messages and local arrivals, in canonical order."""
        for deliver_s, rank, job_id, _dest, payload in messages:
            if rank == _JOB_RANK:
                self.plane.inject(payload, deliver_s)
            else:
                self.plane.registry.counter(
                    REMOTE_OUTCOME_PREFIX + payload
                ).inc()
        for fjob in arrivals:
            owner = self.owners[fjob.dataset]
            if owner == self.pod_index:
                self.plane.inject(fjob, fjob.job.arrival_s)
            else:
                self.plane.registry.counter(FORWARDED_COUNTER).inc()
                self.outbox.append((
                    fjob.job.arrival_s + self.window_s,
                    _JOB_RANK,
                    fjob.job.job_id,
                    owner,
                    fjob,
                ))

    def run_epoch(self, epoch_end: float) -> list[tuple]:
        """Advance the pod to ``epoch_end`` and drain its outbox."""
        self.env.run(until=epoch_end)
        out, self.outbox = self.outbox, []
        return out

    def finish(self) -> _PodState:
        """Close intake, drain to quiescence and export the pod's state."""
        self.plane.close_intake()
        self.env.run(until=self.plane._done)
        return _PodState(
            pod_index=self.pod_index,
            track_offset=self.track_offset,
            report=self.plane._build_report(),
            sla_state=self.plane.sla.export_state(),
            metrics=self.plane.registry.snapshot(),
            leftover_notes=tuple(self.outbox),
        )


class _SerialExecutor:
    """Runs every pod in-process, one after another, per epoch."""

    def __init__(self, plan: ShardPlan):
        self.runners = [_PodRunner(plan, pod) for pod in range(plan.n_pods)]

    def step(self, epoch_end: float, work: dict) -> list[tuple]:
        outbox: list[tuple] = []
        for pod, runner in enumerate(self.runners):
            messages, arrivals = work.get(pod, ((), ()))
            runner.deliver(messages, arrivals)
            outbox.extend(runner.run_epoch(epoch_end))
        return outbox

    def finish(self) -> list[_PodState]:
        return [runner.finish() for runner in self.runners]

    def close(self) -> None:
        pass


def _shard_worker(plan: ShardPlan, pod_indices: list[int], conn) -> None:
    """Process-executor worker: owns ``pod_indices`` for the whole run.

    Pod environments hold live generators and are unpicklable, so the
    worker is persistent: it builds its pods once and then answers
    ``step``/``finish`` commands over the pipe until told to stop.
    """
    try:
        runners = {pod: _PodRunner(plan, pod) for pod in pod_indices}
        while True:
            command = conn.recv()
            if command[0] == "step":
                _tag, epoch_end, work = command
                outbox: list[tuple] = []
                for pod in pod_indices:
                    messages, arrivals = work.get(pod, ((), ()))
                    runner = runners[pod]
                    runner.deliver(messages, arrivals)
                    outbox.extend(runner.run_epoch(epoch_end))
                conn.send(("ok", outbox))
            elif command[0] == "finish":
                conn.send(
                    ("ok", [runners[pod].finish() for pod in pod_indices])
                )
            else:  # "stop"
                return
    except EOFError:  # pragma: no cover - parent died mid-run
        return
    except BaseException as error:  # noqa: BLE001 - relayed to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class _ProcessExecutor:
    """Persistent spawn-context workers, each owning ``pod % workers`` pods.

    The pod→worker assignment only decides *where* a pod runs, never
    what it sees: barriers are global and injection order canonical, so
    any worker count yields byte-identical results.
    """

    def __init__(self, plan: ShardPlan, workers: int):
        context = multiprocessing.get_context("spawn")
        assignments = [
            [pod for pod in range(plan.n_pods) if pod % workers == w]
            for w in range(workers)
        ]
        self.assignments = [pods for pods in assignments if pods]
        self.conns = []
        self.procs = []
        for pods in self.assignments:
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_shard_worker, args=(plan, pods, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.conns.append(parent_conn)
            self.procs.append(proc)

    @staticmethod
    def _receive(conn) -> Any:
        status, payload = conn.recv()
        if status != "ok":
            raise SimulationError(f"shard worker failed: {payload}")
        return payload

    def step(self, epoch_end: float, work: dict) -> list[tuple]:
        for pods, conn in zip(self.assignments, self.conns):
            conn.send((
                "step",
                epoch_end,
                {pod: work[pod] for pod in pods if pod in work},
            ))
        outbox: list[tuple] = []
        for conn in self.conns:
            outbox.extend(self._receive(conn))
        return outbox

    def finish(self) -> list[_PodState]:
        for conn in self.conns:
            conn.send(("finish",))
        states: list[_PodState] = []
        for conn in self.conns:
            states.extend(self._receive(conn))
        return sorted(states, key=lambda state: state.pod_index)

    def close(self) -> None:
        for conn in self.conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


@dataclass(frozen=True)
class ShardReport:
    """A sharded run: the merged fleet report plus shard-level accounting."""

    plan: ShardPlan
    fleet: FleetReport
    engine: str
    workers: int
    epochs: int
    forwarded: int
    """Jobs whose ingress pod had to forward them across a boundary."""
    remote_outcomes: dict[str, int]
    """Outcome notes delivered back to ingress pods, by outcome."""
    pod_rows: tuple[dict[str, Any], ...]
    """Per-pod summary rows (pod, tracks, carts, job counts, makespan)."""
    metrics: dict[str, dict[str, Any]]
    """The additively merged registry snapshot of all pods."""
    wall_s: float

    @property
    def pod_jobs(self) -> tuple[int, ...]:
        """Per-pod resolved-job counts, in pod order."""
        return tuple(row["n_jobs"] for row in self.pod_rows)


def report_signature(report: FleetReport) -> dict[str, Any]:
    """Canonical JSON-able digest of everything a fleet run measured.

    Two runs are considered byte-identical when
    :func:`render_signature` of their signatures matches — the gate the
    shard bench and the determinism tests use.  Engine choice, worker
    count and wall-clock are deliberately absent.
    """
    def sla_row(row) -> dict[str, Any]:
        return {
            "kind": row.kind,
            "n_jobs": row.n_jobs,
            "n_completed": row.n_completed,
            "p50_s": row.p50_s,
            "p95_s": row.p95_s,
            "p99_s": row.p99_s,
            "deadline_miss_rate": row.deadline_miss_rate,
            "goodput_bytes_per_s": row.goodput_bytes_per_s,
        }

    def sla_block(sla: SlaReport | None) -> dict[str, Any] | None:
        if sla is None:
            return None
        return {
            "horizon_s": sla.horizon_s,
            "classes": [sla_row(row) for row in sla.classes],
            "overall": sla_row(sla.overall),
        }

    return {
        "label": report.scenario.label,
        "n_jobs": report.n_jobs,
        "served": report.served,
        "shed": report.shed,
        "failovers": report.failovers,
        "failed": report.failed,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "cache_evictions": report.cache_evictions,
        "launches": report.launches,
        "launch_energy_j": report.launch_energy_j,
        "failover_energy_j": report.failover_energy_j,
        "makespan_s": report.makespan_s,
        "diverted": report.diverted,
        "breaker_trips": report.breaker_trips,
        "rehomed": report.rehomed,
        "peak_in_system": report.peak_in_system,
        "sla": sla_block(report.sla),
        "tenant_sla": sla_block(report.tenant_sla),
        "lane_health": [dict(row) for row in report.lane_health],
        "chaos_entries": [list(entry) for entry in report.chaos_entries],
        "records": [
            [
                record.job_id,
                record.kind,
                record.dataset,
                record.arrival_s,
                record.deadline_s,
                record.read_bytes,
                str(record.outcome),
                record.completed_s,
                record.tenant,
            ]
            for record in report.records
        ],
    }


def render_signature(signature: dict[str, Any]) -> str:
    """Render a signature to its canonical byte-comparable string."""
    return json.dumps(signature, indent=2, sort_keys=True) + "\n"


def signature_digest(report: FleetReport) -> str:
    """SHA-256 hex digest of the rendered signature (for bench payloads)."""
    rendered = render_signature(report_signature(report))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def _merge_states(
    plan: ShardPlan, states: list[_PodState]
) -> tuple[FleetReport, dict[str, dict[str, Any]]]:
    """Fold per-pod states into one fleet report + merged metrics snapshot."""
    sla_state = merge_sla_states([state.sla_state for state in states])
    horizon_s = plan.scenario.horizon_s
    metrics = merge_snapshots_additive([state.metrics for state in states])
    # Notes still in flight when the pods drained are counter-only;
    # apply them to the merged snapshot so forwarded == remote notes.
    for state in states:
        for _deliver_s, _rank, _job_id, _dest, outcome in state.leftover_notes:
            name = REMOTE_OUTCOME_PREFIX + outcome
            entry = metrics.setdefault(name, {"type": "counter", "value": 0.0})
            entry["value"] += 1.0
    metrics = {name: metrics[name] for name in sorted(metrics)}
    lane_health: list[dict] = []
    chaos_entries: list[tuple[float, str, str, str]] = []
    for state in states:
        offset = state.track_offset
        for row in state.report.lane_health:
            globalised = dict(row)
            globalised["lane"] = _globalise_target(str(row["lane"]), offset)
            lane_health.append(globalised)
        for when, kind, target, detail in state.report.chaos_entries:
            chaos_entries.append(
                (when, kind, _globalise_target(target, offset), detail)
            )
    chaos_entries.sort()
    reports = [state.report for state in states]
    fleet = FleetReport(
        scenario=plan.scenario,
        sla=report_from_state(sla_state, horizon_s),
        records=sla_state.records,
        n_jobs=sum(report.n_jobs for report in reports),
        served=sum(report.served for report in reports),
        shed=sum(report.shed for report in reports),
        failovers=sum(report.failovers for report in reports),
        failed=sum(report.failed for report in reports),
        cache_hits=sum(report.cache_hits for report in reports),
        cache_misses=sum(report.cache_misses for report in reports),
        cache_evictions=sum(report.cache_evictions for report in reports),
        launches=sum(report.launches for report in reports),
        launch_energy_j=sum(report.launch_energy_j for report in reports),
        failover_energy_j=sum(report.failover_energy_j for report in reports),
        makespan_s=max(report.makespan_s for report in reports),
        diverted=sum(report.diverted for report in reports),
        breaker_trips=sum(report.breaker_trips for report in reports),
        rehomed=sum(report.rehomed for report in reports),
        lane_health=tuple(lane_health),
        chaos_entries=tuple(chaos_entries),
        # Per-pod peaks need not coincide in virtual time, so the sum
        # is an upper bound on the true fleet-wide peak.
        peak_in_system=sum(report.peak_in_system for report in reports),
        tenant_sla=(
            tenant_report_from_state(sla_state, horizon_s)
            if sla_state.by_tenant
            else None
        ),
    )
    return fleet, metrics


def _counter_value(metrics: Mapping[str, Mapping[str, Any]], name: str) -> int:
    entry = metrics.get(name)
    return int(entry["value"]) if entry is not None else 0


def run_sharded(
    plan: ShardPlan,
    engine: str = "serial",
    workers: int | None = None,
    jobs: Iterable[TransferJob] | None = None,
) -> ShardReport:
    """Run one sharded fleet co-simulation end to end.

    ``engine`` picks the epoch executor (``serial`` or ``process``);
    ``workers`` bounds the process pool (default: one worker per pod,
    capped at the CPU count).  ``jobs`` optionally replaces the
    scenario's synthetic stream with any lazy
    :class:`~repro.workloads.generator.TransferJob` (or pre-bound
    fleet-job) iterator, exactly as :func:`run_fleet` accepts — this is
    how trace replay routes a 1M-request day through all cores.

    With ``n_pods == 1`` the monolithic single-clock path runs instead
    (no windows, no boundary hops) and the returned fleet report is bit
    identical to :func:`run_fleet` on the same scenario.
    """
    if engine not in SHARD_ENGINES:
        raise ConfigurationError(
            f"engine must be one of {SHARD_ENGINES}, got {engine!r}"
        )
    scenario = plan.scenario
    started = time.perf_counter()
    if plan.n_pods == 1:
        # Inline run_fleet so the registry snapshot can ride along.
        env = Environment()
        topology = FleetTopology(env, scenario.spec, scenario.catalog)
        plane = ControlPlane(env, topology, scenario)
        if scenario.chaos is not None:
            plane.attach_campaign(
                install_campaign(env, topology.systems, scenario.chaos)
            )
        fleet = plane.run(_bind_jobs(scenario, topology, jobs=jobs))
        return ShardReport(
            plan=plan,
            fleet=fleet,
            engine=engine,
            workers=1,
            epochs=0,
            forwarded=0,
            remote_outcomes={},
            pod_rows=(
                {
                    "pod": 0,
                    "tracks": scenario.spec.n_tracks,
                    "carts": scenario.spec.cart_pool,
                    "n_jobs": fleet.n_jobs,
                    "served": fleet.served,
                    "shed": fleet.shed,
                    "failovers": fleet.failovers,
                    "failed": fleet.failed,
                    "makespan_s": fleet.makespan_s,
                },
            ),
            metrics=plane.registry.snapshot(),
            wall_s=time.perf_counter() - started,
        )
    homes = assign_homes(scenario.spec, scenario.catalog)
    pump = _Pump(iter(_bind_jobs(scenario, _HomesView(homes), jobs=jobs)))
    if pump.exhausted:
        raise ConfigurationError("no jobs arrived within the horizon")
    if engine == "process":
        if workers is None:
            workers = min(plan.n_pods, os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        executor: _SerialExecutor | _ProcessExecutor = _ProcessExecutor(
            plan, workers
        )
    else:
        workers = 1
        executor = _SerialExecutor(plan)
    window = plan.window_s
    pending: list[tuple] = []
    epochs = 0
    try:
        while not (pump.exhausted and not pending):
            epoch_end = (epochs + 1) * window
            arrivals = pump.pull(epoch_end)
            deliverable = sorted(
                message for message in pending if message[0] <= epoch_end
            )
            pending = [message for message in pending if message[0] > epoch_end]
            work: dict[int, tuple[list, list]] = {}
            for message in deliverable:
                work.setdefault(message[3], ([], []))[0].append(message)
            for fjob in arrivals:
                ingress = fjob.job.job_id % plan.n_pods
                work.setdefault(ingress, ([], []))[1].append(fjob)
            pending.extend(executor.step(epoch_end, work))
            epochs += 1
        states = executor.finish()
    finally:
        executor.close()
    fleet, metrics = _merge_states(plan, states)
    remote_outcomes = {
        name[len(REMOTE_OUTCOME_PREFIX):]: _counter_value(metrics, name)
        for name in metrics
        if name.startswith(REMOTE_OUTCOME_PREFIX)
    }
    pod_rows = tuple(
        {
            "pod": state.pod_index,
            "tracks": plan.track_ranges[state.pod_index][1],
            "carts": plan.cart_shares[state.pod_index],
            "n_jobs": state.report.n_jobs,
            "served": state.report.served,
            "shed": state.report.shed,
            "failovers": state.report.failovers,
            "failed": state.report.failed,
            "makespan_s": state.report.makespan_s,
        }
        for state in states
    )
    return ShardReport(
        plan=plan,
        fleet=fleet,
        engine=engine,
        workers=workers,
        epochs=epochs,
        forwarded=_counter_value(metrics, FORWARDED_COUNTER),
        remote_outcomes=remote_outcomes,
        pod_rows=pod_rows,
        metrics=metrics,
        wall_s=time.perf_counter() - started,
    )
