"""Fleet topology: one library, several tracks, a bounded cart pool.

A deployment is one library building with ``n_tracks`` hyperloop rails
fanning out to rack rows.  Each rail is modelled by its own
:class:`~repro.dhlsim.scheduler.DhlSystem` (the per-rail simulator
already captures tube exclusivity, docking and launch energy); the
fleet layer adds what no single rail sees:

* a **shared cart pool** — carts and their SSD arrays dominate fleet
  cost, so a deployment buys fewer carts than (racks x stations) and
  arbitrates them through one bounded :class:`repro.sim.Resource`;
* a **dataset catalog** homed across rails, so the control plane can
  route a job for dataset *d* to the rail and rack where *d*'s cart
  docks.

All systems share one :class:`~repro.sim.Environment`, so fleet-wide
ordering is a single deterministic virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.params import DhlParams
from ..errors import ConfigurationError
from ..obs import Tracer
from ..sim import Environment
from ..sim.resources import Resource
from ..storage.datasets import synthetic_dataset
from ..units import TB, assert_positive
from ..dhlsim.api import DhlApi
from ..dhlsim.policy import NO_RETRY, ShuttlePolicy
from ..dhlsim.scheduler import DhlSystem


@dataclass(frozen=True)
class FleetSpec:
    """Shape of one DHL deployment."""

    n_tracks: int = 2
    racks_per_track: int = 1
    stations_per_rack: int = 2
    cart_pool: int = 6
    """Carts the deployment owns, shared across all tracks.  Must cover
    at least one in-flight cart per track or the fleet cannot make
    progress on every rail at once."""
    library_slots: int = 128
    params: DhlParams = field(default_factory=DhlParams)
    shuttle_policy: ShuttlePolicy = NO_RETRY
    """Retry/timeout policy for every rail's shuttles.  The fail-fast
    default reproduces the historical fleet exactly; chaos studies hand
    in a patient policy with ``give_up_outage_s`` set so opens degrade
    cleanly instead of surfacing raw track faults."""

    def __post_init__(self) -> None:
        if self.n_tracks <= 0 or self.racks_per_track <= 0:
            raise ConfigurationError("fleet needs >= 1 track and >= 1 rack per track")
        if self.stations_per_rack <= 0:
            raise ConfigurationError("racks need >= 1 docking station")
        if self.cart_pool < self.n_tracks:
            raise ConfigurationError(
                f"cart_pool ({self.cart_pool}) must be >= n_tracks "
                f"({self.n_tracks}) so every rail can hold a cart"
            )

    @property
    def n_racks(self) -> int:
        return self.n_tracks * self.racks_per_track

    @property
    def total_stations(self) -> int:
        return self.n_racks * self.stations_per_rack


@dataclass(frozen=True)
class DatasetCatalog:
    """The datasets a deployment serves and how skewed access to them is.

    ``hot_count`` datasets receive ``hot_fraction`` of all requests —
    the Zipf-like reuse that makes rack-side cart residency pay off.
    Each dataset fits one cart (``dataset_bytes`` must not exceed the
    cart's array capacity), which is the paper's own staging unit.
    """

    n_datasets: int = 12
    dataset_bytes: float = 24 * TB
    hot_count: int = 2
    hot_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.n_datasets <= 0:
            raise ConfigurationError("catalog needs >= 1 dataset")
        assert_positive("dataset_bytes", self.dataset_bytes)
        if not 0 <= self.hot_count <= self.n_datasets:
            raise ConfigurationError(
                f"hot_count must be within [0, {self.n_datasets}], "
                f"got {self.hot_count}"
            )
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be within [0, 1], got {self.hot_fraction}"
            )

    def name(self, index: int) -> str:
        return f"ds-{index:03d}"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.name(index) for index in range(self.n_datasets))

    @property
    def hot_names(self) -> tuple[str, ...]:
        return tuple(self.name(index) for index in range(self.hot_count))

    @property
    def cold_names(self) -> tuple[str, ...]:
        return tuple(
            self.name(index) for index in range(self.hot_count, self.n_datasets)
        )

    def zipf_weights(self, alpha: float = 1.1) -> tuple[float, ...]:
        """Normalised Zipf popularity over the catalog, hottest first.

        Dataset ``ds-000`` is rank 1: the trace synthesiser draws
        datasets from this distribution so replayed demand concentrates
        on the same low-index datasets the round-robin homing spreads
        across rails first.
        """
        if alpha <= 0:
            raise ConfigurationError(f"zipf alpha must be positive, got {alpha}")
        ranks = np.arange(1, self.n_datasets + 1, dtype=float)
        weights = ranks ** -alpha
        weights /= weights.sum()
        return tuple(float(weight) for weight in weights)


@dataclass(frozen=True)
class DatasetHome:
    """Where one dataset lives: which rail serves it, which rack reads it."""

    dataset: str
    track_index: int
    endpoint_id: int
    size_bytes: float


def assign_homes(spec: FleetSpec,
                 catalog: DatasetCatalog) -> dict[str, DatasetHome]:
    """The deterministic round-robin homing of a catalog over a fleet.

    Datasets land on (track, rack) slots in track-fastest order, so
    consecutive (hot) datasets hit distinct rails before doubling up on
    a rail's second rack.  Module-level so the sharded runner
    (:mod:`repro.fleet.shard`) can compute the *global* homing once,
    carve it into per-pod subsets, and still agree byte-for-byte with
    what an unsharded :class:`FleetTopology` would have staged.
    """
    slots = [
        (track_index, rack)
        for rack in range(1, spec.racks_per_track + 1)
        for track_index in range(spec.n_tracks)
    ]
    homes: dict[str, DatasetHome] = {}
    for index, name in enumerate(catalog.names):
        track_index, endpoint_id = slots[index % len(slots)]
        homes[name] = DatasetHome(
            dataset=name,
            track_index=track_index,
            endpoint_id=endpoint_id,
            size_bytes=catalog.dataset_bytes,
        )
    return homes


class FleetTopology:
    """Runtime deployment: N per-rail simulators plus shared fleet state.

    Datasets are homed round-robin over (track, rack) pairs — hot
    datasets land on distinct rails first, spreading the hottest traffic
    across tubes.  Every dataset is staged in the library of its home
    rail via :meth:`DhlSystem.load_dataset`, one loaded cart per
    dataset, exactly as the paper stages shards.
    """

    def __init__(
        self,
        env: Environment,
        spec: FleetSpec,
        catalog: DatasetCatalog,
        tracer: Tracer | None = None,
        homes: Mapping[str, DatasetHome] | None = None,
    ):
        if spec.params.storage_per_cart < catalog.dataset_bytes:
            raise ConfigurationError(
                f"dataset_bytes ({catalog.dataset_bytes:.3g}) exceeds cart "
                f"capacity ({spec.params.storage_per_cart:.3g}); fleet "
                "caching assumes one cart per dataset"
            )
        self.env = env
        self.spec = spec
        self.catalog = catalog
        self.systems: list[DhlSystem] = []
        self.apis: list[DhlApi] = []
        for _ in range(spec.n_tracks):
            system = DhlSystem(
                env,
                params=spec.params,
                n_racks=spec.racks_per_track,
                stations_per_rack=spec.stations_per_rack,
                library_slots=spec.library_slots,
                shuttle_policy=spec.shuttle_policy,
                tracer=tracer,
            )
            self.systems.append(system)
            self.apis.append(DhlApi(system))
        # One token per physical cart, shared by every rail.
        self.cart_pool = Resource(env, capacity=spec.cart_pool)
        # ``homes`` lets a shard stage only the datasets it owns, with
        # track indices local to its own rails; the default is the full
        # round-robin homing of the catalog.
        if homes is None:
            homes = assign_homes(spec, catalog)
        self.homes: dict[str, DatasetHome] = {}
        for name in catalog.names:
            home = homes.get(name)
            if home is None:
                continue
            if not 0 <= home.track_index < spec.n_tracks:
                raise ConfigurationError(
                    f"dataset {name!r} is homed on track {home.track_index} "
                    f"but this deployment has {spec.n_tracks} tracks"
                )
            self.systems[home.track_index].load_dataset(
                synthetic_dataset(home.size_bytes, name=name)
            )
            self.homes[name] = home

    def home(self, dataset: str) -> DatasetHome:
        try:
            return self.homes[dataset]
        except KeyError:
            raise ConfigurationError(f"unknown dataset {dataset!r}") from None

    def api_for(self, dataset: str) -> DhlApi:
        return self.apis[self.home(dataset).track_index]

    @property
    def lanes(self) -> tuple[tuple[int, int], ...]:
        """All (track_index, endpoint_id) service lanes in fixed order."""
        return tuple(
            (track_index, rack)
            for track_index in range(self.spec.n_tracks)
            for rack in range(1, self.spec.racks_per_track + 1)
        )

    @property
    def total_launches(self) -> int:
        return sum(system.total_launches for system in self.systems)

    @property
    def total_launch_energy_j(self) -> float:
        return sum(system.total_launch_energy for system in self.systems)
