"""Per-traffic-class SLA tracking for fleet runs.

Each completed (or shed) job becomes a :class:`JobRecord`; the
:class:`SlaTracker` streams records into the fleet's
:class:`~repro.obs.metrics.MetricsRegistry` — latency histograms per
class, outcome counters — while retaining the raw samples so the final
report can quote exact percentiles.

Percentiles come from :mod:`repro.core.percentiles`, the same
linear-interpolation rule the service study uses, so "p95" means one
thing across the whole repo.  The registry histograms remain available
for live/streaming views at bucket resolution.

Two retention modes serve two scales.  The default
(``retain_records=True``) keeps every :class:`JobRecord` so the final
report quotes exact percentiles — right for hour-long fleet studies.
For trace-driven days with millions of requests
(:mod:`repro.traffic`), ``retain_records=False`` switches the tracker
to constant-memory streaming accumulators: counts, goodput bytes and
deadline misses are exact, and latency percentiles come from a
deterministic bounded reservoir that is *also* exact until a class
exceeds ``sample_cap`` completions.  Both modes additionally account
per **tenant** (the multi-tenant dimension trace replay introduces),
surfaced through :meth:`SlaTracker.tenant_report`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.percentiles import percentiles
from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..units import assert_positive

try:
    from enum import StrEnum as _StrEnum
except ImportError:  # pragma: no cover - Python 3.10 fallback
    from enum import Enum

    class _StrEnum(str, Enum):
        __str__ = str.__str__
        __format__ = str.__format__


class Outcome(_StrEnum):
    """Every way a fleet job can end.

    A ``StrEnum`` rather than loose strings so the control plane, the
    chaos degradation reports and the SLA accounting all spell outcomes
    identically — a typo'd outcome is an ``AttributeError`` at the call
    site, not a silently miscounted category.  Members compare and
    serialise as their lowercase string values, so existing reports and
    committed bench baselines are unaffected.
    """

    SERVED = "served"
    FAILOVER = "failover"
    SHED = "shed"
    FAILED = "failed"


#: Backwards-compatible aliases: module constants predate :class:`Outcome`.
SERVED = Outcome.SERVED
FAILOVER = Outcome.FAILOVER
SHED = Outcome.SHED
FAILED = Outcome.FAILED

#: Histogram bounds for per-class latency (seconds).
LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                   200.0, 500.0, 1000.0, 2000.0, 5000.0)


@dataclass(frozen=True)
class ClassTarget:
    """SLA contract for one traffic class."""

    deadline_s: float
    priority: int = 0
    """EDF tie-breaking rank: lower values are scheduled first."""

    def __post_init__(self) -> None:
        assert_positive("deadline_s", self.deadline_s)


#: Fallback contract for classes without an explicit target.
DEFAULT_TARGET = ClassTarget(deadline_s=3600.0, priority=9)


@dataclass(frozen=True)
class JobRecord:
    """Final accounting for one admitted job."""

    job_id: int
    kind: str
    dataset: str
    arrival_s: float
    deadline_s: float
    """Absolute virtual time by which the job should have completed."""
    read_bytes: float
    outcome: str
    completed_s: float | None = None
    tenant: str = ""
    """Owning tenant for multi-tenant traces; empty for the synthetic
    single-tenant workloads, which keeps their records byte-identical
    to the pre-traffic fleet."""

    @property
    def latency_s(self) -> float:
        if self.completed_s is None:
            raise ConfigurationError(
                f"job {self.job_id} ({self.outcome}) never completed"
            )
        return self.completed_s - self.arrival_s

    @property
    def met_deadline(self) -> bool:
        return (
            self.outcome in (SERVED, FAILOVER)
            and self.completed_s is not None
            and self.completed_s <= self.deadline_s
        )


@dataclass(frozen=True)
class ClassSla:
    """Measured service of one traffic class (or the whole fleet)."""

    kind: str
    n_jobs: int
    n_completed: int
    p50_s: float
    p95_s: float
    p99_s: float
    deadline_miss_rate: float
    """Fraction of jobs missing their deadline — sheds and failures
    count as misses, so load shedding cannot launder the tail."""
    goodput_bytes_per_s: float
    """Bytes delivered within deadline, per second of horizon."""


@dataclass(frozen=True)
class SlaReport:
    """Per-class and overall SLA outcome of one fleet run."""

    horizon_s: float
    classes: tuple[ClassSla, ...]
    overall: ClassSla

    def for_kind(self, kind: str) -> ClassSla:
        for class_sla in self.classes:
            if class_sla.kind == kind:
                return class_sla
        raise ConfigurationError(f"no SLA data for class {kind!r}")


#: Latency samples retained per class/tenant in streaming mode; the
#: reservoir is exact up to this many completions, sampled beyond.
DEFAULT_SAMPLE_CAP = 8192


class LatencyReservoir:
    """Deterministic bounded reservoir of latency samples (Algorithm R).

    Exact — insertion order preserved, nothing dropped — while ``n``
    stays within ``cap``, so small runs report the same percentiles the
    retained-records path would.  Past the cap each further sample
    replaces a uniformly random slot via a seeded generator, keeping
    the estimate unbiased and the whole thing bit-reproducible for a
    fixed observation order.
    """

    __slots__ = ("cap", "n", "samples", "_rng")

    def __init__(self, cap: int = DEFAULT_SAMPLE_CAP, seed: int = 0):
        if cap <= 0:
            raise ConfigurationError(f"reservoir cap must be >= 1, got {cap}")
        self.cap = cap
        self.n = 0
        self.samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        """Admit one sample, evicting a random one once full."""
        self.n += 1
        if len(self.samples) < self.cap:
            self.samples.append(value)
            return
        slot = int(self._rng.integers(0, self.n))
        if slot < self.cap:
            self.samples[slot] = value

    @property
    def exact(self) -> bool:
        """Whether the reservoir still holds every observed sample."""
        return self.n <= self.cap


class _StreamStats:
    """Constant-memory accumulator for one class (or tenant, or overall)."""

    __slots__ = ("n_jobs", "n_completed", "misses", "good_bytes", "reservoir")

    def __init__(self, sample_cap: int, seed: int):
        self.n_jobs = 0
        self.n_completed = 0
        self.misses = 0
        self.good_bytes = 0.0
        self.reservoir = LatencyReservoir(sample_cap, seed)

    def observe(self, record: JobRecord) -> None:
        self.n_jobs += 1
        if record.completed_s is not None:
            self.n_completed += 1
            self.reservoir.observe(record.latency_s)
        if not record.met_deadline:
            self.misses += 1
        else:
            self.good_bytes += record.read_bytes

    def summarise(self, kind: str, horizon_s: float) -> ClassSla:
        if self.reservoir.samples:
            points = percentiles(self.reservoir.samples)
            p50, p95, p99 = points[50.0], points[95.0], points[99.0]
        else:
            p50 = p95 = p99 = float("inf")
        return ClassSla(
            kind=kind,
            n_jobs=self.n_jobs,
            n_completed=self.n_completed,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            deadline_miss_rate=self.misses / self.n_jobs if self.n_jobs else 0.0,
            goodput_bytes_per_s=self.good_bytes / horizon_s,
        )


def _stream_seed(key: str) -> int:
    """Stable per-key reservoir seed (``hash()`` is salted per process)."""
    return zlib.crc32(key.encode("utf-8"))


class SlaTracker:
    """Streams job records into metrics and builds the final report.

    ``retain_records=True`` (the default) keeps every record and quotes
    exact percentiles; ``retain_records=False`` holds only streaming
    accumulators plus bounded reservoirs, so memory stays constant no
    matter how many jobs flow through — the contract trace replay
    relies on.  Per-tenant accumulators are maintained in both modes
    for any record carrying a non-empty ``tenant``.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        targets: Mapping[str, ClassTarget],
        default: ClassTarget = DEFAULT_TARGET,
        retain_records: bool = True,
        sample_cap: int = DEFAULT_SAMPLE_CAP,
    ):
        self.registry = registry
        self.targets = dict(targets)
        self.default = default
        self.retain_records = retain_records
        self.sample_cap = sample_cap
        self.records: list[JobRecord] = []
        self._by_kind: dict[str, _StreamStats] = {}
        self._by_tenant: dict[str, _StreamStats] = {}
        self._overall = _StreamStats(sample_cap, _stream_seed("overall"))
        self._window = _StreamStats(sample_cap, _stream_seed("window"))

    def target_for(self, kind: str) -> ClassTarget:
        return self.targets.get(kind, self.default)

    def _stats(self, table: dict[str, _StreamStats], key: str) -> _StreamStats:
        stats = table.get(key)
        if stats is None:
            stats = _StreamStats(self.sample_cap, _stream_seed(key))
            table[key] = stats
        return stats

    def observe(self, record: JobRecord) -> None:
        if self.retain_records:
            self.records.append(record)
        self.registry.counter(f"count.fleet.{record.outcome}").inc()
        if record.completed_s is not None:
            self.registry.histogram(
                f"fleet.latency_s.{record.kind}", LATENCY_BUCKETS
            ).observe(record.latency_s)
        if not record.met_deadline:
            self.registry.counter("count.fleet.deadline_missed").inc()
        self._overall.observe(record)
        self._window.observe(record)
        self._stats(self._by_kind, record.kind).observe(record)
        if record.tenant:
            self._stats(self._by_tenant, record.tenant).observe(record)

    # -- mid-run snapshots -------------------------------------------------------
    #
    # The streaming accumulators are maintained in *both* retention
    # modes, so these reads are O(reservoir) regardless of how many
    # records have flowed through — the contract the learned control
    # layer's per-epoch reward signal relies on.

    def live_overall(self, horizon_s: float) -> ClassSla:
        """Overall SLA over everything observed so far, mid-run.

        Built from the always-on streaming accumulator, never from the
        retained record list, so it costs the same at job 10 and job
        10 million.  For completed jobs the percentiles agree with the
        end-of-run :meth:`report` up to the reservoir cap (exactly,
        while within it).
        """
        assert_positive("horizon_s", horizon_s)
        return self._overall.summarise("overall", horizon_s)

    def take_window(self, horizon_s: float) -> ClassSla:
        """Summarise and reset the rolling window accumulator.

        The window collects every record observed since the previous
        ``take_window`` call (or construction) — the per-decision-epoch
        view a reward signal needs.  Resetting re-seeds the window
        reservoir identically, so epoch boundaries never perturb the
        run's determinism.
        """
        assert_positive("horizon_s", horizon_s)
        snapshot = self._window.summarise("window", horizon_s)
        self._window = _StreamStats(self.sample_cap, _stream_seed("window"))
        return snapshot

    # -- reporting ---------------------------------------------------------------

    @staticmethod
    def _summarise(kind: str, records: list[JobRecord], horizon_s: float) -> ClassSla:
        completed = [r.latency_s for r in records if r.completed_s is not None]
        if completed:
            points = percentiles(completed)
            p50, p95, p99 = points[50.0], points[95.0], points[99.0]
        else:
            # No completions: the tail is unbounded, which reads as
            # infeasible to the capacity planner.
            p50 = p95 = p99 = float("inf")
        misses = sum(1 for r in records if not r.met_deadline)
        good_bytes = sum(r.read_bytes for r in records if r.met_deadline)
        return ClassSla(
            kind=kind,
            n_jobs=len(records),
            n_completed=len(completed),
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            deadline_miss_rate=misses / len(records) if records else 0.0,
            goodput_bytes_per_s=good_bytes / horizon_s,
        )

    def report(self, horizon_s: float) -> SlaReport:
        assert_positive("horizon_s", horizon_s)
        if self.retain_records:
            by_kind: dict[str, list[JobRecord]] = {}
            for record in self.records:
                by_kind.setdefault(record.kind, []).append(record)
            classes = tuple(
                self._summarise(kind, records, horizon_s)
                for kind, records in sorted(by_kind.items())
            )
            overall = self._summarise("overall", list(self.records), horizon_s)
        else:
            classes = tuple(
                stats.summarise(kind, horizon_s)
                for kind, stats in sorted(self._by_kind.items())
            )
            overall = self._overall.summarise("overall", horizon_s)
        return SlaReport(horizon_s=horizon_s, classes=classes, overall=overall)

    # -- sharded state export ----------------------------------------------------

    def export_state(self) -> SlaState:
        """Snapshot the tracker as a picklable :class:`SlaState`.

        The sharded fleet runner (:mod:`repro.fleet.shard`) exports one
        state per pod, ships them across process boundaries, and folds
        them with :func:`merge_sla_states` — the registry reference is
        deliberately left behind (metrics travel separately as
        snapshots).
        """
        return SlaState(
            retain_records=self.retain_records,
            sample_cap=self.sample_cap,
            records=tuple(self.records),
            by_kind={
                kind: _export_stream(stats)
                for kind, stats in sorted(self._by_kind.items())
            },
            by_tenant={
                tenant: _export_stream(stats)
                for tenant, stats in sorted(self._by_tenant.items())
            },
            overall=_export_stream(self._overall),
        )

    def tenant_report(self, horizon_s: float) -> SlaReport:
        """Per-tenant SLA attainment: one :class:`ClassSla` per tenant.

        ``ClassSla.kind`` carries the tenant name; records without a
        tenant are excluded from the per-tenant rows but still count in
        ``overall``, so the two reports reconcile.
        """
        assert_positive("horizon_s", horizon_s)
        if self.retain_records:
            by_tenant: dict[str, list[JobRecord]] = {}
            for record in self.records:
                if record.tenant:
                    by_tenant.setdefault(record.tenant, []).append(record)
            classes = tuple(
                self._summarise(tenant, records, horizon_s)
                for tenant, records in sorted(by_tenant.items())
            )
            overall = self._summarise("overall", list(self.records), horizon_s)
        else:
            classes = tuple(
                stats.summarise(tenant, horizon_s)
                for tenant, stats in sorted(self._by_tenant.items())
            )
            overall = self._overall.summarise("overall", horizon_s)
        return SlaReport(horizon_s=horizon_s, classes=classes, overall=overall)


# -- picklable state for sharded merging -----------------------------------------


@dataclass(frozen=True)
class StreamStatsState:
    """Frozen snapshot of one :class:`_StreamStats` accumulator.

    ``samples`` carries the reservoir contents in observation order and
    ``n_observed`` the total completions the reservoir has seen, so a
    merge can tell an exact reservoir (``n_observed == len(samples)``)
    from a subsampled one.
    """

    n_jobs: int
    n_completed: int
    misses: int
    good_bytes: float
    samples: tuple[float, ...]
    n_observed: int


@dataclass(frozen=True)
class SlaState:
    """Everything a :class:`SlaTracker` knows, in picklable form.

    One per pod in sharded runs; :func:`merge_sla_states` folds any
    number of them (in pod order) into one fleet-wide state that
    :func:`report_from_state` / :func:`tenant_report_from_state` turn
    into the same :class:`SlaReport` a monolithic tracker would emit.
    """

    retain_records: bool
    sample_cap: int
    records: tuple[JobRecord, ...]
    by_kind: Mapping[str, StreamStatsState]
    by_tenant: Mapping[str, StreamStatsState]
    overall: StreamStatsState


def _export_stream(stats: _StreamStats) -> StreamStatsState:
    return StreamStatsState(
        n_jobs=stats.n_jobs,
        n_completed=stats.n_completed,
        misses=stats.misses,
        good_bytes=stats.good_bytes,
        samples=tuple(stats.reservoir.samples),
        n_observed=stats.reservoir.n,
    )


def _merge_streams(
    key: str, parts: Sequence[StreamStatsState], cap: int
) -> StreamStatsState:
    """Fold per-pod accumulators for one key, deterministically.

    Counters and byte totals add exactly.  Reservoirs concatenate in
    pod order; while the union fits ``cap`` samples the merge is exact
    (same multiset a monolithic reservoir under cap would hold), beyond
    that a generator seeded from the key — the same
    :func:`_stream_seed` rule per-pod reservoirs use — picks a uniform
    ``cap``-subset, keeping the estimate unbiased and bit-reproducible
    for a fixed pod order.
    """
    samples: list[float] = []
    for part in parts:
        samples.extend(part.samples)
    if len(samples) > cap:
        rng = np.random.default_rng(_stream_seed(key))
        keep = sorted(rng.choice(len(samples), size=cap, replace=False).tolist())
        samples = [samples[index] for index in keep]
    return StreamStatsState(
        n_jobs=sum(part.n_jobs for part in parts),
        n_completed=sum(part.n_completed for part in parts),
        misses=sum(part.misses for part in parts),
        good_bytes=sum(part.good_bytes for part in parts),
        samples=tuple(samples),
        n_observed=sum(part.n_observed for part in parts),
    )


def merge_sla_states(states: Sequence[SlaState]) -> SlaState:
    """Merge per-pod SLA states (in pod order) into one fleet state."""
    if not states:
        raise ConfigurationError("merge_sla_states needs >= 1 state")
    first = states[0]
    for state in states[1:]:
        if state.retain_records != first.retain_records:
            raise ConfigurationError(
                "cannot merge SLA states with mixed retain_records modes"
            )
        if state.sample_cap != first.sample_cap:
            raise ConfigurationError(
                f"cannot merge SLA states with different sample caps "
                f"({first.sample_cap} vs {state.sample_cap})"
            )
    records = tuple(
        sorted(
            (record for state in states for record in state.records),
            key=lambda record: record.job_id,
        )
    )
    cap = first.sample_cap

    def merge_tables(
        tables: Sequence[Mapping[str, StreamStatsState]],
    ) -> dict[str, StreamStatsState]:
        keys = sorted({key for table in tables for key in table})
        return {
            key: _merge_streams(
                key, [table[key] for table in tables if key in table], cap
            )
            for key in keys
        }

    return SlaState(
        retain_records=first.retain_records,
        sample_cap=cap,
        records=records,
        by_kind=merge_tables([state.by_kind for state in states]),
        by_tenant=merge_tables([state.by_tenant for state in states]),
        overall=_merge_streams(
            "overall", [state.overall for state in states], cap
        ),
    )


def _summarise_stream(kind: str, state: StreamStatsState,
                      horizon_s: float) -> ClassSla:
    if state.samples:
        points = percentiles(list(state.samples))
        p50, p95, p99 = points[50.0], points[95.0], points[99.0]
    else:
        p50 = p95 = p99 = float("inf")
    return ClassSla(
        kind=kind,
        n_jobs=state.n_jobs,
        n_completed=state.n_completed,
        p50_s=p50,
        p95_s=p95,
        p99_s=p99,
        deadline_miss_rate=state.misses / state.n_jobs if state.n_jobs else 0.0,
        goodput_bytes_per_s=state.good_bytes / horizon_s,
    )


def report_from_state(state: SlaState, horizon_s: float) -> SlaReport:
    """Build the per-class :class:`SlaReport` a tracker with this state would."""
    assert_positive("horizon_s", horizon_s)
    if state.retain_records:
        by_kind: dict[str, list[JobRecord]] = {}
        for record in state.records:
            by_kind.setdefault(record.kind, []).append(record)
        classes = tuple(
            SlaTracker._summarise(kind, records, horizon_s)
            for kind, records in sorted(by_kind.items())
        )
        overall = SlaTracker._summarise("overall", list(state.records), horizon_s)
    else:
        classes = tuple(
            _summarise_stream(kind, stats, horizon_s)
            for kind, stats in sorted(state.by_kind.items())
        )
        overall = _summarise_stream("overall", state.overall, horizon_s)
    return SlaReport(horizon_s=horizon_s, classes=classes, overall=overall)


def tenant_report_from_state(state: SlaState, horizon_s: float) -> SlaReport:
    """Build the per-tenant :class:`SlaReport` a tracker with this state would."""
    assert_positive("horizon_s", horizon_s)
    if state.retain_records:
        by_tenant: dict[str, list[JobRecord]] = {}
        for record in state.records:
            if record.tenant:
                by_tenant.setdefault(record.tenant, []).append(record)
        classes = tuple(
            SlaTracker._summarise(tenant, records, horizon_s)
            for tenant, records in sorted(by_tenant.items())
        )
        overall = SlaTracker._summarise("overall", list(state.records), horizon_s)
    else:
        classes = tuple(
            _summarise_stream(tenant, stats, horizon_s)
            for tenant, stats in sorted(state.by_tenant.items())
        )
        overall = _summarise_stream("overall", state.overall, horizon_s)
    return SlaReport(horizon_s=horizon_s, classes=classes, overall=overall)
