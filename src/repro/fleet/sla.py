"""Per-traffic-class SLA tracking for fleet runs.

Each completed (or shed) job becomes a :class:`JobRecord`; the
:class:`SlaTracker` streams records into the fleet's
:class:`~repro.obs.metrics.MetricsRegistry` — latency histograms per
class, outcome counters — while retaining the raw samples so the final
report can quote exact percentiles.

Percentiles come from :mod:`repro.core.percentiles`, the same
linear-interpolation rule the service study uses, so "p95" means one
thing across the whole repo.  The registry histograms remain available
for live/streaming views at bucket resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.percentiles import percentiles
from ..errors import ConfigurationError
from ..obs import MetricsRegistry
from ..units import assert_positive

try:
    from enum import StrEnum as _StrEnum
except ImportError:  # pragma: no cover - Python 3.10 fallback
    from enum import Enum

    class _StrEnum(str, Enum):
        __str__ = str.__str__
        __format__ = str.__format__


class Outcome(_StrEnum):
    """Every way a fleet job can end.

    A ``StrEnum`` rather than loose strings so the control plane, the
    chaos degradation reports and the SLA accounting all spell outcomes
    identically — a typo'd outcome is an ``AttributeError`` at the call
    site, not a silently miscounted category.  Members compare and
    serialise as their lowercase string values, so existing reports and
    committed bench baselines are unaffected.
    """

    SERVED = "served"
    FAILOVER = "failover"
    SHED = "shed"
    FAILED = "failed"


#: Backwards-compatible aliases: module constants predate :class:`Outcome`.
SERVED = Outcome.SERVED
FAILOVER = Outcome.FAILOVER
SHED = Outcome.SHED
FAILED = Outcome.FAILED

#: Histogram bounds for per-class latency (seconds).
LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                   200.0, 500.0, 1000.0, 2000.0, 5000.0)


@dataclass(frozen=True)
class ClassTarget:
    """SLA contract for one traffic class."""

    deadline_s: float
    priority: int = 0
    """EDF tie-breaking rank: lower values are scheduled first."""

    def __post_init__(self) -> None:
        assert_positive("deadline_s", self.deadline_s)


#: Fallback contract for classes without an explicit target.
DEFAULT_TARGET = ClassTarget(deadline_s=3600.0, priority=9)


@dataclass(frozen=True)
class JobRecord:
    """Final accounting for one admitted job."""

    job_id: int
    kind: str
    dataset: str
    arrival_s: float
    deadline_s: float
    """Absolute virtual time by which the job should have completed."""
    read_bytes: float
    outcome: str
    completed_s: float | None = None

    @property
    def latency_s(self) -> float:
        if self.completed_s is None:
            raise ConfigurationError(
                f"job {self.job_id} ({self.outcome}) never completed"
            )
        return self.completed_s - self.arrival_s

    @property
    def met_deadline(self) -> bool:
        return (
            self.outcome in (SERVED, FAILOVER)
            and self.completed_s is not None
            and self.completed_s <= self.deadline_s
        )


@dataclass(frozen=True)
class ClassSla:
    """Measured service of one traffic class (or the whole fleet)."""

    kind: str
    n_jobs: int
    n_completed: int
    p50_s: float
    p95_s: float
    p99_s: float
    deadline_miss_rate: float
    """Fraction of jobs missing their deadline — sheds and failures
    count as misses, so load shedding cannot launder the tail."""
    goodput_bytes_per_s: float
    """Bytes delivered within deadline, per second of horizon."""


@dataclass(frozen=True)
class SlaReport:
    """Per-class and overall SLA outcome of one fleet run."""

    horizon_s: float
    classes: tuple[ClassSla, ...]
    overall: ClassSla

    def for_kind(self, kind: str) -> ClassSla:
        for class_sla in self.classes:
            if class_sla.kind == kind:
                return class_sla
        raise ConfigurationError(f"no SLA data for class {kind!r}")


class SlaTracker:
    """Streams job records into metrics and builds the final report."""

    def __init__(
        self,
        registry: MetricsRegistry,
        targets: Mapping[str, ClassTarget],
        default: ClassTarget = DEFAULT_TARGET,
    ):
        self.registry = registry
        self.targets = dict(targets)
        self.default = default
        self.records: list[JobRecord] = []

    def target_for(self, kind: str) -> ClassTarget:
        return self.targets.get(kind, self.default)

    def observe(self, record: JobRecord) -> None:
        self.records.append(record)
        self.registry.counter(f"count.fleet.{record.outcome}").inc()
        if record.completed_s is not None:
            self.registry.histogram(
                f"fleet.latency_s.{record.kind}", LATENCY_BUCKETS
            ).observe(record.latency_s)
        if not record.met_deadline:
            self.registry.counter("count.fleet.deadline_missed").inc()

    # -- reporting ---------------------------------------------------------------

    @staticmethod
    def _summarise(kind: str, records: list[JobRecord], horizon_s: float) -> ClassSla:
        completed = [r.latency_s for r in records if r.completed_s is not None]
        if completed:
            points = percentiles(completed)
            p50, p95, p99 = points[50.0], points[95.0], points[99.0]
        else:
            # No completions: the tail is unbounded, which reads as
            # infeasible to the capacity planner.
            p50 = p95 = p99 = float("inf")
        misses = sum(1 for r in records if not r.met_deadline)
        good_bytes = sum(r.read_bytes for r in records if r.met_deadline)
        return ClassSla(
            kind=kind,
            n_jobs=len(records),
            n_completed=len(completed),
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            deadline_miss_rate=misses / len(records) if records else 0.0,
            goodput_bytes_per_s=good_bytes / horizon_s,
        )

    def report(self, horizon_s: float) -> SlaReport:
        assert_positive("horizon_s", horizon_s)
        by_kind: dict[str, list[JobRecord]] = {}
        for record in self.records:
            by_kind.setdefault(record.kind, []).append(record)
        classes = tuple(
            self._summarise(kind, records, horizon_s)
            for kind, records in sorted(by_kind.items())
        )
        overall = self._summarise("overall", list(self.records), horizon_s)
        return SlaReport(horizon_s=horizon_s, classes=classes, overall=overall)
