"""Capacity planning: the minimal fleet that meets an SLA.

Given a workload scenario and an SLA requirement, sweep candidate
deployments — number of tracks, cart-pool size, scheduling policy —
and return the cheapest candidate whose simulated run satisfies the
requirement.  Candidates are evaluated through
:func:`repro.core.sweep.map_chunks`, so a plan can fan out across a
process pool; virtual-time determinism guarantees the serial and
parallel engines return the *same* plan, which the test suite pins.
The parallelism here is *across* candidate fleets (each one a small
independent run); to put every core on a single large fleet instead,
shard that run with :func:`repro.fleet.shard.run_sharded` — see
``docs/scaling.md`` for when each axis applies.

"Cheapest" is lexicographic in capital cost: fewest tracks first (a
tube is civil engineering), then fewest carts (each cart is a full SSD
array), then policy order as given.  The planner reports every
evaluated candidate so the feasibility frontier is inspectable, not
just the winner.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace

from ..core.sweep import map_chunks
from ..errors import ConfigurationError
from ..units import assert_positive
from .cache import CacheConfig
from .controlplane import FleetScenario, POLICIES, run_fleet


@dataclass(frozen=True)
class SlaRequirement:
    """What the fleet must deliver to be feasible."""

    max_p99_s: float
    max_miss_rate: float = 0.05

    def __post_init__(self) -> None:
        assert_positive("max_p99_s", self.max_p99_s)
        if not 0.0 <= self.max_miss_rate <= 1.0:
            raise ConfigurationError(
                f"max_miss_rate must be within [0, 1], got {self.max_miss_rate}"
            )


@dataclass(frozen=True)
class CandidateEvaluation:
    """One swept deployment and its measured service."""

    n_tracks: int
    cart_pool: int
    policy: str
    cache_policy: str
    p99_s: float
    deadline_miss_rate: float
    launches: int
    launch_energy_j: float
    feasible: bool


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of a capacity sweep."""

    requirement: SlaRequirement
    evaluations: tuple[CandidateEvaluation, ...]
    best: CandidateEvaluation | None
    """The minimal feasible deployment, or None if nothing qualified."""

    @property
    def feasible(self) -> tuple[CandidateEvaluation, ...]:
        return tuple(e for e in self.evaluations if e.feasible)


def _evaluate(scenario: FleetScenario,
              requirement: SlaRequirement) -> CandidateEvaluation:
    report = run_fleet(scenario)
    feasible = (
        report.p99_s <= requirement.max_p99_s
        and report.deadline_miss_rate <= requirement.max_miss_rate
    )
    return CandidateEvaluation(
        n_tracks=scenario.spec.n_tracks,
        cart_pool=scenario.spec.cart_pool,
        policy=scenario.policy,
        cache_policy=scenario.cache_label,
        p99_s=report.p99_s,
        deadline_miss_rate=report.deadline_miss_rate,
        launches=report.launches,
        launch_energy_j=report.launch_energy_j,
        feasible=feasible,
    )


def _candidate_chunk(
    chunk: tuple[FleetScenario, ...],
    requirement: SlaRequirement,
) -> tuple[CandidateEvaluation, ...]:
    """``map_chunks`` worker: evaluate a slice of the candidate grid."""
    return tuple(_evaluate(scenario, requirement) for scenario in chunk)


def _cache_for_label(base: FleetScenario, label: str) -> CacheConfig | None:
    """The cache config a candidate-grid label denotes."""
    if label == "none":
        return None
    if label == base.cache_label:
        return base.cache  # preserve base sizing, not just the policy
    return CacheConfig(policy=label)


def candidate_scenarios(
    base: FleetScenario,
    n_tracks_options: tuple[int, ...] = (1, 2, 3),
    cart_pool_options: tuple[int, ...] = (4, 6, 8),
    policies: tuple[str, ...] = ("fcfs", "edf"),
    cache_options: tuple[str, ...] | None = None,
) -> tuple[FleetScenario, ...]:
    """The candidate grid in increasing-cost order.

    ``cache_options`` optionally adds a rack-cache axis: a tuple of
    cache-policy labels (``"none"`` for no cache, else an eviction
    policy name).  ``None`` — the default — keeps the base scenario's
    cache on every candidate, which is the pre-existing behaviour.
    """
    if not n_tracks_options or not cart_pool_options or not policies:
        raise ConfigurationError("the candidate grid must not be empty")
    if cache_options is not None and not cache_options:
        raise ConfigurationError("cache_options must be None or non-empty")
    for policy in policies:
        if policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
    scenarios = []
    for n_tracks in sorted(set(n_tracks_options)):
        for cart_pool in sorted(set(cart_pool_options)):
            if cart_pool < n_tracks:
                continue  # FleetSpec requires a cart per rail
            for policy in policies:
                for cache_label in cache_options or (None,):
                    candidate = replace(
                        base,
                        spec=replace(base.spec, n_tracks=n_tracks,
                                     cart_pool=cart_pool),
                        policy=policy,
                    )
                    if cache_label is not None:
                        candidate = replace(
                            candidate,
                            cache=_cache_for_label(base, cache_label),
                        )
                    scenarios.append(candidate)
    if not scenarios:
        raise ConfigurationError(
            "no viable candidates: every cart_pool option is smaller than "
            "its track count"
        )
    return tuple(scenarios)


def evaluate_candidate(
    scenario: FleetScenario, requirement: SlaRequirement
) -> CandidateEvaluation:
    """Run one candidate through the DES and judge it against the SLA.

    The single-candidate unit both the exhaustive sweep and the
    surrogate-guided planner (:mod:`repro.surrogate.planner`) build on,
    so "confirmed in the real DES" means the same thing everywhere.
    """
    return _evaluate(scenario, requirement)


def plan_capacity(
    requirement: SlaRequirement,
    base: FleetScenario,
    n_tracks_options: tuple[int, ...] = (1, 2, 3),
    cart_pool_options: tuple[int, ...] = (4, 6, 8),
    policies: tuple[str, ...] = ("fcfs", "edf"),
    cache_options: tuple[str, ...] | None = None,
    engine: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
    early_exit: bool = False,
) -> CapacityPlan:
    """Sweep the candidate grid and pick the minimal feasible fleet.

    With ``early_exit`` the sweep stops at the first (cheapest)
    feasible candidate instead of evaluating the full grid: the
    returned plan's ``best`` is pinned identical to the exhaustive
    sweep's — candidates are confirmed in increasing-cost order, so
    the first feasible one *is* the minimum — but ``evaluations`` only
    covers the prefix actually simulated.  Exhaustive remains the
    default because the full frontier is what capacity studies plot.
    """
    scenarios = candidate_scenarios(base, n_tracks_options,
                                    cart_pool_options, policies,
                                    cache_options)
    chunk_fn = functools.partial(_candidate_chunk, requirement=requirement)
    if early_exit:
        evaluations: list[CandidateEvaluation] = []
        step = chunk_size or max(2, (workers or 1))
        for start in range(0, len(scenarios), step):
            batch = map_chunks(
                chunk_fn,
                scenarios[start:start + step],
                engine=engine,
                workers=workers,
                chunk_size=chunk_size,
            )
            for evaluation in batch:
                evaluations.append(evaluation)
                if evaluation.feasible:
                    break
            if evaluations and evaluations[-1].feasible:
                break
    else:
        evaluations = list(map_chunks(
            chunk_fn,
            scenarios,
            engine=engine,
            workers=workers,
            chunk_size=chunk_size,
        ))
    best = next((e for e in evaluations if e.feasible), None)
    return CapacityPlan(
        requirement=requirement,
        evaluations=tuple(evaluations),
        best=best,
    )
