"""Fleet admission and dispatch.

The control plane consumes a seeded :class:`~repro.workloads.generator.
WorkloadGenerator` job stream, assigns each job a dataset (hot-skewed
per the catalog), admits or sheds it, queues it at its dataset's home
lane, and serves it with a per-station worker pool under a pluggable
scheduling policy:

``fcfs``
    arrival order — the baseline every queueing comparison needs;
``sjf``
    shortest read first — minimises mean latency, starves big jobs;
``edf``
    earliest deadline first with class priority — interactive traffic
    preempts (in queue order, not mid-service) bulk traffic.

Admission control bounds each lane's queue.  A saturated lane either
**sheds** the job (a recorded deadline miss) or **fails it over** to
the optical network via :class:`repro.dhlsim.policy.FailoverPolicy` —
slower and energy-hungry for bulk sizes, but bounded, exactly the
DHL-vs-network trade the paper's Fig. 6 quantifies.

Everything is driven by virtual time on one deterministic
:class:`~repro.sim.Environment`: the same scenario always produces the
same report, bit for bit, which is what lets the capacity planner fan
scenarios out across processes and still merge comparable results.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..chaos.campaigns import ChaosCampaign
from ..chaos.runner import CampaignRunner, install_campaign
from ..errors import ConfigurationError, DataIntegrityError, SchedulingError
from ..network.routes import ROUTE_B
from ..network.transfer import DEFAULT_LINK_GBPS, OpticalLink
from ..obs import MetricsRegistry, Tracer
from ..sim import Environment, Event
from ..sim.resources import Resource
from ..units import TB, gbps
from ..dhlsim.policy import FailoverPolicy
from ..workloads.generator import TrafficClass, TransferJob, WorkloadGenerator
from .cache import CacheConfig, FETCHING, RackCache, RESIDENT
from .health import DegradationPolicy, LaneHealthMonitor
from .sla import (
    DEFAULT_TARGET,
    ClassTarget,
    JobRecord,
    Outcome,
    SlaReport,
    SlaTracker,
)
from .topology import DatasetCatalog, FleetSpec, FleetTopology

#: Seconds between retries of a Close that keeps failing: the cart has
#: exactly one way home, so eviction and post-serve returns park at the
#: rack and re-attempt until the repair crew restores the track.
CLOSE_RETRY_S = 30.0

POLICIES = ("fcfs", "sjf", "edf")

#: Rack-to-rack traffic mix for fleet studies: latency-sensitive
#: interactive reads, scheduled batch pulls, and archive restores.
#: Sizes are per-read slices of cart-resident datasets, so the knee
#: sits where tube round-trips, not SSD drain, dominate.
FLEET_MIX = (
    TrafficClass("interactive", rate_per_hour=170.0, median_bytes=2 * TB, sigma=0.5),
    TrafficClass("batch", rate_per_hour=50.0, median_bytes=6 * TB, sigma=0.6),
    TrafficClass("archive", rate_per_hour=12.0, median_bytes=16 * TB, sigma=0.5),
)

#: SLA contracts for :data:`FLEET_MIX`, tightest class first.
FLEET_TARGETS = (
    ("interactive", ClassTarget(deadline_s=120.0, priority=0)),
    ("batch", ClassTarget(deadline_s=600.0, priority=1)),
    ("archive", ClassTarget(deadline_s=1800.0, priority=2)),
)


@dataclass(frozen=True)
class AdmissionControl:
    """Queue-depth admission: shed or fail over past ``max_queue_depth``."""

    max_queue_depth: int = 200
    failover_links: int = 2
    """Optical links reserved for overflow; 0 sheds instead."""
    link_gbps: float = DEFAULT_LINK_GBPS

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if self.failover_links < 0:
            raise ConfigurationError("failover_links must be >= 0")


@dataclass(frozen=True)
class FleetScenario:
    """A complete, picklable description of one fleet run."""

    spec: FleetSpec = field(default_factory=FleetSpec)
    catalog: DatasetCatalog = field(default_factory=DatasetCatalog)
    classes: tuple[TrafficClass, ...] = FLEET_MIX
    targets: tuple[tuple[str, ClassTarget], ...] = FLEET_TARGETS
    policy: str = "fcfs"
    cache: CacheConfig | None = None
    admission: AdmissionControl = field(default_factory=AdmissionControl)
    seed: int = 0
    horizon_s: float = 3600.0
    chaos: ChaosCampaign | None = None
    """Fault campaign armed against the fleet's rails; ``None`` keeps
    the historical fault-free run, bit for bit."""
    degradation: DegradationPolicy | None = None
    """Graceful-degradation machinery (lane health monitors + circuit
    breakers); ``None`` serves naively even under chaos."""
    retain_records: bool = True
    """Keep every :class:`~repro.fleet.sla.JobRecord` for the report.
    Trace replays over millions of requests set this ``False`` so the
    run holds only streaming SLA accumulators — ``FleetReport.records``
    then comes back empty while every aggregate KPI stays exact (and
    percentiles stay exact up to the SLA tracker's reservoir cap)."""

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")

    @property
    def cache_label(self) -> str:
        return self.cache.policy if self.cache is not None else "none"

    @property
    def label(self) -> str:
        return f"{self.policy}+{self.cache_label}"


def default_scenario(
    policy: str = "edf",
    cache: str | CacheConfig | None = "lru",
    seed: int = 0,
    horizon_s: float = 3600.0,
    spec: FleetSpec | None = None,
    catalog: DatasetCatalog | None = None,
    admission: AdmissionControl | None = None,
    chaos: ChaosCampaign | None = None,
    degradation: DegradationPolicy | None = None,
) -> FleetScenario:
    """The headline fleet scenario with a few common knobs exposed."""
    cache_config = CacheConfig(policy=cache) if isinstance(cache, str) else cache
    return FleetScenario(
        spec=spec if spec is not None else FleetSpec(),
        catalog=catalog if catalog is not None else DatasetCatalog(),
        policy=policy,
        cache=cache_config,
        admission=admission if admission is not None else AdmissionControl(),
        seed=seed,
        horizon_s=horizon_s,
        chaos=chaos,
        degradation=degradation,
    )


@dataclass(frozen=True)
class _FleetJob:
    """A workload job bound to a dataset and an SLA."""

    job: TransferJob
    dataset: str
    read_bytes: float
    deadline_at: float
    priority: int
    tenant: str = ""


def _policy_key(policy: str):
    if policy == "fcfs":
        return lambda f: (f.job.arrival_s, f.job.job_id)
    if policy == "sjf":
        return lambda f: (f.read_bytes, f.job.arrival_s, f.job.job_id)
    # edf: class priority first, then the closest absolute deadline.
    return lambda f: (f.priority, f.deadline_at, f.job.job_id)


class ControlHooks:
    """Pluggable control-plane decision points.

    The control loop owns *when* a decision happens — a worker freeing
    up, residency exceeding the stations, a queue overflowing — and
    hooks own *which way it goes*: which pending job to dispatch next,
    which idle cache entry to evict, whether an overflowing job fails
    over to the optical network or is shed.  The base class *is* the
    default implementation and reproduces the historical behaviour
    decision for decision (the committed ``BENCH_fleet.json`` gate
    pins this bit-identically); :mod:`repro.learn` subclasses it to
    put an online learner behind the same three choices without
    copying any of the control loop.

    Hooks are bound to exactly one :class:`ControlPlane` via
    :meth:`bind` before the run starts.  They must be deterministic
    functions of bound state + arguments: the fleet's reproducibility
    guarantee extends through them.
    """

    plane: "ControlPlane | None" = None

    def bind(self, plane: "ControlPlane") -> None:
        """Attach to the plane whose decisions this instance makes."""
        if self.plane is not None and self.plane is not plane:
            raise ConfigurationError(
                "ControlHooks instances bind to exactly one ControlPlane"
            )
        self.plane = plane
        self._dispatch_key = _policy_key(plane.scenario.policy)

    def pick_dispatch(self, lane: "_Lane",
                      pending: list["_FleetJob"]) -> "_FleetJob":
        """The next job a freed worker on ``lane`` should serve.

        ``pending`` is non-empty; the returned job must be one of its
        elements (the queue removes it).  Default: the scenario
        policy's min-key order (fcfs/sjf/edf).
        """
        return min(pending, key=self._dispatch_key)

    def pick_eviction(self, lane: "_Lane"):
        """The cache entry ``lane`` should evict next, or ``None``.

        Called when residency exceeds the docking stations and when the
        cart pool runs dry.  The returned entry must be idle (resident,
        no readers) and belong to ``lane.cache``.  Default: the lane
        cache's configured policy via :meth:`RackCache.evictable`.
        """
        return lane.cache.evictable()

    def pick_overflow(self, fjob: "_FleetJob", lane: "_Lane",
                      can_failover: bool) -> str:
        """``Outcome.FAILOVER`` or ``Outcome.SHED`` past admission depth.

        ``can_failover`` is False when the scenario reserved no optical
        links — ``Outcome.FAILOVER`` is then ignored and the job sheds.
        Default: always fail over when links exist.
        """
        return Outcome.FAILOVER if can_failover else Outcome.SHED


class _LaneQueue:
    """Policy-ordered job queue with blocking get for lane workers."""

    def __init__(self, env: Environment, lane: "_Lane", hooks: ControlHooks):
        self.env = env
        self.lane = lane
        self.hooks = hooks
        self.pending: list[_FleetJob] = []
        self.waiters: deque[Event] = deque()

    @property
    def depth(self) -> int:
        return len(self.pending)

    def push(self, fjob: _FleetJob) -> None:
        self.pending.append(fjob)
        if self.waiters:
            self.waiters.popleft().succeed(None)

    def get(self):
        """Process helper: next job under the policy (blocks when empty)."""
        while not self.pending:
            waiter = Event(self.env)
            self.waiters.append(waiter)
            yield waiter
        best = self.hooks.pick_dispatch(self.lane, self.pending)
        self.pending.remove(best)
        return best


class _Lane:
    """One (track, rack) service point: queue, workers, optional cache."""

    def __init__(self, env, track_index, endpoint_id, api, stations, hooks,
                 cache_config):
        self.track_index = track_index
        self.endpoint_id = endpoint_id
        self.api = api
        self.stations = stations
        self.queue = _LaneQueue(env, self, hooks)
        self.cache = (
            RackCache(env, cache_config) if cache_config is not None else None
        )
        self.name = f"t{track_index}:r{endpoint_id}"


@dataclass(frozen=True)
class FleetReport:
    """Everything a fleet run measured."""

    scenario: FleetScenario
    sla: SlaReport
    records: tuple[JobRecord, ...]
    n_jobs: int
    served: int
    shed: int
    failovers: int
    failed: int
    cache_hits: int
    cache_misses: int
    cache_evictions: int
    launches: int
    launch_energy_j: float
    failover_energy_j: float
    makespan_s: float
    diverted: int = 0
    """Jobs a tripped circuit breaker routed off their home lane."""
    breaker_trips: int = 0
    rehomed: int = 0
    """Cache residents migrated home after cache-node losses."""
    lane_health: tuple[dict, ...] = ()
    """Per-lane :meth:`~repro.fleet.health.LaneHealthMonitor.summary`
    rows (empty when the scenario had no degradation policy)."""
    chaos_entries: tuple[tuple[float, str, str, str], ...] = ()
    """The campaign log: (time, kind, target, detail) rows."""
    peak_in_system: int = 0
    """Most jobs simultaneously live in the plane (admitted but not yet
    resolved) — the memory proxy trace replay bounds via admission
    control plus its lookahead window."""
    tenant_sla: SlaReport | None = None
    """Per-tenant SLA breakdown (``None`` when no job carried a
    tenant, i.e. for every pre-traffic synthetic scenario)."""

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def p99_s(self) -> float:
        return self.sla.overall.p99_s

    @property
    def deadline_miss_rate(self) -> float:
        return self.sla.overall.deadline_miss_rate

    @property
    def goodput_bytes_per_s(self) -> float:
        return self.sla.overall.goodput_bytes_per_s


class ControlPlane:
    """Admission, dispatch and caching over a :class:`FleetTopology`."""

    def __init__(
        self,
        env: Environment,
        topology: FleetTopology,
        scenario: FleetScenario,
        tracer: Tracer | None = None,
        hooks: ControlHooks | None = None,
    ):
        self.env = env
        self.topology = topology
        self.scenario = scenario
        self.tracer = tracer
        self.registry = MetricsRegistry(env)
        self.targets = dict(scenario.targets)
        self.sla = SlaTracker(self.registry, self.targets,
                              retain_records=scenario.retain_records)
        self.hooks = hooks if hooks is not None else ControlHooks()
        self.hooks.bind(self)
        self.lanes: dict[tuple[int, int], _Lane] = {}
        for track_index, endpoint_id in topology.lanes:
            self.lanes[(track_index, endpoint_id)] = _Lane(
                env,
                track_index,
                endpoint_id,
                topology.apis[track_index],
                scenario.spec.stations_per_rack,
                self.hooks,
                scenario.cache,
            )
        # One lock per dataset serialises fetch / evict / exclusive use,
        # so two jobs can never launch the same cart twice.
        self._locks = {
            name: Resource(env, capacity=1) for name in topology.homes
        }
        admission = scenario.admission
        if admission.failover_links > 0:
            link = OpticalLink(route=ROUTE_B,
                               rate_bytes_per_s=gbps(admission.link_gbps))
            self._failover_policy = FailoverPolicy(link=link)
            self._failover_streams = Resource(
                env, capacity=admission.failover_links
            )
        else:
            self._failover_policy = None
            self._failover_streams = None
        self._outcomes: list[JobRecord] = []
        self._done = Event(env)
        # Streaming intake/outcome accounting: the plane never needs
        # the whole job list, only how many came in and how many
        # resolved — which is what lets a lazy iterator drive it.
        self._submitted = 0
        self._resolved = 0
        self._intake_closed = False
        self._in_system = 0
        self.peak_in_system = 0
        self._counts: dict[str, int] = {outcome: 0 for outcome in Outcome}
        self._max_completed_s = 0.0
        self._tenants_seen = False
        self._evictions_in_flight = 0
        self.failover_energy_j = 0.0
        # Degradation machinery: one health monitor + breaker per lane,
        # fed by the track's fault-to-repair windows and serve outcomes.
        # Absent a policy nothing is created, so the fault-free fleet is
        # bit-identical to the pre-chaos control plane.
        # Sharded runs subscribe here to learn each resolution as it
        # lands (remote-outcome notifications); ``None`` costs nothing.
        self.outcome_hook: Callable[[JobRecord], None] | None = None
        self.degradation = scenario.degradation
        self.monitors: dict[tuple[int, int], LaneHealthMonitor] = {}
        if self.degradation is not None:
            for (track_index, endpoint_id), lane in self.lanes.items():
                self.monitors[(track_index, endpoint_id)] = LaneHealthMonitor(
                    lane.name,
                    self.degradation,
                    topology.systems[track_index].tracks[0].health,
                    env,
                )
        self._campaign: CampaignRunner | None = None

    # -- chaos wiring ------------------------------------------------------------

    def attach_campaign(self, runner: CampaignRunner) -> None:
        """Subscribe to a campaign: cache-node losses rehome residency."""
        self._campaign = runner
        runner.cache_loss_hooks.append(self._on_cache_node_loss)

    def _on_cache_node_loss(self, track_index: int,
                            endpoint_id: int | None) -> None:
        for (lane_track, lane_endpoint), lane in self.lanes.items():
            if lane_track != track_index or lane.cache is None:
                continue
            if endpoint_id is not None and lane_endpoint != endpoint_id:
                continue
            self.registry.counter("count.fleet.cache_node_losses").inc()
            for entry in lane.cache.rehome():
                self._start_eviction(lane, entry)

    # -- lane lookup -------------------------------------------------------------

    def lane_for(self, dataset: str) -> _Lane:
        home = self.topology.home(dataset)
        return self.lanes[(home.track_index, home.endpoint_id)]

    # -- job intake --------------------------------------------------------------

    def submit(self, fjob: _FleetJob) -> None:
        """Admit one job right now: queue it, shed it, or fail it over.

        Factored out of the arrival process so the stateful fuzzer can
        dispatch jobs at arbitrary virtual times through the exact
        admission path production traffic takes.
        """
        self._submitted += 1
        self._in_system += 1
        if self._in_system > self.peak_in_system:
            self.peak_in_system = self._in_system
        if fjob.tenant:
            self._tenants_seen = True
        admission = self.scenario.admission
        lane = self.lane_for(fjob.dataset)
        if self.tracer is not None:
            self.tracer.instant(
                "job.admit",
                track=f"fleet:{lane.name}",
                job=fjob.job.job_id,
                kind=fjob.job.kind,
                dataset=fjob.dataset,
            )
        if lane.queue.depth >= admission.max_queue_depth:
            self.registry.counter("count.fleet.admission_rejections").inc()
            choice = self.hooks.pick_overflow(
                fjob, lane, self._failover_streams is not None
            )
            if choice == Outcome.FAILOVER and self._failover_streams is not None:
                self.env.process(self._failover_job(fjob))
            else:
                self._finish(self._record(fjob, Outcome.SHED, completed_s=None))
        else:
            lane.queue.push(fjob)

    def _arrivals(self, fjobs: Iterator[_FleetJob]):
        """Consume the job stream lazily, one arrival at a time.

        The iterator is only advanced after the previous job has been
        submitted, so at most one bound job is ever materialised ahead
        of the DES clock — a trace-driven day streams through without
        the job list ever existing in memory.
        """
        for fjob in fjobs:
            if fjob.job.arrival_s > self.env.now:
                yield self.env.timeout(fjob.job.arrival_s - self.env.now)
            self.submit(fjob)
        self._intake_closed = True
        self._maybe_done()

    def _divert(self, fjob: _FleetJob) -> None:
        """Route a job off a degraded lane per its SLA class."""
        self.registry.counter("count.fleet.diverted").inc()
        if (
            self._failover_streams is None
            or fjob.job.kind in self.degradation.shed_classes
        ):
            self._finish(self._record(fjob, Outcome.SHED, completed_s=None))
        else:
            self.env.process(self._failover_job(fjob))

    def _failover_job(self, fjob: _FleetJob):
        stream = self._failover_streams.request()
        yield stream
        try:
            energy = self._failover_policy.transfer_energy(fjob.read_bytes)
            self.failover_energy_j += energy
            self.registry.counter("energy_j.fleet.network_failover").inc(energy)
            yield self.env.timeout(
                self._failover_policy.transfer_time(fjob.read_bytes)
            )
        finally:
            stream.release()
        self._finish(self._record(fjob, Outcome.FAILOVER,
                                  completed_s=self.env.now))

    # -- lane workers ------------------------------------------------------------

    def _worker(self, lane: _Lane):
        monitor = self.monitors.get((lane.track_index, lane.endpoint_id))
        while True:
            fjob = yield from lane.queue.get()
            if (
                monitor is not None
                and self.degradation.divert_queued
                and not monitor.allow()
            ):
                monitor.record_diverted()
                self._divert(fjob)
                continue
            started = self.env.now
            if lane.cache is not None:
                ok = yield from self._serve_cached(lane, fjob)
            else:
                ok = yield from self._serve_plain(lane, fjob)
            if monitor is not None:
                if ok:
                    monitor.record_success()
                else:
                    monitor.record_failure()
            completed = self.env.now
            if self.tracer is not None and ok:
                self.tracer.span_at(
                    "fleet.job",
                    start_s=started,
                    end_s=completed,
                    track=f"fleet:{lane.name}",
                    asynchronous=True,
                    job=fjob.job.job_id,
                    kind=fjob.job.kind,
                    dataset=fjob.dataset,
                    queue_wait_s=started - fjob.job.arrival_s,
                )
            self._finish(
                self._record(
                    fjob,
                    Outcome.SERVED if ok else Outcome.FAILED,
                    completed_s=completed if ok else None,
                )
            )

    def _close_robust(self, lane: _Lane, cart):
        """Close with unbounded patience: the cart has one way home.

        A failed Close leaves the cart parked at the rack (re-docked or
        in the recovery bay); abandoning it would strand physical
        capacity forever, so we re-attempt after a fixed beat until the
        repair crew restores the track.  Fault-free this is a single
        first-try Close, event for event.
        """
        while True:
            try:
                yield lane.api.close(cart, lane.endpoint_id)
                return
            except SchedulingError:
                self.registry.counter("count.fleet.close_deferrals").inc()
                yield self.env.timeout(CLOSE_RETRY_S)

    def _serve_plain(self, lane: _Lane, fjob: _FleetJob):
        """No cache: lock, borrow a cart, launch, read, return, repay."""
        lock = self._locks[fjob.dataset].request()
        yield lock
        token = self.topology.cart_pool.request()
        yield token
        try:
            try:
                station = yield lane.api.open(fjob.dataset, 0, lane.endpoint_id)
            except SchedulingError:
                return False
            try:
                yield lane.api.read(lane.endpoint_id, fjob.dataset, 0,
                                    n_bytes=fjob.read_bytes)
                ok = True
            except (SchedulingError, DataIntegrityError):
                # The read is lost (dead drives, degraded dock) but the
                # cart is docked and must still go home.
                ok = False
            yield from self._close_robust(lane, station.cart)
            return ok
        finally:
            token.release()
            lock.release()

    def _serve_cached(self, lane: _Lane, fjob: _FleetJob):
        """Cache path: hit reads in place; miss fetches (and may evict).

        Bounded retries cover fetch failures observed by coalesced
        waiters; in a fault-free fleet the first pass always lands.
        """
        cache = lane.cache
        for _ in range(3):
            entry = cache.lookup(fjob.dataset)
            if entry is not None:
                cache.record_hit(entry)
                if entry.state == FETCHING:
                    yield entry.ready
                    entry = cache.lookup(fjob.dataset)
                    if entry is None or entry.state != RESIDENT:
                        continue  # the fetch failed under us; retry
                cache.acquire(entry)
                try:
                    try:
                        yield lane.api.read(lane.endpoint_id, fjob.dataset, 0,
                                            n_bytes=fjob.read_bytes)
                        ok = True
                    except (SchedulingError, DataIntegrityError):
                        ok = False
                finally:
                    cache.release(entry)
                    self._balance_pool()
                return ok
            cache.record_miss()
            entry = cache.begin_fetch(fjob.dataset)
            if cache.residency > lane.stations:
                # Worker-per-station guarantees an idle victim exists
                # whenever residency exceeds the stations (at most one
                # entry per worker can be busy, and this worker's is
                # the new one).
                victim = self.hooks.pick_eviction(lane)
                if victim is not None:
                    self._start_eviction(lane, victim)
            lock = self._locks[fjob.dataset].request()
            yield lock
            token = self.topology.cart_pool.request()
            if not token.triggered:
                self._balance_pool()
            yield token
            try:
                station = yield lane.api.open(fjob.dataset, 0, lane.endpoint_id)
            except SchedulingError:
                cache.fail_fetch(entry)
                token.release()
                lock.release()
                continue
            cache.finish_fetch(entry, station, token, lock)
            cache.acquire(entry)
            try:
                try:
                    yield lane.api.read(lane.endpoint_id, fjob.dataset, 0,
                                        n_bytes=fjob.read_bytes)
                    ok = True
                except (SchedulingError, DataIntegrityError):
                    ok = False
            finally:
                cache.release(entry)
                self._balance_pool()
            return ok
        return False

    # -- cart-pool balancing -----------------------------------------------------

    def _start_eviction(self, lane: _Lane, entry) -> None:
        lane.cache.evict(entry)
        self._evictions_in_flight += 1
        self.env.process(self._evict(lane, entry))

    def _evict(self, lane: _Lane, entry):
        try:
            yield from self._close_robust(lane, entry.station.cart)
        finally:
            self._evictions_in_flight -= 1
            entry.token.release()
            entry.lock.release()
            self._balance_pool()

    def _balance_pool(self) -> None:
        """Evict idle residents while cart requests outnumber evictions
        already in flight — the event-driven loop that keeps a bounded
        pool from deadlocking under cache residency."""
        if self.scenario.cache is None:
            return
        pool = self.topology.cart_pool
        while len(pool.queue) > self._evictions_in_flight:
            best = None
            best_lane = None
            for lane in self.lanes.values():
                candidate = self.hooks.pick_eviction(lane)
                if candidate is not None and (
                    best is None or candidate.last_access_s < best.last_access_s
                ):
                    best = candidate
                    best_lane = lane
            if best is None:
                return
            self._start_eviction(best_lane, best)

    # -- bookkeeping -------------------------------------------------------------

    def _record(self, fjob: _FleetJob, outcome: str,
                completed_s: float | None) -> JobRecord:
        return JobRecord(
            job_id=fjob.job.job_id,
            kind=fjob.job.kind,
            dataset=fjob.dataset,
            arrival_s=fjob.job.arrival_s,
            deadline_s=fjob.deadline_at,
            read_bytes=fjob.read_bytes,
            outcome=outcome,
            completed_s=completed_s,
            tenant=fjob.tenant,
        )

    def _finish(self, record: JobRecord) -> None:
        self.sla.observe(record)
        if self.scenario.retain_records:
            self._outcomes.append(record)
        self._counts[record.outcome] += 1
        if (
            record.completed_s is not None
            and record.completed_s > self._max_completed_s
        ):
            self._max_completed_s = record.completed_s
        self._resolved += 1
        self._in_system -= 1
        if self.outcome_hook is not None:
            self.outcome_hook(record)
        self._maybe_done()

    @property
    def drained(self) -> bool:
        """True once intake is closed and every submitted job resolved.

        The epoch-stepping learned-control environment polls this
        between decision epochs instead of racing the ``_done`` event.
        """
        return self._done.triggered

    def _maybe_done(self) -> None:
        if (
            self._intake_closed
            and self._resolved >= self._submitted
            and not self._done.triggered
        ):
            self._done.succeed(None)

    # -- sharded intake ----------------------------------------------------------
    #
    # The sharded runner (:mod:`repro.fleet.shard`) cannot hand the
    # plane a lazy job stream: arrivals and forwarded jobs come in
    # per-epoch batches at conservative time barriers.  These three
    # hooks expose the exact intake path ``run`` drives, one event at a
    # time, with ``_maybe_done`` semantics unchanged.

    def start_workers(self) -> None:
        """Spawn every lane's per-station worker processes."""
        for lane in self.lanes.values():
            for _ in range(lane.stations):
                self.env.process(self._worker(lane))

    def inject(self, fjob: _FleetJob, at: float) -> None:
        """Schedule ``submit(fjob)`` at absolute virtual time ``at``.

        Injection order is creation order for equal timestamps (the
        engine breaks ties FIFO by event id), which is what makes a
        fixed canonical injection order reproduce bit-identically under
        any epoch executor.
        """
        event = self.env.event()

        def _deliver(_event, fjob=fjob):
            self.submit(fjob)

        event.callbacks.append(_deliver)
        event._ok = True
        event._value = None
        self.env.schedule_at(event, at)

    def close_intake(self) -> None:
        """No further jobs will arrive; the run may quiesce."""
        self._intake_closed = True
        self._maybe_done()

    # -- orchestration -----------------------------------------------------------

    def run(self, fjobs: Iterable[_FleetJob]) -> FleetReport:
        """Drive the fleet over any job stream — list or lazy iterator."""
        iterator = iter(fjobs)
        try:
            first = next(iterator)
        except StopIteration:
            raise ConfigurationError(
                "no jobs arrived within the horizon"
            ) from None
        self.start_workers()
        self.env.process(self._arrivals(itertools.chain((first,), iterator)))
        self.env.run(until=self._done)
        return self._build_report()

    def _build_report(self) -> FleetReport:
        records = tuple(sorted(self._outcomes, key=lambda r: r.job_id))
        caches = [
            lane.cache for lane in self.lanes.values() if lane.cache is not None
        ]
        monitors = tuple(self.monitors.values())
        return FleetReport(
            scenario=self.scenario,
            sla=self.sla.report(self.scenario.horizon_s),
            records=records,
            n_jobs=self._resolved,
            served=self._counts[Outcome.SERVED],
            shed=self._counts[Outcome.SHED],
            failovers=self._counts[Outcome.FAILOVER],
            failed=self._counts[Outcome.FAILED],
            cache_hits=sum(cache.hits for cache in caches),
            cache_misses=sum(cache.misses for cache in caches),
            cache_evictions=sum(cache.evictions for cache in caches),
            launches=self.topology.total_launches,
            launch_energy_j=self.topology.total_launch_energy_j,
            failover_energy_j=self.failover_energy_j,
            makespan_s=self._max_completed_s,
            diverted=sum(monitor.diverted for monitor in monitors),
            breaker_trips=sum(monitor.breaker.trips for monitor in monitors),
            rehomed=sum(cache.rehomed for cache in caches),
            lane_health=tuple(monitor.summary() for monitor in monitors),
            chaos_entries=(
                tuple(self._campaign.log.entries)
                if self._campaign is not None
                else ()
            ),
            peak_in_system=self.peak_in_system,
            tenant_sla=(
                self.sla.tenant_report(self.scenario.horizon_s)
                if self._tenants_seen
                else None
            ),
        )


def _bind_jobs(
    scenario: FleetScenario,
    topology: FleetTopology,
    jobs: Iterable[TransferJob] | None = None,
) -> Iterator[_FleetJob]:
    """Lazily bind datasets + SLAs to each job of a stream.

    ``jobs`` defaults to the scenario's seeded synthetic stream; any
    other :class:`~repro.workloads.generator.TransferJob` iterable (a
    trace replay, a fuzzer) binds identically.  Dataset draws use their
    own substream (``seed + 1``) so adding a traffic class never
    reshuffles which datasets existing jobs touch, and binding happens
    one job at a time as the control plane consumes the stream.
    """
    if jobs is None:
        generator = WorkloadGenerator(classes=scenario.classes,
                                      seed=scenario.seed)
        jobs = generator.generate(scenario.horizon_s)
    rng = np.random.default_rng(scenario.seed + 1)
    catalog = scenario.catalog
    hot = catalog.hot_names
    cold = catalog.cold_names
    targets = dict(scenario.targets)
    for job in jobs:
        if isinstance(job, _FleetJob):
            # Pre-bound jobs (trace replay) pass through untouched: the
            # trace already names each job's dataset, deadline and
            # tenant, so no random binding draw is consumed.
            yield job
            continue
        if hot and (not cold or float(rng.random()) < catalog.hot_fraction):
            dataset = hot[int(rng.integers(len(hot)))]
        else:
            dataset = cold[int(rng.integers(len(cold)))]
        target = targets.get(job.kind, DEFAULT_TARGET)
        home = topology.home(dataset)
        yield _FleetJob(
            job=job,
            dataset=dataset,
            read_bytes=min(job.size_bytes, home.size_bytes),
            deadline_at=job.arrival_s + target.deadline_s,
            priority=target.priority,
        )


def run_fleet(scenario: FleetScenario,
              tracer: Tracer | None = None,
              jobs: Iterable[TransferJob] | None = None,
              hooks: ControlHooks | None = None) -> FleetReport:
    """Simulate one fleet scenario end to end.

    Module-level and driven entirely by the scenario value, so it is
    picklable into :func:`repro.core.sweep.map_chunks` process workers
    and returns bit-identical reports under any engine.  ``jobs``
    optionally replaces the scenario's synthetic stream with any lazy
    :class:`~repro.workloads.generator.TransferJob` iterator — the
    control plane consumes it incrementally on the DES clock, so the
    full job list never needs to exist in memory.  ``hooks`` swaps the
    control plane's decision points (:class:`ControlHooks`); ``None``
    keeps the historical behaviour, bit for bit.
    """
    env = Environment()
    if tracer is not None:
        tracer.attach_clock(env)
    topology = FleetTopology(env, scenario.spec, scenario.catalog,
                             tracer=tracer)
    plane = ControlPlane(env, topology, scenario, tracer=tracer, hooks=hooks)
    if scenario.chaos is not None:
        plane.attach_campaign(
            install_campaign(env, topology.systems, scenario.chaos)
        )
    return plane.run(_bind_jobs(scenario, topology, jobs=jobs))
