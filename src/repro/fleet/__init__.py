"""Datacentre-scale DHL fleet control plane.

Where :mod:`repro.dhlsim` simulates *one* library-to-rack hyperloop,
this package operates a *deployment*: several tracks fanning out from a
shared library, a bounded pool of SSD carts, an admission + dispatch
control plane consuming a :mod:`repro.workloads` job stream under
pluggable scheduling policies, rack-side cart-residency caching so hot
datasets skip the launch entirely, per-traffic-class SLA tracking, a
capacity planner that sweeps fleet shapes through the
:mod:`repro.core.sweep` engines to find the minimal deployment meeting
an SLA, and a seeded Monte-Carlo replication layer
(:mod:`repro.fleet.montecarlo`) that turns single-seed KPIs into
mean/CI distributions.

The layer the ROADMAP's production-scale north star calls for: the
paper evaluates one rail (Sections III-V) and sketches multi-stop
contention (Section VI); a fleet operator must decide how many rails,
how many carts and which scheduling policy serve a tenant mix within
tail-latency targets.
"""

from .cache import (
    CacheConfig,
    CacheEntry,
    EVICTION_POLICIES,
    RackCache,
    select_victim,
)
from .capacity import (
    CandidateEvaluation,
    CapacityPlan,
    SlaRequirement,
    plan_capacity,
)
from .controlplane import (
    FLEET_MIX,
    FLEET_TARGETS,
    POLICIES,
    AdmissionControl,
    ControlHooks,
    FleetReport,
    FleetScenario,
    default_scenario,
    run_fleet,
)
from .health import (
    BREAKER_STATES,
    CircuitBreaker,
    DegradationPolicy,
    LaneHealthMonitor,
    illegal_transitions,
)
from .montecarlo import (
    DEFAULT_REPLICATIONS,
    montecarlo_payload,
    replicate_fleet,
    run_seeded,
)
from .shard import (
    DEFAULT_INTERPOD_LATENCY_S,
    SHARD_ENGINES,
    ShardPlan,
    ShardReport,
    render_signature,
    report_signature,
    run_sharded,
    signature_digest,
)
from .sla import (
    DEFAULT_SAMPLE_CAP,
    DEFAULT_TARGET,
    ClassSla,
    ClassTarget,
    JobRecord,
    LatencyReservoir,
    Outcome,
    SlaReport,
    SlaTracker,
)
from .topology import DatasetCatalog, DatasetHome, FleetSpec, FleetTopology

__all__ = [
    "AdmissionControl",
    "BREAKER_STATES",
    "CacheConfig",
    "CacheEntry",
    "CandidateEvaluation",
    "CapacityPlan",
    "CircuitBreaker",
    "ClassSla",
    "ClassTarget",
    "ControlHooks",
    "DEFAULT_INTERPOD_LATENCY_S",
    "DEFAULT_REPLICATIONS",
    "DEFAULT_SAMPLE_CAP",
    "DEFAULT_TARGET",
    "DatasetCatalog",
    "DatasetHome",
    "DegradationPolicy",
    "EVICTION_POLICIES",
    "FLEET_MIX",
    "FLEET_TARGETS",
    "FleetReport",
    "FleetScenario",
    "FleetSpec",
    "FleetTopology",
    "JobRecord",
    "LaneHealthMonitor",
    "LatencyReservoir",
    "Outcome",
    "POLICIES",
    "RackCache",
    "SHARD_ENGINES",
    "ShardPlan",
    "ShardReport",
    "SlaReport",
    "SlaRequirement",
    "SlaTracker",
    "default_scenario",
    "illegal_transitions",
    "montecarlo_payload",
    "plan_capacity",
    "render_signature",
    "replicate_fleet",
    "report_signature",
    "run_fleet",
    "run_seeded",
    "run_sharded",
    "select_victim",
    "signature_digest",
]
