"""Rack-side cart-residency cache.

A docked cart *is* a cache entry: while dataset *d*'s cart sits in a
rack's docking station, every further job for *d* reads it at PCIe
speed with no launch, no tube occupancy and no launch energy.  The
paper's energy argument (motors only accelerate; coasting is nearly
free) makes the launch the entire marginal cost of a miss — so keeping
hot carts docked converts tube round-trips into cache hits.

This module is deliberately **passive bookkeeping**: it decides what is
resident, what is being fetched and what to evict next, but never
touches the simulators.  The control plane owns the DHL APIs and drives
fetches and evictions; keeping the cache side-effect-free makes its
policies unit-testable without a simulation.

Entry lifecycle::

    (absent) --begin_fetch--> FETCHING --finish_fetch--> RESIDENT
                                  |                          |
                              fail_fetch                evict (readers == 0)
                                  v                          v
                               (absent)                  (absent)

Concurrent jobs for a FETCHING dataset coalesce: they wait on the
entry's ``ready`` event instead of launching a second cart.  RESIDENT
entries carry a reader refcount so eviction never detaches a cart
mid-read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..sim import Environment, Event

EVICTION_POLICIES = ("lru", "lfu", "ttl")

FETCHING = "fetching"
RESIDENT = "resident"


def select_victim(idle, policy: str, ttl_s: float, now: float):
    """The entry ``policy`` would evict next among ``idle`` entries.

    The single source of truth for victim selection: both the passive
    :meth:`RackCache.evictable` query and the learned eviction hook
    (:mod:`repro.learn.env`) rank candidates through this function, so
    an adaptive policy that picks ``"lru"`` is the LRU cache, decision
    for decision.  Returns ``None`` when ``idle`` is empty.
    """
    if policy not in EVICTION_POLICIES:
        raise ConfigurationError(
            f"victim policy must be one of {EVICTION_POLICIES}, got {policy!r}"
        )
    idle = list(idle)
    if not idle:
        return None
    if policy == "lru":
        return min(idle, key=lambda e: (e.last_access_s, e.dataset))
    if policy == "lfu":
        return min(idle, key=lambda e: (e.accesses, e.last_access_s, e.dataset))
    # ttl: expired entries first (oldest residency), else LRU.
    expired = [e for e in idle if now - e.created_s >= ttl_s]
    if expired:
        return min(expired, key=lambda e: (e.created_s, e.dataset))
    return min(idle, key=lambda e: (e.last_access_s, e.dataset))


@dataclass(frozen=True)
class CacheConfig:
    """Eviction behaviour of the rack-side cart cache."""

    policy: str = "lru"
    ttl_s: float = 600.0
    """For the ``ttl`` policy: residency older than this is evicted
    first (expired entries in LRU order), falling back to plain LRU
    while nothing has expired."""

    def __post_init__(self) -> None:
        if self.policy not in EVICTION_POLICIES:
            raise ConfigurationError(
                f"cache policy must be one of {EVICTION_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.ttl_s <= 0:
            raise ConfigurationError(f"ttl_s must be positive, got {self.ttl_s}")


@dataclass
class CacheEntry:
    """One dataset's residency at one rack."""

    dataset: str
    state: str
    ready: Event
    created_s: float
    last_access_s: float
    accesses: int = 0
    readers: int = 0
    # Set by the control plane at finish_fetch: the docking station the
    # cart occupies plus the pool-token and dataset-lock requests whose
    # release returns the cart's resources to the fleet on eviction.
    station: object = None
    token: object = None
    lock: object = None

    @property
    def idle(self) -> bool:
        return self.state == RESIDENT and self.readers == 0


class RackCache:
    """Cart-residency tracking for one (track, rack) lane."""

    def __init__(self, env: Environment, config: CacheConfig):
        self.env = env
        self.config = config
        self.entries: dict[str, CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.failed_fetches = 0
        self.rehomed = 0

    # -- queries -----------------------------------------------------------------

    def lookup(self, dataset: str) -> Optional[CacheEntry]:
        return self.entries.get(dataset)

    @property
    def residency(self) -> int:
        """Entries occupying (or about to occupy) a docking station."""
        return len(self.entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- state transitions (driven by the control plane) -------------------------

    def record_hit(self, entry: CacheEntry) -> None:
        self.hits += 1
        entry.accesses += 1
        entry.last_access_s = self.env.now

    def record_miss(self) -> None:
        self.misses += 1

    def begin_fetch(self, dataset: str) -> CacheEntry:
        if dataset in self.entries:
            raise ConfigurationError(f"{dataset!r} is already tracked")
        entry = CacheEntry(
            dataset=dataset,
            state=FETCHING,
            ready=Event(self.env),
            created_s=self.env.now,
            last_access_s=self.env.now,
            accesses=1,
        )
        self.entries[dataset] = entry
        return entry

    def finish_fetch(self, entry: CacheEntry, station, token, lock) -> None:
        entry.state = RESIDENT
        entry.station = station
        entry.token = token
        entry.lock = lock
        entry.last_access_s = self.env.now
        if not entry.ready.triggered:
            entry.ready.succeed(None)

    def fail_fetch(self, entry: CacheEntry) -> None:
        """The launch failed; drop the entry and wake coalesced waiters.

        Waiters re-run their lookup, see a miss, and retry (bounded by
        the control plane).  ``ready`` is succeeded, not failed, so the
        failure surfaces as a retry decision rather than an exception
        teleported into unrelated jobs.
        """
        self.failed_fetches += 1
        del self.entries[entry.dataset]
        if not entry.ready.triggered:
            entry.ready.succeed(None)

    def acquire(self, entry: CacheEntry) -> None:
        entry.readers += 1

    def release(self, entry: CacheEntry) -> None:
        if entry.readers <= 0:
            raise ConfigurationError(f"release of unread entry {entry.dataset!r}")
        entry.readers -= 1

    def evict(self, entry: CacheEntry) -> None:
        """Remove a (necessarily idle) entry from tracking."""
        if not entry.idle:
            raise ConfigurationError(
                f"cannot evict {entry.dataset!r}: state={entry.state} "
                f"readers={entry.readers}"
            )
        self.evictions += 1
        del self.entries[entry.dataset]

    def rehome(self) -> list[CacheEntry]:
        """Idle residents to migrate off this lane after a cache-node loss.

        When the rack-side residency tracker dies, every idle docked
        cart must shuttle home so its pool token and dataset lock return
        to the fleet — otherwise the dead node silently leaks pool
        capacity.  Returns the victims (counted as ``rehomed``); the
        control plane drives the actual evictions, keeping this module
        side-effect-free.  Busy entries (readers in flight) and
        FETCHING entries stay: their owning workers already hold the
        resources and will release them through the normal lifecycle.
        """
        victims = [entry for entry in self.entries.values() if entry.idle]
        self.rehomed += len(victims)
        return victims

    # -- victim selection --------------------------------------------------------

    def evictable(self) -> Optional[CacheEntry]:
        """The entry this lane would evict next, or None if all are busy."""
        return select_victim(
            self.idle_entries(),
            self.config.policy,
            self.config.ttl_s,
            self.env.now,
        )

    def idle_entries(self) -> list[CacheEntry]:
        """Resident entries with no readers — the eviction candidates."""
        return [entry for entry in self.entries.values() if entry.idle]
