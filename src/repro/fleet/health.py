"""Lane health monitoring and circuit breaking for the fleet control plane.

The paper's reliability argument (§III-D) is that in-flight failures
are survivable because the DHL API surfaces them and the rest of the
datacentre routes around them.  This module is the fleet-side half of
that story:

* :class:`LaneHealthMonitor` — one per (track, rack) lane, fed by the
  track's fault-to-repair windows (via
  :attr:`~repro.dhlsim.track.TrackHealth.listeners`) and by serve
  outcomes, so both *infrastructure* faults and *observed* failures
  move the lane's health;
* :class:`CircuitBreaker` — the classic three-state machine.  CLOSED
  lanes serve normally; ``failure_threshold`` consecutive failures (or
  a track-down window) trip the lane OPEN, diverting traffic to the
  optical failover or shedding it per SLA class; after
  ``reset_timeout_s`` the breaker goes HALF_OPEN and admits a bounded
  number of probe jobs — success re-closes the lane, failure re-opens
  it.

Every transition is recorded with its virtual timestamp, and
:func:`illegal_transitions` checks a transition log against the legal
edge set — the invariant the stateful fuzzer asserts after every rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

BREAKER_STATES = (CLOSED, OPEN, HALF_OPEN)

#: The legal edges of the breaker state machine.
LEGAL_TRANSITIONS = frozenset(
    {
        (CLOSED, OPEN),        # consecutive failures / track down: trip
        (OPEN, HALF_OPEN),     # reset timeout elapsed: start probing
        (HALF_OPEN, OPEN),     # probe failed: re-trip
        (HALF_OPEN, CLOSED),   # probes succeeded: repaired
    }
)


def illegal_transitions(
    log: list[tuple[float, str, str]],
) -> list[tuple[float, str, str]]:
    """Entries of a breaker transition log outside the legal edge set.

    Also flags non-monotone timestamps (a transition recorded earlier
    than its predecessor), encoded as ``(time, "time", "backwards")``.
    """
    problems = []
    last_time = float("-inf")
    for when, src, dst in log:
        if (src, dst) not in LEGAL_TRANSITIONS:
            problems.append((when, src, dst))
        if when < last_time:
            problems.append((when, "time", "backwards"))
        last_time = when
    return problems


@dataclass(frozen=True)
class DegradationPolicy:
    """How a fleet degrades when a lane's circuit breaker trips.

    Jobs arriving for (or queued at) an OPEN lane are *diverted*: sent
    over the optical failover if the deployment has links and the job's
    class is not listed in ``shed_classes``, shed otherwise.  Shedding
    the cheapest SLA class first keeps failover streams free for the
    traffic whose deadline actually needs them — the per-class
    degradation ladder the paper's Fig. 6 energy/latency trade implies.
    """

    failure_threshold: int = 3
    """Consecutive serve failures that trip a CLOSED breaker OPEN."""
    reset_timeout_s: float = 180.0
    """Seconds an OPEN breaker waits before admitting HALF_OPEN probes."""
    half_open_probes: int = 1
    """Probe jobs admitted while HALF_OPEN; successes re-close the lane."""
    shed_classes: tuple[str, ...] = ("archive",)
    """Traffic classes shed (not failed over) while a lane is degraded."""
    divert_queued: bool = True
    """Divert jobs already queued at a lane when its breaker trips."""

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0:
            raise ConfigurationError(
                f"reset_timeout_s must be > 0, got {self.reset_timeout_s}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass
class CircuitBreaker:
    """Three-state breaker with an auditable transition log."""

    policy: DegradationPolicy
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probes_in_flight: int = 0
    probe_successes: int = 0
    trips: int = 0
    transitions: list[tuple[float, str, str]] = field(default_factory=list)

    def _move(self, now: float, dst: str) -> None:
        self.transitions.append((now, self.state, dst))
        self.state = dst

    # -- inputs ------------------------------------------------------------------

    def trip(self, now: float) -> None:
        """Force the breaker OPEN (track-down window, cache-node loss)."""
        if self.state == OPEN:
            return
        self._move(now, OPEN)
        self.opened_at = now
        self.trips += 1
        self.probes_in_flight = 0
        self.probe_successes = 0

    def record_failure(self, now: float) -> None:
        """One serve failure on this lane."""
        self.consecutive_failures += 1
        if self.state == CLOSED:
            if self.consecutive_failures >= self.policy.failure_threshold:
                self.trip(now)
        elif self.state == HALF_OPEN:
            # The probe failed: straight back to OPEN, timer restarted.
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._move(now, OPEN)
            self.opened_at = now
            self.trips += 1
            self.probe_successes = 0

    def record_success(self, now: float) -> None:
        """One successful serve on this lane."""
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self.probe_successes += 1
            if self.probe_successes >= self.policy.half_open_probes:
                self._move(now, CLOSED)
                self.probe_successes = 0

    # -- queries -----------------------------------------------------------------

    def allow(self, now: float) -> bool:
        """May a job be served on this lane right now?

        OPEN breakers start probing once the reset timeout has elapsed;
        the HALF_OPEN state admits at most ``half_open_probes`` jobs at
        a time, each accounted as a probe until its outcome lands.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now - self.opened_at >= self.policy.reset_timeout_s:
                self._move(now, HALF_OPEN)
                self.probes_in_flight = 1
                return True
            return False
        # HALF_OPEN: bounded concurrent probes.
        if self.probes_in_flight < self.policy.half_open_probes:
            self.probes_in_flight += 1
            return True
        return False


@dataclass
class FaultWindow:
    """One fault-to-repair window observed on a lane's track."""

    started_s: float
    ended_s: float | None = None

    @property
    def open(self) -> bool:
        return self.ended_s is None

    def duration_s(self, now: float) -> float:
        return (now if self.ended_s is None else self.ended_s) - self.started_s


class LaneHealthMonitor:
    """Health of one (track, rack) lane, fed by faults and outcomes.

    Subscribes to the lane's :class:`~repro.dhlsim.track.TrackHealth`
    transition listeners: a tube-down event opens a
    :class:`FaultWindow` and trips the breaker immediately (no need to
    burn ``failure_threshold`` jobs discovering a fault the
    infrastructure already reported); the matching repair closes the
    window and leaves the breaker to re-close through half-open
    probing, exactly as a production mesh would.
    """

    def __init__(self, name: str, policy: DegradationPolicy, track_health,
                 clock) -> None:
        self.name = name
        self.policy = policy
        self.breaker = CircuitBreaker(policy)
        self.windows: list[FaultWindow] = []
        self.serve_failures = 0
        self.serve_successes = 0
        self.diverted = 0
        self._clock = clock
        self._track_health = track_health
        track_health.listeners.append(self._on_track_transition)

    # -- track-side feed ---------------------------------------------------------

    def _on_track_transition(self, available: bool, now: float) -> None:
        if not available:
            self.windows.append(FaultWindow(started_s=now))
            self.breaker.trip(now)
        elif self.windows and self.windows[-1].open:
            self.windows[-1].ended_s = now

    def detach(self) -> None:
        """Unsubscribe from the track (idempotent)."""
        try:
            self._track_health.listeners.remove(self._on_track_transition)
        except ValueError:
            pass

    # -- serve-side feed ---------------------------------------------------------

    def record_success(self) -> None:
        self.serve_successes += 1
        self.breaker.record_success(self._clock.now)

    def record_failure(self) -> None:
        self.serve_failures += 1
        self.breaker.record_failure(self._clock.now)

    def record_diverted(self) -> None:
        self.diverted += 1

    # -- queries -----------------------------------------------------------------

    @property
    def track_up(self) -> bool:
        return self._track_health.tube_available

    def allow(self) -> bool:
        """Should a job be served on (rather than diverted off) this lane?

        A down tube never admits traffic — probing a lane whose track
        is breached would just burn the probe budget on guaranteed
        failures — so the breaker only starts half-open probing once
        the repair crew has actually restored the track.
        """
        if not self.track_up:
            return False
        return self.breaker.allow(self._clock.now)

    @property
    def mttr_observed_s(self) -> float:
        """Mean fault-to-repair window length seen so far (0 if none)."""
        closed = [w for w in self.windows if not w.open]
        if not closed:
            return 0.0
        return sum(w.duration_s(0.0) for w in closed) / len(closed)

    def summary(self) -> dict[str, object]:
        """One row of the degradation report."""
        return {
            "lane": self.name,
            "state": self.breaker.state,
            "trips": self.breaker.trips,
            "fault_windows": len(self.windows),
            "serve_failures": self.serve_failures,
            "diverted": self.diverted,
        }
