"""Fleet-scenario benchmarking: the ``repro fleet`` artefact.

Runs the headline fleet scenario under the policy/cache combinations
that bracket the design space and serialises the per-combo KPIs to
``BENCH_fleet.json``, the committed baseline CI regenerates on every
push.  Unlike the sweep bench (wall-clock timings, machine-dependent),
every KPI here is **virtual-time** output of a seeded deterministic
simulation — so the regression gate compares values directly: any
drift means the simulated system changed, not the machine.  Wall time
is recorded as informational context only.

The payload also pins the PR's headline invariants as booleans:
cache-enabled EDF must beat cache-less FCFS on both p99 latency and
launch energy for the hot-dataset mix.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from .controlplane import FleetReport, default_scenario, run_fleet

SCHEMA = "repro-bench-fleet/1"

#: (policy, cache) combinations bracketing the fleet design space.
BENCH_COMBOS: tuple[tuple[str, str | None], ...] = (
    ("fcfs", None),
    ("fcfs", "lru"),
    ("edf", None),
    ("edf", "lru"),
)

DEFAULT_HORIZON_S = 3600.0
DEFAULT_SEED = 0


def _combo_label(policy: str, cache: str | None) -> str:
    return f"{policy}+{cache or 'none'}"


@dataclass(frozen=True)
class FleetBenchReport:
    """All combo runs of one fleet bench, keyed by ``policy+cache``."""

    seed: int
    horizon_s: float
    reports: tuple[tuple[str, FleetReport], ...]
    wall_s: float

    def report(self, label: str) -> FleetReport:
        for key, report in self.reports:
            if key == label:
                return report
        raise ConfigurationError(f"combo {label!r} was not benched")

    @property
    def cache_beats_baseline(self) -> tuple[bool, bool]:
        """(p99 wins, launch-energy wins) of edf+lru over fcfs+none."""
        cached = self.report("edf+lru")
        baseline = self.report("fcfs+none")
        return (
            cached.p99_s < baseline.p99_s,
            cached.launch_energy_j < baseline.launch_energy_j,
        )


def run_fleet_bench(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    combos: tuple[tuple[str, str | None], ...] = BENCH_COMBOS,
) -> FleetBenchReport:
    """Run every combo on the same seeded workload."""
    if not combos:
        raise ConfigurationError("at least one (policy, cache) combo is required")
    started = time.perf_counter()
    reports = tuple(
        (
            _combo_label(policy, cache),
            run_fleet(default_scenario(policy=policy, cache=cache, seed=seed,
                                       horizon_s=horizon_s)),
        )
        for policy, cache in combos
    )
    return FleetBenchReport(
        seed=seed,
        horizon_s=horizon_s,
        reports=reports,
        wall_s=time.perf_counter() - started,
    )


def _kpis(report: FleetReport) -> dict[str, object]:
    """The deterministic per-combo KPIs the regression gate compares."""
    return {
        "n_jobs": report.n_jobs,
        "served": report.served,
        "shed": report.shed,
        "failovers": report.failovers,
        "failed": report.failed,
        "p50_s": round(report.sla.overall.p50_s, 3),
        "p95_s": round(report.sla.overall.p95_s, 3),
        "p99_s": round(report.p99_s, 3),
        "deadline_miss_rate": round(report.deadline_miss_rate, 6),
        "goodput_gb_per_s": round(report.goodput_bytes_per_s / 1e9, 3),
        "cache_hit_rate": round(report.hit_rate, 6),
        "cache_evictions": report.cache_evictions,
        "launches": report.launches,
        "launch_energy_mj": round(report.launch_energy_j / 1e6, 6),
        "failover_energy_mj": round(report.failover_energy_j / 1e6, 6),
        "makespan_s": round(report.makespan_s, 3),
    }


def report_payload(bench: FleetBenchReport) -> dict[str, object]:
    """The JSON-serialisable form of a fleet bench (``BENCH_fleet.json``)."""
    from ..analysis.perf import environment_info

    p99_wins, energy_wins = bench.cache_beats_baseline
    return {
        "schema": SCHEMA,
        "seed": bench.seed,
        "horizon_s": bench.horizon_s,
        "combos": {label: _kpis(report) for label, report in bench.reports},
        "invariants": {
            "edf_lru_beats_fcfs_none_p99": p99_wins,
            "edf_lru_beats_fcfs_none_launch_energy": energy_wins,
        },
        "wall_s_informational": round(bench.wall_s, 3),
        "environment": environment_info(),
    }


def write_report(bench: FleetBenchReport, path: str) -> str:
    """Write ``BENCH_fleet.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed fleet baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    KPIs are virtual-time outputs of a seeded simulation: they must
    match the baseline to within float-noise tolerance on any machine.
    The headline invariants must hold in both payloads.
    """
    problems: list[str] = []
    for name, value in dict(payload.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in fresh run: {name}")
    for name, value in dict(baseline.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in baseline: {name}")
    fresh_combos = dict(payload.get("combos", {}))
    base_combos = dict(baseline.get("combos", {}))
    for label, base_kpis in base_combos.items():
        if label not in fresh_combos:
            problems.append(f"combo {label!r} missing from fresh run")
            continue
        fresh_kpis = fresh_combos[label]
        for key, base_value in dict(base_kpis).items():
            fresh_value = fresh_kpis.get(key)
            if isinstance(base_value, bool) or not isinstance(
                base_value, (int, float)
            ):
                if fresh_value != base_value:
                    problems.append(
                        f"{label}.{key}: {fresh_value!r} != baseline "
                        f"{base_value!r}"
                    )
            elif fresh_value is None or not math.isclose(
                float(fresh_value), float(base_value), rel_tol=rel_tol,
                abs_tol=rel_tol,
            ):
                problems.append(
                    f"{label}.{key}: {fresh_value} drifted from baseline "
                    f"{base_value}"
                )
    return problems
