"""Monte-Carlo fleet replication: confidence-intervalled fleet KPIs.

``BENCH_fleet.json`` pins single-seed fleet numbers; this module runs
the same :class:`~repro.fleet.controlplane.FleetScenario` under many
seeds through :func:`repro.sim.replicate.replicate` and merges the
per-seed KPI dicts (the exact KPIs the fleet bench gates on, from
:func:`repro.fleet.bench._kpis` — SLA percentiles, miss rates, cache
and energy counters) into mean / CI95 / tail tables.  A p99 quoted
with an error bar instead of a point estimate is the difference
between "seed 0 met the SLA" and "the deployment meets the SLA".

Scenarios are frozen, picklable dataclasses and ``run_fleet`` is
module-level, so the fan-out works identically on the serial and
process engines; the payload is deterministic and byte-identical
across both (the ``repro replicate`` acceptance invariant).
"""

from __future__ import annotations

import functools
from dataclasses import replace
from typing import Iterable

from ..sim.replicate import ReplicationResult, replicate, result_payload
from .bench import _kpis
from .controlplane import FleetScenario, default_scenario, run_fleet

DEFAULT_REPLICATIONS = 8
"""Seeds per replication when the caller does not pick a seed list."""


def run_seeded(scenario: FleetScenario, seed: int) -> dict[str, float]:
    """One fleet run with the scenario's seed swapped: KPI name -> value.

    Module-level and pure-by-value so ``functools.partial(run_seeded,
    scenario)`` pickles into process-pool workers.
    """
    report = run_fleet(replace(scenario, seed=seed))
    return {name: float(value) for name, value in _kpis(report).items()}


def replicate_fleet(
    scenario: FleetScenario | None = None,
    seeds: Iterable[int] | None = None,
    engine: str = "serial",
    workers: int | None = None,
) -> ReplicationResult:
    """Replicate one fleet scenario across seeds and merge the KPIs.

    ``seeds`` defaults to ``DEFAULT_REPLICATIONS`` consecutive seeds
    starting at the scenario's own — so the scenario's single-seed
    bench row is always one of the replications.
    """
    if scenario is None:
        scenario = default_scenario()
    if seeds is None:
        seeds = range(scenario.seed, scenario.seed + DEFAULT_REPLICATIONS)
    return replicate(
        functools.partial(run_seeded, scenario),
        seeds,
        engine=engine,
        workers=workers,
    )


def montecarlo_payload(
    scenario: FleetScenario, result: ReplicationResult
) -> dict[str, object]:
    """The deterministic report payload, tagged with the scenario shape.

    Extends :func:`repro.sim.replicate.result_payload` (which excludes
    engine/wall-time so serial and process runs serialise identically)
    with the scenario descriptor the numbers belong to.
    """
    payload = result_payload(result)
    payload["scenario"] = {
        "policy": scenario.policy,
        "cache": scenario.cache_label,
        "horizon_s": scenario.horizon_s,
        "n_tracks": scenario.spec.n_tracks,
        "cart_pool": scenario.spec.cart_pool,
        "base_seed": scenario.seed,
    }
    return payload
