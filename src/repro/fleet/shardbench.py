"""Sharded-fleet benchmarking: the ``repro bench --mode shard`` artefact.

Runs the 10× ``BENCH_fleet`` topology (20 tracks, 60 carts, a
120-dataset catalog) under 4× its design load through the sharded
runner, once on the serial epoch executor and once on the process
executor, and serialises the results to ``BENCH_shard.json``.

Two things are gated:

* **Determinism** — the serial and process runs must produce
  byte-identical merged :class:`~repro.fleet.controlplane.FleetReport`
  signatures (compared as SHA-256 digests of the canonical rendering),
  on every machine, always.
* **Speedup** — the process executor must beat the serial executor by
  ``SPEEDUP_TARGET``× wall-clock, asserted only where it is measurable
  (``cpu_count >= n_pods``); single-core machines record the skip in
  the payload the same way ``BENCH_sweep.json`` does.

Virtual-time KPIs are deterministic and compared exactly against the
committed baseline; wall-clock numbers are informational except for the
conditional speedup invariant.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, replace
from typing import Mapping

from ..errors import ConfigurationError
from .bench import _kpis
from .controlplane import FLEET_MIX, FleetScenario, default_scenario
from .shard import ShardPlan, ShardReport, run_sharded, signature_digest
from .topology import DatasetCatalog, FleetSpec

SCHEMA = "repro-bench-shard/1"

DEFAULT_SEED = 0
DEFAULT_HORIZON_S = 3600.0
DEFAULT_N_PODS = 4
#: Boundary latency for the bench plan: wide enough that epoch-barrier
#: overhead is amortised (60 s of virtual time per synchronisation).
DEFAULT_WINDOW_S = 60.0
#: Traffic multiplier over :data:`~repro.fleet.controlplane.FLEET_MIX`.
#: 40× the base mix over 10× the tracks is 4× the per-track design
#: load — a saturation stress that keeps every pod busy all epoch.
DEFAULT_RATE_MULTIPLIER = 40.0
#: Required process-over-serial wall-clock win where cores allow it.
SPEEDUP_TARGET = 3.0


def bench_scenario(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    rate_multiplier: float = DEFAULT_RATE_MULTIPLIER,
) -> FleetScenario:
    """The 10× ``BENCH_fleet`` topology under ``rate_multiplier``× load."""
    scenario = default_scenario(
        spec=FleetSpec(n_tracks=20, cart_pool=60),
        catalog=DatasetCatalog(n_datasets=120, hot_count=20),
        seed=seed,
        horizon_s=horizon_s,
    )
    classes = tuple(
        replace(klass, rate_per_hour=klass.rate_per_hour * rate_multiplier)
        for klass in FLEET_MIX
    )
    return replace(scenario, classes=classes)


def bench_plan(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    n_pods: int = DEFAULT_N_PODS,
    interpod_latency_s: float = DEFAULT_WINDOW_S,
) -> ShardPlan:
    """The committed bench plan: 4 pods of 5 tracks, 60 s windows."""
    return ShardPlan(
        scenario=bench_scenario(seed=seed, horizon_s=horizon_s),
        n_pods=n_pods,
        interpod_latency_s=interpod_latency_s,
    )


@dataclass(frozen=True)
class ShardBenchReport:
    """Both executor runs of one shard bench, plus the identity verdict."""

    plan: ShardPlan
    serial: ShardReport
    process: ShardReport
    serial_digest: str
    process_digest: str
    wall_s: float

    @property
    def identical(self) -> bool:
        """Whether the two executors produced byte-identical reports."""
        return self.serial_digest == self.process_digest

    @property
    def speedup(self) -> float:
        """Process-over-serial wall-clock ratio (>1 means process wins)."""
        return (
            self.serial.wall_s / self.process.wall_s
            if self.process.wall_s > 0
            else float("inf")
        )


def run_shard_bench(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    n_pods: int = DEFAULT_N_PODS,
    interpod_latency_s: float = DEFAULT_WINDOW_S,
    workers: int | None = None,
) -> ShardBenchReport:
    """Run the bench plan on both executors and digest the reports."""
    plan = bench_plan(
        seed=seed,
        horizon_s=horizon_s,
        n_pods=n_pods,
        interpod_latency_s=interpod_latency_s,
    )
    started = time.perf_counter()
    serial = run_sharded(plan, engine="serial")
    process = run_sharded(plan, engine="process", workers=workers)
    return ShardBenchReport(
        plan=plan,
        serial=serial,
        process=process,
        serial_digest=signature_digest(serial.fleet),
        process_digest=signature_digest(process.fleet),
        wall_s=time.perf_counter() - started,
    )


def report_payload(bench: ShardBenchReport) -> dict[str, object]:
    """The JSON-serialisable form of a shard bench (``BENCH_shard.json``)."""
    from ..analysis.perf import environment_info

    plan = bench.plan
    cpu_count = os.cpu_count() or 1
    speedup_measurable = cpu_count >= plan.n_pods
    skipped: dict[str, str] = {}
    invariants: dict[str, bool] = {
        "serial_process_identical": bench.identical,
        "forwarded_equals_remote_outcomes": (
            bench.serial.forwarded
            == sum(bench.serial.remote_outcomes.values())
        ),
        "every_job_resolved": (
            bench.serial.fleet.n_jobs
            == sum(row["n_jobs"] for row in bench.serial.pod_rows)
        ),
    }
    if speedup_measurable:
        invariants[f"process_speedup_ge_{SPEEDUP_TARGET:g}x"] = (
            bench.speedup >= SPEEDUP_TARGET
        )
    else:
        skipped["speedup"] = f"cpu_count == {cpu_count} < n_pods == {plan.n_pods}"
    return {
        "schema": SCHEMA,
        "seed": plan.scenario.seed,
        "horizon_s": plan.scenario.horizon_s,
        "n_pods": plan.n_pods,
        "n_tracks": plan.scenario.spec.n_tracks,
        "cart_pool": plan.scenario.spec.cart_pool,
        "interpod_latency_s": plan.interpod_latency_s,
        "epochs": bench.serial.epochs,
        "kpis": _kpis(bench.serial.fleet),
        "shards": {
            "forwarded": bench.serial.forwarded,
            "remote_outcomes": dict(
                sorted(bench.serial.remote_outcomes.items())
            ),
            "pod_jobs": list(bench.serial.pod_jobs),
            "track_ranges": [list(r) for r in plan.track_ranges],
            "cart_shares": list(plan.cart_shares),
        },
        "identity": {
            "serial_sha256": bench.serial_digest,
            "process_sha256": bench.process_digest,
        },
        "invariants": invariants,
        "skipped": skipped,
        "timings_informational": {
            "serial_wall_s": round(bench.serial.wall_s, 3),
            "process_wall_s": round(bench.process.wall_s, 3),
            "process_workers": bench.process.workers,
            "speedup": round(bench.speedup, 3),
        },
        "environment": environment_info(),
    }


def write_report(bench: ShardBenchReport, path: str) -> str:
    """Write ``BENCH_shard.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed shard baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh shard bench to a baseline.

    Virtual-time KPIs and shard accounting must match exactly (to float
    noise) on any machine; invariants must hold in both payloads.
    Timings, digests and the skip record are machine-dependent and not
    compared — digests only need to agree *within* a run, which the
    ``serial_process_identical`` invariant already asserts.
    """
    problems: list[str] = []
    for name, value in dict(payload.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in fresh run: {name}")
    for name, value in dict(baseline.get("invariants", {})).items():
        if not value:
            problems.append(f"invariant failed in baseline: {name}")
    for section in ("kpis", "shards"):
        fresh = dict(payload.get(section, {}))
        base = dict(baseline.get(section, {}))
        for key, base_value in base.items():
            fresh_value = fresh.get(key)
            if isinstance(base_value, (bool, str, list, dict)) or not isinstance(
                base_value, (int, float)
            ):
                if fresh_value != base_value:
                    problems.append(
                        f"{section}.{key}: {fresh_value!r} != baseline "
                        f"{base_value!r}"
                    )
            elif fresh_value is None or not math.isclose(
                float(fresh_value), float(base_value), rel_tol=rel_tol,
                abs_tol=rel_tol,
            ):
                problems.append(
                    f"{section}.{key}: {fresh_value} drifted from baseline "
                    f"{base_value}"
                )
    for scalar in ("n_pods", "n_tracks", "cart_pool", "interpod_latency_s",
                   "epochs", "horizon_s", "seed"):
        if scalar in baseline and payload.get(scalar) != baseline[scalar]:
            problems.append(
                f"{scalar}: {payload.get(scalar)!r} != baseline "
                f"{baseline[scalar]!r}"
            )
    if not problems and not dict(payload.get("identity", {})):
        raise ConfigurationError("fresh payload carries no identity digests")
    return problems
