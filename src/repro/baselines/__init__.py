"""Alternative data-movement baselines the paper argues against.

Friction-limited embodied movement (hand-carried drives, Snowmobile-
class trucking) from Sections II-C and VII-B, quantified so the DHL's
frictionless-maglev advantage can be measured rather than asserted.
"""

from .sneakernet import (
    FrictionCarrier,
    HUMAN_PORTER,
    SNOWMOBILE_TRUCK,
    SneakernetPlan,
    breakeven_against_carrier,
    metabolic_equivalent_note,
    plan_sneakernet,
    snowmobile_reference_time,
)

__all__ = [
    "FrictionCarrier",
    "HUMAN_PORTER",
    "SNOWMOBILE_TRUCK",
    "SneakernetPlan",
    "breakeven_against_carrier",
    "metabolic_equivalent_note",
    "plan_sneakernet",
    "snowmobile_reference_time",
]
