"""Friction-limited embodied data movement baselines (Sections II-C, VII-B).

The paper dismisses two alternatives to the DHL with a physical-economy
argument this module makes quantitative:

* **Moving the disks by hand** — 29 PB is 1319 HDDs or 290 large SSDs;
  "the energy and dollar cost of moving the disks by hand would likely
  eclipse that of optical networking."
* **Sneakernet / AWS Snowmobile** — couriered drives or a 45-foot truck
  shipping 100 PB "in only up to a few weeks' time"; "all of these
  methods limit energy savings due to friction-limited movement."

Both are modelled as rolling/walking transport whose energy is dominated
by friction (metabolic or rolling resistance) over the payload *and*
vehicle mass — exactly the losses the DHL's maglev-in-vacuum design
removes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..storage.devices import NIMBUS_EXADRIVE_100TB, StorageDevice
from ..units import GRAVITY, assert_positive, ceil_div


@dataclass(frozen=True)
class FrictionCarrier:
    """A friction-limited transport: a porter, trolley, van or truck.

    ``rolling_resistance`` is the dimensionless coefficient mu such that
    moving mass M a distance x dissipates ``mu * M * g * x`` at the
    wheels (or its metabolic equivalent for a walker).  ``overhead_mass``
    is the vehicle/porter mass moved along with the payload, and
    ``efficiency`` the tank/food-to-motion conversion of the motor or
    human, so drawn energy = dissipated / efficiency.
    """

    name: str
    speed_m_s: float
    payload_mass_kg: float
    overhead_mass_kg: float
    rolling_resistance: float
    efficiency: float
    handling_time_s: float = 60.0
    handling_time_per_drive_s: float = 60.0
    """Per-drive unrack/carry/insert time at each end — the true cost of
    hand-moving thousands of individual drives."""
    sustained_power_w: float = 0.0
    """Power drawn for the whole job duration: a porter's above-basal
    metabolic output, or a truck's engine/hotel overhead."""
    labour_usd_per_hour: float = 0.0

    def __post_init__(self) -> None:
        assert_positive("speed_m_s", self.speed_m_s)
        assert_positive("payload_mass_kg", self.payload_mass_kg)
        if self.overhead_mass_kg < 0:
            raise ConfigurationError("overhead mass must be >= 0")
        if not 0 < self.rolling_resistance < 1:
            raise ConfigurationError(
                f"rolling resistance must be in (0, 1), got {self.rolling_resistance}"
            )
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if min(self.handling_time_s, self.handling_time_per_drive_s,
               self.sustained_power_w, self.labour_usd_per_hour) < 0:
            raise ConfigurationError(
                "handling times, sustained power and labour rate must be >= 0"
            )

    def trip_time(self, distance_m: float) -> float:
        """One-way travel time plus the fixed per-trip handling."""
        assert_positive("distance_m", distance_m)
        return distance_m / self.speed_m_s + self.handling_time_s

    def trip_energy(self, distance_m: float, payload_kg: float) -> float:
        """Drawn energy for one loaded trip over ``distance_m``."""
        assert_positive("distance_m", distance_m)
        if payload_kg < 0:
            raise ConfigurationError("payload mass must be >= 0")
        if payload_kg > self.payload_mass_kg:
            raise ConfigurationError(
                f"{self.name} carries at most {self.payload_mass_kg} kg, "
                f"asked for {payload_kg}"
            )
        moved = payload_kg + self.overhead_mass_kg
        dissipated = self.rolling_resistance * moved * GRAVITY * distance_m
        return dissipated / self.efficiency


# A person pushing a loaded server trolley: ~1.4 m/s, 200 kg payload,
# effective mu ~0.05 (casters on raised floor), metabolic efficiency
# ~25%, plus the walker's own ~80 kg.  Each drive costs ~60 s to unrack
# at the source and seat at the destination, at ~150 W of above-basal
# metabolic output and technician wages.
HUMAN_PORTER = FrictionCarrier(
    name="human porter with trolley",
    speed_m_s=1.4,
    payload_mass_kg=200.0,
    overhead_mass_kg=110.0,  # 80 kg walker + 30 kg trolley
    rolling_resistance=0.05,
    efficiency=0.25,
    handling_time_s=300.0,
    handling_time_per_drive_s=60.0,
    sustained_power_w=150.0,
    labour_usd_per_hour=30.0,
)

# A Snowmobile-class semi-trailer: 25 m/s highway, 25 t payload, mu
# ~0.007 for truck tyres, ~40% diesel efficiency.  Drives are handled
# as pre-racked enclosures (forklifts), so per-drive time is small, but
# the tractor and trailer hotel loads draw ~5 kW throughout.
SNOWMOBILE_TRUCK = FrictionCarrier(
    name="Snowmobile-class truck",
    speed_m_s=25.0,
    payload_mass_kg=25_000.0,
    overhead_mass_kg=15_000.0,
    rolling_resistance=0.007,
    efficiency=0.40,
    handling_time_s=4 * 3600.0,
    handling_time_per_drive_s=5.0,
    sustained_power_w=5_000.0,
    labour_usd_per_hour=120.0,
)


@dataclass(frozen=True)
class SneakernetPlan:
    """A bulk move carried out by a friction carrier."""

    carrier: FrictionCarrier
    device: StorageDevice
    dataset_bytes: float
    distance_m: float
    drives: int
    trips: int
    time_s: float
    energy_j: float
    labour_cost_usd: float

    @property
    def efficiency_bytes_per_j(self) -> float:
        return self.dataset_bytes / self.energy_j

    @property
    def effective_bandwidth(self) -> float:
        return self.dataset_bytes / self.time_s


def plan_sneakernet(
    dataset_bytes: float,
    distance_m: float,
    carrier: FrictionCarrier = HUMAN_PORTER,
    device: StorageDevice = NIMBUS_EXADRIVE_100TB,
) -> SneakernetPlan:
    """Plan a friction-limited bulk move of ``dataset_bytes``.

    Drives are packed to the carrier's mass limit; trips serialise (one
    carrier).  Return trips are included — the carrier must come back
    for the next load, mirroring the DHL's cart-return accounting.
    """
    assert_positive("dataset_bytes", dataset_bytes)
    assert_positive("distance_m", distance_m)
    drives = ceil_div(dataset_bytes, device.capacity_bytes)
    drives_per_trip = max(1, int(carrier.payload_mass_kg / device.mass_kg))
    trips = ceil_div(drives, drives_per_trip)
    loaded_payload = min(drives, drives_per_trip) * device.mass_kg
    one_way = carrier.trip_time(distance_m)
    loaded_energy = carrier.trip_energy(distance_m, loaded_payload)
    empty_energy = carrier.trip_energy(distance_m, 0.0)
    # Each drive is handled twice: unracked at the source, seated at the
    # destination.  This, not friction, dominates hand-moving PB-scale
    # drive counts — the paper's "impractical without automation".
    drive_handling_s = 2.0 * drives * carrier.handling_time_per_drive_s
    total_time = 2 * trips * one_way + drive_handling_s
    friction_j = trips * (loaded_energy + empty_energy)
    sustained_j = carrier.sustained_power_w * total_time
    return SneakernetPlan(
        carrier=carrier,
        device=device,
        dataset_bytes=dataset_bytes,
        distance_m=distance_m,
        drives=drives,
        trips=trips,
        time_s=total_time,
        energy_j=friction_j + sustained_j,
        labour_cost_usd=total_time / 3600.0 * carrier.labour_usd_per_hour,
    )


def metabolic_equivalent_note(plan: SneakernetPlan) -> str:
    """Human-readable framing of a porter plan's energy in food terms."""
    kcal = plan.energy_j / 4184.0
    return (
        f"{plan.trips} round trips, {kcal:.0f} kcal of metabolic energy "
        f"(~{kcal / 700:.1f} working days of food at 700 kcal/day of "
        f"above-basal output)"
    )


def snowmobile_reference_time(dataset_bytes: float = 100e15) -> float:
    """AWS quotes 'over 100 PB in up to a few weeks'; the dominant cost
    is drive fill/drain, not driving.  We model fill at 1 Tbit/s of
    parallel ingest, the figure AWS advertised for Snowmobile."""
    assert_positive("dataset_bytes", dataset_bytes)
    fill_rate = 1e12 / 8
    return dataset_bytes / fill_rate


def breakeven_against_carrier(
    carrier: FrictionCarrier,
    device: StorageDevice,
    distance_m: float,
    dhl_energy_per_trip_j: float,
    dhl_bytes_per_trip: float,
) -> float:
    """Dataset size above which the DHL beats the carrier on energy.

    Both scale linearly with size, so the verdict is size-independent:
    returns +inf when the carrier is always more efficient (never the
    case for the defaults) and 0 when the DHL always wins.
    """
    assert_positive("dhl_energy_per_trip_j", dhl_energy_per_trip_j)
    assert_positive("dhl_bytes_per_trip", dhl_bytes_per_trip)
    plan = plan_sneakernet(dhl_bytes_per_trip, distance_m, carrier, device)
    dhl_j_per_byte = dhl_energy_per_trip_j / dhl_bytes_per_trip
    carrier_j_per_byte = plan.energy_j / dhl_bytes_per_trip
    if dhl_j_per_byte < carrier_j_per_byte:
        return 0.0
    return math.inf
