"""Module entry point: ``python -m repro <artefact>``."""

import sys

from .cli import main

sys.exit(main())
