"""Seeded training sets for the surrogate: DES fan-out, canonical bytes.

A training set is the cartesian product of scenario points and
workload seeds, each run through the real fleet DES.  The runs fan out
over :func:`repro.core.sweep.map_chunks`, and because every KPI is a
function of virtual time and the seed alone, the serial and process
engines produce byte-identical row lists — the property
:func:`training_set_fingerprint` turns into a checkable string and the
test suite pins.

Rows are plain dicts (picklable, JSON-able) carrying the encoded
features plus every :data:`repro.surrogate.model.TARGETS` KPI.
``launch_energy_mj`` follows the learn bench's unit convention
(megajoules) so surrogate tables read alongside the existing ones.
"""

from __future__ import annotations

import functools
import hashlib
import json

from ..core.sweep import map_chunks
from ..errors import ConfigurationError
from ..fleet.controlplane import FleetScenario, run_fleet
from .features import ScenarioPoint, encode, scenario_for_point

#: Default offered-load axis for training grids: below, at and above
#: the base scenario's demand, so load coefficients are identified.
DEFAULT_LOADS: tuple[float, ...] = (0.6, 1.0, 1.4)

#: Rounding applied to payload floats; 6 significant digits is the
#: repo-wide convention for committed virtual-time quantities.
_PAYLOAD_DIGITS = 6


def training_points(
    n_tracks_options: tuple[int, ...] = (1, 2, 3),
    cart_pool_options: tuple[int, ...] = (4, 6, 8),
    policies: tuple[str, ...] = ("fcfs", "edf"),
    cache_policies: tuple[str, ...] = ("none", "lru"),
    loads: tuple[float, ...] = DEFAULT_LOADS,
) -> tuple[ScenarioPoint, ...]:
    """The training grid, cheapest-first like the planner's candidates.

    Infeasible combinations (cart pool smaller than track count) are
    skipped, mirroring :func:`repro.fleet.capacity.candidate_scenarios`.
    """
    points = []
    for n_tracks in sorted(set(n_tracks_options)):
        for cart_pool in sorted(set(cart_pool_options)):
            if cart_pool < n_tracks:
                continue
            for policy in policies:
                for cache_policy in cache_policies:
                    for load in loads:
                        points.append(
                            ScenarioPoint(
                                n_tracks=n_tracks,
                                cart_pool=cart_pool,
                                policy=policy,
                                cache_policy=cache_policy,
                                offered_load=load,
                            )
                        )
    if not points:
        raise ConfigurationError("the training grid must not be empty")
    return tuple(points)


def _row_chunk(
    chunk: tuple[tuple[ScenarioPoint, int], ...],
    base: FleetScenario,
) -> tuple[dict, ...]:
    """``map_chunks`` worker: simulate a slice of (point, seed) pairs."""
    rows = []
    for point, seed in chunk:
        report = run_fleet(scenario_for_point(base, point, seed=seed))
        rows.append(
            {
                "point": point.label,
                "seed": seed,
                "features": encode(point),
                "p50_s": report.sla.overall.p50_s,
                "p95_s": report.sla.overall.p95_s,
                "p99_s": report.p99_s,
                "launch_energy_mj": report.launch_energy_j / 1e6,
                "deadline_miss_rate": report.deadline_miss_rate,
            }
        )
    return tuple(rows)


def build_training_set(
    base: FleetScenario,
    points: tuple[ScenarioPoint, ...],
    seeds: tuple[int, ...],
    engine: str = "serial",
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[dict]:
    """Simulate every (point, seed) pair; rows in grid-major order.

    The (point, seed) product is laid out point-major, so replicates of
    one configuration are adjacent; order is part of the byte-identity
    contract, not a convenience.
    """
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")
    pairs = tuple((point, seed) for point in points for seed in seeds)
    rows = map_chunks(
        functools.partial(_row_chunk, base=base),
        pairs,
        engine=engine,
        workers=workers,
        chunk_size=chunk_size,
    )
    return list(rows)


def _rounded(value: float) -> float:
    return round(float(value), _PAYLOAD_DIGITS)


def training_set_payload(rows: list[dict]) -> list[dict]:
    """Canonical JSON-able view of the rows (floats rounded, keys sorted)."""
    payload = []
    for row in rows:
        payload.append(
            {
                "point": row["point"],
                "seed": row["seed"],
                "features": [_rounded(f) for f in row["features"]],
                "p50_s": _rounded(row["p50_s"]),
                "p95_s": _rounded(row["p95_s"]),
                "p99_s": _rounded(row["p99_s"]),
                "launch_energy_mj": _rounded(row["launch_energy_mj"]),
                "deadline_miss_rate": _rounded(row["deadline_miss_rate"]),
            }
        )
    return payload


def render_training_set(rows: list[dict]) -> str:
    """The canonical byte form: sorted keys, two-space indent, newline."""
    return json.dumps(
        training_set_payload(rows), indent=2, sort_keys=True
    ) + "\n"


def training_set_fingerprint(rows: list[dict]) -> str:
    """sha256 of the canonical byte form; equal iff the bytes are equal."""
    return hashlib.sha256(
        render_training_set(rows).encode("utf-8")
    ).hexdigest()


__all__ = [
    "DEFAULT_LOADS",
    "build_training_set",
    "render_training_set",
    "training_points",
    "training_set_fingerprint",
    "training_set_payload",
]
