"""Learned fast-path for the fleet simulator (paper §V/§VI sweeps).

``repro.surrogate`` fits a dependency-light quantile-regression model
of the fleet DES — configuration in, KPI quantiles out — and uses it
to prune capacity sweeps: score every candidate deployment with the
model, simulate only the ones that might be feasible.  Training sets
are seeded DES fan-outs with byte-identical serial==process rows, and
models carry sha256 fingerprints, so "same data, same model" is a
string comparison.  See ``docs/surrogates.md`` for the fit and the
pruning-margin maths.
"""

from .data import (
    build_training_set,
    training_points,
    training_set_fingerprint,
)
from .features import FEATURE_NAMES, ScenarioPoint, encode, scenario_for_point
from .model import TARGETS, FitConfig, QuantileModel, fit
from .planner import (
    PruningMargin,
    SurrogatePlan,
    candidate_points,
    plan_capacity_surrogate,
)

__all__ = [
    "FEATURE_NAMES",
    "FitConfig",
    "PruningMargin",
    "QuantileModel",
    "ScenarioPoint",
    "SurrogatePlan",
    "TARGETS",
    "build_training_set",
    "candidate_points",
    "encode",
    "fit",
    "plan_capacity_surrogate",
    "scenario_for_point",
    "training_points",
    "training_set_fingerprint",
]
