"""Surrogate benchmarking: the ``repro bench --mode surrogate`` gate.

Builds the pinned training set (serial *and* process, byte-compared),
fits the quantile surrogate, validates its median predictions against
held-out seeds the training never saw, and races the surrogate-guided
planner against the exhaustive sweep on the pinned gate space.  The
payload lands in ``BENCH_surrogate.json`` with the gate's invariants
as booleans:

* ``plan_matches_exhaustive`` — the headline correctness claim: the
  pruned planner returns the *same* ``best`` deployment as simulating
  all 36 candidates;
* ``des_evaluations_reduced_5x`` — the headline performance claim:
  the pruned planner needs at most a fifth of the DES runs (the gate
  measures the actual ratio; wall-clock is reported informationally
  because it is machine-dependent, DES counts are not);
* ``train_serial_process_identical`` / ``fit_fingerprint_stable`` —
  training rows are byte-identical across engines and the model fitted
  from either set fingerprints identically;
* ``validation_p99_within_bound`` / ``validation_energy_within_bound``
  — median predictions stay within the pinned relative-error bounds
  against seed-median DES truth on the held-out validation seeds;
* ``margin_covers_validation_error`` — the planner's pruning band is
  at least as wide as the worst validated p99 error, the premise of
  the plan-identity argument in :mod:`repro.surrogate.planner`;
* ``monotone_p99_predictions`` — more tracks or more carts never
  predicts a worse p99 anywhere on the gate grid;
* ``validation_seeds_disjoint`` — the held-out seeds really are
  held out.

Every gated number is virtual-time output of a seeded deterministic
pipeline (the fit is elementwise numpy + ``np.sum`` only), so fresh
runs must match the committed baseline to float tolerance on any
machine.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..fleet.capacity import CandidateEvaluation, CapacityPlan, SlaRequirement, plan_capacity
from ..fleet.controlplane import FleetScenario, default_scenario, run_fleet
from .data import (
    build_training_set,
    training_points,
    training_set_fingerprint,
)
from .features import ScenarioPoint, scenario_for_point
from .model import FitConfig, QuantileModel, fit
from .planner import (
    PruningMargin,
    SurrogatePlan,
    candidate_points,
    plan_capacity_surrogate,
)

SCHEMA = "repro-bench-surrogate/1"

DEFAULT_SEED = 0
DEFAULT_HORIZON_S = 900.0

#: Seeds the training fan-out replicates each grid point over.  Eight
#: replications matter: per-seed KPIs at this horizon swing by up to
#: ~2x (the Poisson job count itself varies), so the seed-median the
#: quantile fit estimates needs this many samples to be stable.
TRAIN_SEEDS: tuple[int, ...] = (11, 12, 13, 14, 15, 16, 17, 18)

#: Held-out seeds for validation truth; disjoint from TRAIN_SEEDS by
#: construction and asserted by the gate.
VALIDATION_SEEDS: tuple[int, ...] = (101, 102, 103, 104, 105, 106, 107, 108)

#: The SLA the gate space is planned against.  150 s p99 puts the
#: feasibility frontier strictly inside the grid: every single-track
#: candidate misses it, two tracks with an LRU cache meet it.
GATE_REQUIREMENT = SlaRequirement(max_p99_s=150.0, max_miss_rate=0.05)

#: Pinned error bounds for median predictions vs seed-median DES truth
#: on the validation seeds, with ~50% headroom over the observed
#: errors (p99 mean 0.17 / max 0.36; energy aggregate 0.16 / mean
#: 0.31) so float noise cannot flip the gate, yet tight enough that a
#: regressed fit or a broken feature encoding fails.  p99 is gated
#: per-point; launch energy is gated on the demand-weighted aggregate
#: (sum of absolute errors over sum of truths) plus the per-point
#: mean, because cached deployments launch so rarely that a couple of
#: discrete cart launches double the denominator of a per-point
#: relative error.
P99_MAX_REL_ERROR_BOUND = 0.55
P99_MEAN_REL_ERROR_BOUND = 0.30
ENERGY_AGG_REL_ERROR_BOUND = 0.30
ENERGY_MEAN_REL_ERROR_BOUND = 0.45

#: The planner's pruning band for the gate: wider than the pinned p99
#: error bound, so ``margin_covers_validation_error`` holds by design.
GATE_MARGIN = PruningMargin(p99_rel=0.60, miss_abs=0.10)

#: The reduction factor the gate demands.
MIN_DES_REDUCTION = 5.0


def bench_base_scenario(seed: int = DEFAULT_SEED,
                        horizon_s: float = DEFAULT_HORIZON_S) -> FleetScenario:
    """The base fleet the training grid and the planners both sweep."""
    return default_scenario(seed=seed, horizon_s=horizon_s)


@dataclass(frozen=True)
class ValidationError:
    """Prediction-vs-truth errors of one target over the gate grid.

    ``aggregate_rel_error`` is demand-weighted: the sum of absolute
    errors over the sum of truths, which a few near-zero denominators
    cannot dominate the way a per-point relative error can.
    """

    mean_rel_error: float
    max_rel_error: float
    aggregate_rel_error: float


@dataclass(frozen=True)
class SurrogateBenchReport:
    """One full train + validate + plan pass with its gate evidence."""

    seed: int
    horizon_s: float
    training_rows: int
    train_fingerprint_serial: str
    train_fingerprint_process: str
    model_fingerprint_serial: str
    model_fingerprint_process: str
    model: QuantileModel
    p99_error: ValidationError
    energy_error: ValidationError
    miss_abs_error_max: float
    monotone_p99: bool
    exhaustive: CapacityPlan
    surrogate: SurrogatePlan
    train_wall_s: float
    fit_wall_s: float
    exhaustive_wall_s: float
    surrogate_wall_s: float

    @property
    def invariants(self) -> dict[str, bool]:
        best_exhaustive = self.exhaustive.best
        best_surrogate = self.surrogate.best
        return {
            "plan_matches_exhaustive": (
                best_exhaustive is not None
                and best_surrogate == best_exhaustive
            ),
            "des_evaluations_reduced_5x": (
                self.surrogate.reduction >= MIN_DES_REDUCTION
            ),
            "train_serial_process_identical": (
                bool(self.train_fingerprint_serial)
                and self.train_fingerprint_serial
                == self.train_fingerprint_process
            ),
            "fit_fingerprint_stable": (
                bool(self.model_fingerprint_serial)
                and self.model_fingerprint_serial
                == self.model_fingerprint_process
            ),
            "validation_p99_within_bound": (
                self.p99_error.max_rel_error <= P99_MAX_REL_ERROR_BOUND
                and self.p99_error.mean_rel_error <= P99_MEAN_REL_ERROR_BOUND
            ),
            "validation_energy_within_bound": (
                self.energy_error.aggregate_rel_error
                <= ENERGY_AGG_REL_ERROR_BOUND
                and self.energy_error.mean_rel_error
                <= ENERGY_MEAN_REL_ERROR_BOUND
            ),
            "margin_covers_validation_error": (
                GATE_MARGIN.p99_rel >= self.p99_error.max_rel_error
            ),
            "monotone_p99_predictions": self.monotone_p99,
            "validation_seeds_disjoint": not (
                set(TRAIN_SEEDS) & set(VALIDATION_SEEDS)
            ),
        }


def _seed_median(values: list[float]) -> float:
    return float(np.median(np.asarray(values, dtype=np.float64)))


def validation_errors(
    model: QuantileModel,
    base: FleetScenario,
    points: tuple[ScenarioPoint, ...],
    seeds: tuple[int, ...] = VALIDATION_SEEDS,
) -> tuple[ValidationError, ValidationError, float]:
    """(p99 error, energy error, max miss abs error) on held-out seeds.

    Truth for each grid point is the *seed-median* KPI over the
    validation replications — the stable quantity a median-quantile
    surrogate estimates; single runs at this horizon carry up to ~2x
    of pure seed noise, which would measure the simulator's variance,
    not the model's accuracy.
    """
    p99_abs, p99_true = [], []
    energy_abs, energy_true = [], []
    miss_errors = []
    for point in points:
        reports = [
            run_fleet(scenario_for_point(base, point, seed=seed))
            for seed in seeds
        ]
        true_p99 = _seed_median([r.p99_s for r in reports])
        true_energy = _seed_median(
            [r.launch_energy_j / 1e6 for r in reports]
        )
        true_miss = _seed_median([r.deadline_miss_rate for r in reports])
        predicted = model.predict(point)
        p99_abs.append(abs(predicted["p99_s"] - true_p99))
        p99_true.append(true_p99)
        energy_abs.append(abs(predicted["launch_energy_mj"] - true_energy))
        energy_true.append(true_energy)
        miss_errors.append(
            abs(predicted["deadline_miss_rate"] - true_miss)
        )

    def _error(abs_errors: list[float], truths: list[float]) -> ValidationError:
        rel = np.asarray(abs_errors) / np.asarray(truths)
        return ValidationError(
            mean_rel_error=float(np.mean(rel)),
            max_rel_error=float(np.max(rel)),
            aggregate_rel_error=float(
                np.sum(np.asarray(abs_errors)) / np.sum(np.asarray(truths))
            ),
        )

    return (
        _error(p99_abs, p99_true),
        _error(energy_abs, energy_true),
        float(np.max(np.asarray(miss_errors))),
    )


def monotone_p99_on_grid(
    model: QuantileModel,
    points: tuple[ScenarioPoint, ...],
) -> bool:
    """More tracks or more carts never predicts a worse p99.

    Checks every pair of grid points that differ only in ``n_tracks``
    or only in ``cart_pool``: the larger deployment's predicted p99
    must not exceed the smaller one's (tiny float slack for the
    exp/log round-trip).
    """
    predictions = {
        point: model.predict(point)["p99_s"] for point in points
    }
    for a in points:
        for b in points:
            same_axis_tracks = (
                a.cart_pool == b.cart_pool
                and a.policy == b.policy
                and a.cache_policy == b.cache_policy
                and a.offered_load == b.offered_load
                and a.n_tracks < b.n_tracks
            )
            same_axis_carts = (
                a.n_tracks == b.n_tracks
                and a.policy == b.policy
                and a.cache_policy == b.cache_policy
                and a.offered_load == b.offered_load
                and a.cart_pool < b.cart_pool
            )
            if same_axis_tracks or same_axis_carts:
                if predictions[b] > predictions[a] * (1.0 + 1e-9):
                    return False
    return True


def run_surrogate_bench(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    engine: str = "serial",
    check_process_parity: bool = True,
    fit_config: FitConfig | None = None,
) -> SurrogateBenchReport:
    """Train, validate, and race the planners on the pinned gate space.

    ``engine`` picks the fan-out for the *main* training build; the
    parity probe always builds the training set with both engines and
    fits a model from each (skippable with
    ``check_process_parity=False`` for quick local iterations, which
    marks the parity invariants false rather than silently passing).
    """
    base = bench_base_scenario(seed=seed, horizon_s=horizon_s)
    points = training_points()
    started = time.perf_counter()
    rows = build_training_set(base, points, TRAIN_SEEDS, engine=engine)
    train_wall_s = time.perf_counter() - started
    fingerprint_serial = training_set_fingerprint(rows)
    started = time.perf_counter()
    model = fit(rows, config=fit_config,
                training_fingerprint=fingerprint_serial)
    fit_wall_s = time.perf_counter() - started
    if check_process_parity:
        process_rows = build_training_set(
            base, points, TRAIN_SEEDS, engine="process", workers=2
        )
        fingerprint_process = training_set_fingerprint(process_rows)
        model_process = fit(process_rows, config=fit_config,
                            training_fingerprint=fingerprint_process)
        model_fingerprint_process = model_process.fingerprint()
    else:
        fingerprint_process = ""
        model_fingerprint_process = ""
    gate_points = candidate_points()
    p99_error, energy_error, miss_abs_max = validation_errors(
        model, base, gate_points
    )
    started = time.perf_counter()
    exhaustive = plan_capacity(
        GATE_REQUIREMENT, base, cache_options=("none", "lru")
    )
    exhaustive_wall_s = time.perf_counter() - started
    started = time.perf_counter()
    surrogate = plan_capacity_surrogate(
        GATE_REQUIREMENT, base, model, margin=GATE_MARGIN
    )
    surrogate_wall_s = time.perf_counter() - started
    return SurrogateBenchReport(
        seed=seed,
        horizon_s=horizon_s,
        training_rows=len(rows),
        train_fingerprint_serial=fingerprint_serial,
        train_fingerprint_process=fingerprint_process,
        model_fingerprint_serial=model.fingerprint(),
        model_fingerprint_process=model_fingerprint_process,
        model=model,
        p99_error=p99_error,
        energy_error=energy_error,
        miss_abs_error_max=miss_abs_max,
        monotone_p99=monotone_p99_on_grid(model, gate_points),
        exhaustive=exhaustive,
        surrogate=surrogate,
        train_wall_s=train_wall_s,
        fit_wall_s=fit_wall_s,
        exhaustive_wall_s=exhaustive_wall_s,
        surrogate_wall_s=surrogate_wall_s,
    )


def _evaluation_payload(evaluation: CandidateEvaluation) -> dict[str, object]:
    return {
        "n_tracks": evaluation.n_tracks,
        "cart_pool": evaluation.cart_pool,
        "policy": evaluation.policy,
        "cache_policy": evaluation.cache_policy,
        "p99_s": round(evaluation.p99_s, 6),
        "deadline_miss_rate": round(evaluation.deadline_miss_rate, 6),
        "launch_energy_mj": round(evaluation.launch_energy_j / 1e6, 6),
        "feasible": evaluation.feasible,
    }


def report_payload(bench: SurrogateBenchReport) -> dict[str, object]:
    """The JSON-serialisable form (``BENCH_surrogate.json``)."""
    from ..analysis.perf import environment_info

    surrogate = bench.surrogate
    exhaustive = bench.exhaustive
    return {
        "schema": SCHEMA,
        "seed": bench.seed,
        "horizon_s": bench.horizon_s,
        "requirement": {
            "max_p99_s": GATE_REQUIREMENT.max_p99_s,
            "max_miss_rate": GATE_REQUIREMENT.max_miss_rate,
        },
        "training": {
            "rows": bench.training_rows,
            "seeds": list(TRAIN_SEEDS),
            "grid_points": bench.training_rows // len(TRAIN_SEEDS),
        },
        "validation": {
            "seeds": list(VALIDATION_SEEDS),
            "p99_mean_rel_error": round(bench.p99_error.mean_rel_error, 6),
            "p99_max_rel_error": round(bench.p99_error.max_rel_error, 6),
            "p99_aggregate_rel_error": round(
                bench.p99_error.aggregate_rel_error, 6
            ),
            "energy_mean_rel_error": round(
                bench.energy_error.mean_rel_error, 6
            ),
            "energy_max_rel_error": round(
                bench.energy_error.max_rel_error, 6
            ),
            "energy_aggregate_rel_error": round(
                bench.energy_error.aggregate_rel_error, 6
            ),
            "miss_max_abs_error": round(bench.miss_abs_error_max, 6),
            "bounds": {
                "p99_mean": P99_MEAN_REL_ERROR_BOUND,
                "p99_max": P99_MAX_REL_ERROR_BOUND,
                "energy_aggregate": ENERGY_AGG_REL_ERROR_BOUND,
                "energy_mean": ENERGY_MEAN_REL_ERROR_BOUND,
            },
        },
        "margin": {
            "p99_rel": GATE_MARGIN.p99_rel,
            "miss_abs": GATE_MARGIN.miss_abs,
        },
        "fingerprints": {
            "training_serial": bench.train_fingerprint_serial,
            "training_process": bench.train_fingerprint_process,
            "model_serial": bench.model_fingerprint_serial,
            "model_process": bench.model_fingerprint_process,
        },
        "exhaustive": {
            "des_evaluations": len(exhaustive.evaluations),
            "best": _evaluation_payload(exhaustive.best)
            if exhaustive.best
            else None,
        },
        "surrogate": {
            "grid_size": surrogate.grid_size,
            "des_evaluations": surrogate.des_evaluations,
            "pruned": surrogate.pruned,
            "reduction": round(surrogate.reduction, 6),
            "best": _evaluation_payload(surrogate.best)
            if surrogate.best
            else None,
        },
        "invariants": bench.invariants,
        "wall_informational": {
            "train_s": round(bench.train_wall_s, 3),
            "fit_s": round(bench.fit_wall_s, 3),
            "exhaustive_plan_s": round(bench.exhaustive_wall_s, 3),
            "surrogate_plan_s": round(bench.surrogate_wall_s, 3),
            "plan_speedup": round(
                bench.exhaustive_wall_s
                / max(1e-9, bench.surrogate_wall_s),
                3,
            ),
        },
        "environment": environment_info(),
    }


def write_report(bench: SurrogateBenchReport, path: str) -> str:
    """Write ``BENCH_surrogate.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed surrogate baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _compare_section(
    label: str,
    fresh: Mapping[str, object],
    base: Mapping[str, object],
    rel_tol: float,
    problems: list[str],
) -> None:
    for key, base_value in base.items():
        if key.endswith("_informational") or key == "wall_informational":
            continue
        fresh_value = fresh.get(key)
        if isinstance(base_value, Mapping):
            _compare_section(
                f"{label}.{key}", dict(fresh_value or {}), base_value,
                rel_tol, problems,
            )
        elif isinstance(base_value, bool) or not isinstance(
            base_value, (int, float)
        ):
            if fresh_value != base_value:
                problems.append(
                    f"{label}.{key}: {fresh_value!r} != baseline "
                    f"{base_value!r}"
                )
        elif fresh_value is None or not math.isclose(
            float(fresh_value), float(base_value), rel_tol=rel_tol,
            abs_tol=rel_tol,
        ):
            problems.append(
                f"{label}.{key}: {fresh_value} drifted from baseline "
                f"{base_value}"
            )


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    Training rows, fits and plans are all seeded deterministic
    virtual-time computations, so every gated number — including the
    sha256 fingerprint strings — must match the committed baseline to
    float-noise tolerance on any machine.  Invariants must hold in
    both payloads; wall-clock timings are informational only.
    """
    problems: list[str] = []
    for source, values in (("fresh run", payload.get("invariants", {})),
                           ("baseline", baseline.get("invariants", {}))):
        for name, value in dict(values).items():
            if not value:
                problems.append(f"invariant failed in {source}: {name}")
    for section in ("requirement", "training", "validation", "margin",
                    "fingerprints", "exhaustive", "surrogate"):
        _compare_section(
            section,
            dict(payload.get(section, {})),
            dict(baseline.get(section, {})),
            rel_tol,
            problems,
        )
    return problems


__all__ = [
    "DEFAULT_HORIZON_S",
    "DEFAULT_SEED",
    "ENERGY_AGG_REL_ERROR_BOUND",
    "ENERGY_MEAN_REL_ERROR_BOUND",
    "GATE_MARGIN",
    "GATE_REQUIREMENT",
    "MIN_DES_REDUCTION",
    "P99_MAX_REL_ERROR_BOUND",
    "P99_MEAN_REL_ERROR_BOUND",
    "SCHEMA",
    "SurrogateBenchReport",
    "TRAIN_SEEDS",
    "VALIDATION_SEEDS",
    "ValidationError",
    "bench_base_scenario",
    "compare_to_baseline",
    "load_baseline",
    "monotone_p99_on_grid",
    "report_payload",
    "run_surrogate_bench",
    "validation_errors",
    "write_report",
]
