"""Surrogate-guided capacity planning: predict everything, simulate little.

The exhaustive planner (:func:`repro.fleet.capacity.plan_capacity`)
runs the full DES for every candidate deployment.  This module scores
every candidate with the fitted surrogate first and sends only the
survivors to the simulator:

1. every candidate gets a *median* prediction for the SLA KPIs (and a
   pessimistic ``max(upper-quantile, median)`` one for reporting);
2. a candidate is **pruned** — never simulated — only when its median
   prediction misses the SLA by more than the pessimism margin band:
   ``pred_p99 > max_p99 * (1 + p99_rel)`` or
   ``pred_miss > max_miss + miss_abs``;
3. the unpruned candidates are confirmed in the real DES in
   increasing-cost order, stopping at the first feasible one.

Why this returns the *same* plan as the exhaustive sweep: the
exhaustive best is the first feasible candidate in cost order.  Every
cheaper candidate is DES-infeasible, so pruning it cannot change the
answer; and as long as the band is at least as wide as the surrogate's
validated relative error, a truly feasible candidate's median
prediction cannot overshoot the SLA by more than the band — so the
best is never pruned, gets confirmed, and wins in the same position.
Pruning on the *median* (not the pessimistic upper quantile) is
deliberate: pruning is the one decision that must never fire on a
feasible candidate, so it uses the central estimate plus an explicit
band, while the conservative upper-quantile estimate serves frontier
reports where over-estimating latency is the safe direction.  The
committed ``BENCH_surrogate.json`` gate pins exactly this identity,
together with the >= 5x reduction in DES evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..fleet.capacity import (
    CandidateEvaluation,
    CapacityPlan,
    SlaRequirement,
    evaluate_candidate,
)
from ..fleet.controlplane import FleetScenario
from .features import ScenarioPoint, scenario_for_point
from .model import QuantileModel


@dataclass(frozen=True)
class PruningMargin:
    """How far a prediction must miss the SLA before we skip the DES.

    ``p99_rel`` is a relative band on the p99 bound (0.5 means "only
    prune when predicted p99 exceeds the SLA by more than 50%");
    ``miss_abs`` is an absolute band on the miss-rate bound.  Set the
    bands at or above the surrogate's validated error and pruning is
    provably safe; wider bands trade DES evaluations for safety
    margin.
    """

    p99_rel: float = 0.5
    miss_abs: float = 0.10

    def __post_init__(self) -> None:
        if self.p99_rel < 0.0:
            raise ConfigurationError(
                f"p99_rel must be >= 0, got {self.p99_rel}"
            )
        if self.miss_abs < 0.0:
            raise ConfigurationError(
                f"miss_abs must be >= 0, got {self.miss_abs}"
            )


@dataclass(frozen=True)
class CandidatePrediction:
    """One candidate's surrogate verdict, before any simulation.

    ``predicted_*`` are the median estimates the pruning rule judges;
    ``pessimistic_p99_s`` is the conservative ``max(upper-quantile,
    median)`` estimate for frontier reports.
    """

    point: ScenarioPoint
    predicted_p99_s: float
    predicted_miss_rate: float
    predicted_launch_energy_mj: float
    pessimistic_p99_s: float
    pruned: bool


@dataclass(frozen=True)
class SurrogatePlan:
    """Outcome of a surrogate-guided capacity sweep."""

    requirement: SlaRequirement
    margin: PruningMargin
    predictions: tuple[CandidatePrediction, ...]
    evaluations: tuple[CandidateEvaluation, ...]
    """DES-confirmed candidates, in the order they were simulated."""
    best: CandidateEvaluation | None
    grid_size: int
    des_evaluations: int
    pruned: int

    @property
    def reduction(self) -> float:
        """Grid size over DES evaluations — the speed-up the gate pins."""
        return self.grid_size / max(1, self.des_evaluations)

    def as_capacity_plan(self) -> CapacityPlan:
        """The confirmed subset viewed as an ordinary capacity plan."""
        return CapacityPlan(
            requirement=self.requirement,
            evaluations=self.evaluations,
            best=self.best,
        )


def candidate_points(
    n_tracks_options: tuple[int, ...] = (1, 2, 3),
    cart_pool_options: tuple[int, ...] = (4, 6, 8),
    policies: tuple[str, ...] = ("fcfs", "edf"),
    cache_policies: tuple[str, ...] = ("none", "lru"),
    offered_load: float = 1.0,
) -> tuple[ScenarioPoint, ...]:
    """The candidate grid as scenario points, in increasing-cost order.

    Mirrors :func:`repro.fleet.capacity.candidate_scenarios` exactly —
    tracks, then carts, then policy, then cache — so "first feasible"
    means the same candidate in both planners.
    """
    points = []
    for n_tracks in sorted(set(n_tracks_options)):
        for cart_pool in sorted(set(cart_pool_options)):
            if cart_pool < n_tracks:
                continue
            for policy in policies:
                for cache_policy in cache_policies:
                    points.append(
                        ScenarioPoint(
                            n_tracks=n_tracks,
                            cart_pool=cart_pool,
                            policy=policy,
                            cache_policy=cache_policy,
                            offered_load=offered_load,
                        )
                    )
    if not points:
        raise ConfigurationError("the candidate grid must not be empty")
    return tuple(points)


def _prune(
    prediction: dict[str, float],
    requirement: SlaRequirement,
    margin: PruningMargin,
) -> bool:
    """True when the prediction misses the SLA by more than the band."""
    return (
        prediction["p99_s"]
        > requirement.max_p99_s * (1.0 + margin.p99_rel)
        or prediction["deadline_miss_rate"]
        > requirement.max_miss_rate + margin.miss_abs
    )


def plan_capacity_surrogate(
    requirement: SlaRequirement,
    base: FleetScenario,
    model: QuantileModel,
    n_tracks_options: tuple[int, ...] = (1, 2, 3),
    cart_pool_options: tuple[int, ...] = (4, 6, 8),
    policies: tuple[str, ...] = ("fcfs", "edf"),
    cache_policies: tuple[str, ...] = ("none", "lru"),
    offered_load: float = 1.0,
    margin: PruningMargin | None = None,
    stop_at_first_feasible: bool = True,
) -> SurrogatePlan:
    """Score the grid with the surrogate, confirm survivors in the DES.

    With ``stop_at_first_feasible`` (the default) confirmation stops at
    the cheapest DES-feasible candidate — the exhaustive planner's
    ``best`` — so DES cost is the unpruned prefix, not the grid.  Turn
    it off to confirm the whole unpruned frontier (for frontier plots).
    """
    margin = margin or PruningMargin()
    points = candidate_points(
        n_tracks_options, cart_pool_options, policies, cache_policies,
        offered_load,
    )
    predictions = []
    survivors = []
    for point in points:
        predicted = model.predict(point)
        pessimistic = model.predict_pessimistic(point)
        pruned = _prune(predicted, requirement, margin)
        predictions.append(
            CandidatePrediction(
                point=point,
                predicted_p99_s=predicted["p99_s"],
                predicted_miss_rate=predicted["deadline_miss_rate"],
                predicted_launch_energy_mj=predicted["launch_energy_mj"],
                pessimistic_p99_s=pessimistic["p99_s"],
                pruned=pruned,
            )
        )
        if not pruned:
            survivors.append(point)
    evaluations = []
    best = None
    for point in survivors:
        evaluation = evaluate_candidate(
            scenario_for_point(base, point), requirement
        )
        evaluations.append(evaluation)
        if evaluation.feasible and best is None:
            best = evaluation
            if stop_at_first_feasible:
                break
    return SurrogatePlan(
        requirement=requirement,
        margin=margin,
        predictions=tuple(predictions),
        evaluations=tuple(evaluations),
        best=best,
        grid_size=len(points),
        des_evaluations=len(evaluations),
        pruned=len(points) - len(survivors),
    )


__all__ = [
    "CandidatePrediction",
    "PruningMargin",
    "SurrogatePlan",
    "candidate_points",
    "plan_capacity_surrogate",
]
