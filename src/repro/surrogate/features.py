"""Scenario encoding: one fleet deployment point, one feature vector.

The surrogate predicts simulator KPIs from *configuration*, so the
configuration needs a fixed, order-stable numeric encoding.  A
:class:`ScenarioPoint` names the five swept axes — track count, cart
pool, dispatch policy, cache policy and offered load — and
:func:`encode` maps it to the feature vector the quantile-regression
model consumes.

The capacity features are deliberately *inverse*: ``1/tracks``,
``1/carts`` and the utilisation ratios ``load/tracks`` (with its
square and cube — queueing delay grows superlinearly near saturation)
and ``load/carts`` all shrink as the deployment grows, and the fit
constrains their latency/miss-rate coefficients to be non-negative
(see :func:`repro.surrogate.model.fit`).  Together that makes every
latency prediction monotone — adding a track or a cart can never
*raise* the predicted p99 — which the test suite pins on the planner's
grid.  Policies and cache policies are categorical and enter as
drop-first one-hots (``fcfs`` and ``none`` are the baselines absorbed
by the intercept); positive KPIs are fitted in log space, where the
measured cache/policy effects are close to constant offsets
(multiplicative ratios), so one-hot intercept shifts capture them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..fleet.cache import CacheConfig
from ..fleet.controlplane import POLICIES, FleetScenario
from ..units import assert_positive
from ..workloads.generator import TrafficClass

#: Cache policies the encoder recognises; ``"none"`` means no rack cache.
CACHE_LABELS: tuple[str, ...] = ("none", "lru", "lfu", "ttl")

#: Feature names, in encoding order (the model's coefficient order).
FEATURE_NAMES: tuple[str, ...] = (
    "inv_tracks",
    "inv_carts",
    "load",
    "rho_track",
    "rho_track_sq",
    "rho_track_cube",
    "rho_cart",
    "policy_sjf",
    "policy_edf",
    "cache_lru",
    "cache_lfu",
    "cache_ttl",
)

#: Indices of the capacity-inverse features whose latency/miss-rate
#: coefficients the fit constrains to be >= 0 (monotonicity guarantee).
MONOTONE_FEATURE_INDICES: tuple[int, ...] = tuple(
    FEATURE_NAMES.index(name)
    for name in (
        "inv_tracks",
        "inv_carts",
        "rho_track",
        "rho_track_sq",
        "rho_track_cube",
        "rho_cart",
    )
)


@dataclass(frozen=True)
class ScenarioPoint:
    """One point of the surrogate's five-axis configuration space."""

    n_tracks: int
    cart_pool: int
    policy: str
    cache_policy: str
    offered_load: float = 1.0
    """Multiplier on every traffic class's arrival rate; 1.0 is the
    base scenario's demand."""

    def __post_init__(self) -> None:
        if self.n_tracks < 1:
            raise ConfigurationError(
                f"n_tracks must be >= 1, got {self.n_tracks}"
            )
        if self.cart_pool < self.n_tracks:
            raise ConfigurationError(
                f"cart_pool ({self.cart_pool}) must be >= n_tracks "
                f"({self.n_tracks})"
            )
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.cache_policy not in CACHE_LABELS:
            raise ConfigurationError(
                f"cache_policy must be one of {CACHE_LABELS}, "
                f"got {self.cache_policy!r}"
            )
        assert_positive("offered_load", self.offered_load)

    @property
    def label(self) -> str:
        return (
            f"t{self.n_tracks}c{self.cart_pool}:{self.policy}"
            f"+{self.cache_policy}@{self.offered_load:g}"
        )


def point_from_scenario(
    scenario: FleetScenario, offered_load: float = 1.0
) -> ScenarioPoint:
    """The :class:`ScenarioPoint` a concrete fleet scenario occupies."""
    return ScenarioPoint(
        n_tracks=scenario.spec.n_tracks,
        cart_pool=scenario.spec.cart_pool,
        policy=scenario.policy,
        cache_policy=scenario.cache_label,
        offered_load=offered_load,
    )


def scaled_classes(
    classes: tuple[TrafficClass, ...], offered_load: float
) -> tuple[TrafficClass, ...]:
    """The traffic mix with every arrival rate scaled by ``offered_load``."""
    if offered_load == 1.0:
        return classes
    return tuple(
        replace(entry, rate_per_hour=entry.rate_per_hour * offered_load)
        for entry in classes
    )


def scenario_for_point(
    base: FleetScenario, point: ScenarioPoint, seed: int | None = None
) -> FleetScenario:
    """Instantiate ``point`` over ``base``'s catalog, mix and horizon.

    Everything not named by the point — dataset catalog, SLA targets,
    admission control, horizon — comes from ``base`` unchanged, so a
    training set and the planner's candidate grid agree on what one
    configuration *means*.  ``seed`` optionally replaces the base
    scenario's workload seed (training replicates over seeds).
    """
    cache = (
        None
        if point.cache_policy == "none"
        else CacheConfig(policy=point.cache_policy)
    )
    return replace(
        base,
        spec=replace(
            base.spec, n_tracks=point.n_tracks, cart_pool=point.cart_pool
        ),
        policy=point.policy,
        cache=cache,
        classes=scaled_classes(base.classes, point.offered_load),
        seed=base.seed if seed is None else seed,
    )


def encode(point: ScenarioPoint) -> tuple[float, ...]:
    """The feature vector of one point, in :data:`FEATURE_NAMES` order."""
    tracks = float(point.n_tracks)
    carts = float(point.cart_pool)
    load = float(point.offered_load)
    rho_track = load / tracks
    return (
        1.0 / tracks,
        1.0 / carts,
        load,
        rho_track,
        rho_track * rho_track,
        rho_track * rho_track * rho_track,
        load / carts,
        1.0 if point.policy == "sjf" else 0.0,
        1.0 if point.policy == "edf" else 0.0,
        1.0 if point.cache_policy == "lru" else 0.0,
        1.0 if point.cache_policy == "lfu" else 0.0,
        1.0 if point.cache_policy == "ttl" else 0.0,
    )


def encode_many(points: tuple[ScenarioPoint, ...]) -> list[tuple[float, ...]]:
    """Feature vectors for a tuple of points, in input order."""
    return [encode(point) for point in points]


__all__ = [
    "CACHE_LABELS",
    "FEATURE_NAMES",
    "MONOTONE_FEATURE_INDICES",
    "ScenarioPoint",
    "encode",
    "encode_many",
    "point_from_scenario",
    "scaled_classes",
    "scenario_for_point",
]
