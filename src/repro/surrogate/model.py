"""Numpy-only quantile regression over scenario features.

The surrogate is a bank of linear pinball-loss (quantile) regressors —
one per ``(target, quantile)`` pair — fitted with projected subgradient
descent.  Three deliberate constraints shape the implementation:

* **Byte-stable floats.**  Gates compare sha256 fingerprints of the
  learned coefficients across machines and across serial vs process
  training fan-out, so the fit uses only elementwise numpy arithmetic
  and :func:`numpy.sum` (pairwise, deterministic) — never ``np.dot`` /
  ``@``, whose BLAS reductions vary across builds (the same rule the
  learn module follows for its committed gates).
* **Monotone capacity response.**  Latency and miss-rate targets clamp
  the coefficients of the capacity-inverse features (``1/tracks``,
  ``1/carts``, ``load/tracks``, ``load/carts``) to be non-negative on
  every descent step.  Since those features shrink when a deployment
  grows, predicted p99/miss can never get *worse* when tracks or carts
  are added — the sanity property the planner's pruning rests on.
* **Multiplicative error for positive KPIs.**  Latencies and energy
  are fitted in log space.  Quantiles commute with monotone transforms,
  so the log-space quantile *is* the quantile of the log, and a pinned
  absolute log-space error bound translates to a multiplicative bound
  on the KPI itself.  Miss rate (which can be exactly zero) stays in
  linear space.

Pessimistic prediction takes ``max(upper-quantile fit, median fit)``
per target, which both sidesteps quantile crossing (independently
fitted quantile lines may cross) and is the conservative side the
pruning margin needs.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .features import FEATURE_NAMES, MONOTONE_FEATURE_INDICES, ScenarioPoint, encode

#: KPI targets the surrogate predicts, in canonical order.
TARGETS: tuple[str, ...] = (
    "p50_s",
    "p95_s",
    "p99_s",
    "launch_energy_mj",
    "deadline_miss_rate",
)

#: Targets fitted in log space (strictly positive KPIs).
LOG_TARGETS: tuple[str, ...] = ("p50_s", "p95_s", "p99_s", "launch_energy_mj")

#: Targets whose capacity-inverse coefficients are clamped >= 0.
MONOTONE_TARGETS: tuple[str, ...] = (
    "p50_s",
    "p95_s",
    "p99_s",
    "deadline_miss_rate",
)

#: Floor applied before taking logs, so a degenerate zero KPI cannot
#: produce -inf; well below any latency/energy the fleet DES emits.
LOG_FLOOR = 1e-9


@dataclass(frozen=True)
class FitConfig:
    """Hyperparameters of the projected subgradient pinball fit.

    ``smoothing`` is the half-width of the quadratic zone that rounds
    the pinball kink (convolution smoothing); it buys a usable
    gradient near the optimum without materially moving the fitted
    quantile at the scales the KPIs live on.
    """

    quantiles: tuple[float, ...] = (0.5, 0.9)
    iterations: int = 1500
    learning_rate: float = 0.15
    smoothing: float = 0.02

    def __post_init__(self) -> None:
        if not self.quantiles:
            raise ConfigurationError("quantiles must be non-empty")
        for tau in self.quantiles:
            if not 0.0 < tau < 1.0:
                raise ConfigurationError(
                    f"quantiles must lie in (0, 1), got {tau}"
                )
        if 0.5 not in self.quantiles:
            raise ConfigurationError(
                "quantiles must include the median (0.5); pessimistic "
                "prediction is max(upper quantile, median)"
            )
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be >= 1, got {self.iterations}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )
        if self.smoothing <= 0:
            raise ConfigurationError(
                f"smoothing must be > 0, got {self.smoothing}"
            )

    @property
    def upper_quantile(self) -> float:
        return max(self.quantiles)


def pinball_loss(residuals: np.ndarray, tau: float) -> float:
    """Mean pinball loss rho_tau(u) = u * (tau - 1[u < 0]) of residuals."""
    u = np.asarray(residuals, dtype=np.float64)
    return float(
        np.sum(u * (tau - (u < 0.0).astype(np.float64))) / max(1, u.size)
    )


def _affine_predict(coefs: np.ndarray, intercept: float, x: np.ndarray) -> np.ndarray:
    """Row-wise affine map without BLAS: elementwise multiply + np.sum."""
    return np.sum(x * coefs, axis=1) + intercept


def _empirical_quantile(y: np.ndarray, tau: float) -> float:
    """Linear-interpolation quantile (the repo's percentile rule)."""
    ordered = np.sort(y)
    if ordered.size == 1:
        return float(ordered[0])
    position = tau * (ordered.size - 1)
    low = int(math.floor(position))
    high = min(low + 1, ordered.size - 1)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def _fit_quantile(
    x: np.ndarray,
    y: np.ndarray,
    tau: float,
    config: FitConfig,
    clamp: tuple[int, ...],
) -> tuple[np.ndarray, float]:
    """Projected gradient descent on the smoothed pinball loss.

    ``x`` arrives standardised (zero mean, unit scale per column), so a
    single learning rate serves every feature.  ``clamp`` names
    coefficient indices projected onto [0, inf) after every step.  The
    intercept starts at the empirical ``tau``-quantile of ``y`` — the
    optimum of the featureless model — the step size decays as
    1/sqrt(t), and iterates are averaged over the final quarter.
    """
    n, k = x.shape
    coefs = np.zeros(k, dtype=np.float64)
    intercept = _empirical_quantile(y, tau)
    eps = config.smoothing
    tail_start = (3 * config.iterations) // 4
    tail_coefs = np.zeros(k, dtype=np.float64)
    tail_intercept = 0.0
    tail_count = 0
    for step in range(config.iterations):
        residual = y - _affine_predict(coefs, intercept, x)
        # Smoothed indicator of residual < 0; exact outside +/- eps.
        below = np.clip(0.5 - residual / (2.0 * eps), 0.0, 1.0)
        # d rho / d pred = (1 - tau) where pred > y, else -tau.
        grad_pred = (below - tau) / n
        grad_coefs = np.sum(x * grad_pred[:, None], axis=0)
        grad_intercept = float(np.sum(grad_pred))
        rate = config.learning_rate / math.sqrt(1.0 + step)
        coefs = coefs - rate * grad_coefs
        intercept -= rate * grad_intercept
        if clamp:
            clamped = coefs[list(clamp)]
            coefs[list(clamp)] = np.maximum(clamped, 0.0)
        if step >= tail_start:
            tail_coefs = tail_coefs + coefs
            tail_intercept += intercept
            tail_count += 1
    if tail_count:
        coefs = tail_coefs / tail_count
        intercept = tail_intercept / tail_count
        if clamp:
            coefs[list(clamp)] = np.maximum(coefs[list(clamp)], 0.0)
    return coefs, intercept


@dataclass(frozen=True)
class QuantileModel:
    """A fitted surrogate: per-(target, quantile) affine predictors.

    ``coefficients[target][tau]`` is the tuple of feature coefficients
    (in :data:`FEATURE_NAMES` order) and ``intercepts[target][tau]``
    the matching intercept, both in fit space (log space for
    :data:`LOG_TARGETS`).  Frozen and built from plain tuples/floats so
    models pickle cleanly and fingerprint canonically.
    """

    config: FitConfig
    coefficients: dict[str, dict[float, tuple[float, ...]]]
    intercepts: dict[str, dict[float, float]]
    feature_means: tuple[float, ...]
    feature_scales: tuple[float, ...]
    training_fingerprint: str = ""
    training_rows: int = 0
    feature_names: tuple[str, ...] = field(default=FEATURE_NAMES)

    def _standardise(self, features: np.ndarray) -> np.ndarray:
        means = np.asarray(self.feature_means, dtype=np.float64)
        scales = np.asarray(self.feature_scales, dtype=np.float64)
        return (features - means) / scales

    def _predict_fit_space(
        self, target: str, tau: float, features: np.ndarray
    ) -> np.ndarray:
        coefs = np.asarray(self.coefficients[target][tau], dtype=np.float64)
        intercept = self.intercepts[target][tau]
        return _affine_predict(coefs, intercept, self._standardise(features))

    def predict(
        self, point: ScenarioPoint, tau: float | None = None
    ) -> dict[str, float]:
        """KPI predictions for one point at quantile ``tau`` (default median)."""
        tau = 0.5 if tau is None else tau
        if tau not in self.config.quantiles:
            raise ConfigurationError(
                f"tau {tau} was not fitted; available: {self.config.quantiles}"
            )
        features = np.asarray([encode(point)], dtype=np.float64)
        out = {}
        for target in TARGETS:
            raw = float(self._predict_fit_space(target, tau, features)[0])
            out[target] = self._from_fit_space(target, raw)
        return out

    def predict_pessimistic(self, point: ScenarioPoint) -> dict[str, float]:
        """Conservative predictions: max(upper quantile, median) per target.

        Independently fitted quantile lines can cross; taking the max
        restores ordering and errs on the side the planner's pruning
        needs (never under-predict latency or miss rate).
        """
        features = np.asarray([encode(point)], dtype=np.float64)
        upper = self.config.upper_quantile
        out = {}
        for target in TARGETS:
            raw = max(
                float(self._predict_fit_space(target, upper, features)[0]),
                float(self._predict_fit_space(target, 0.5, features)[0]),
            )
            out[target] = self._from_fit_space(target, raw)
        return out

    @staticmethod
    def _from_fit_space(target: str, value: float) -> float:
        if target in LOG_TARGETS:
            return math.exp(value)
        return max(0.0, value)

    def fingerprint(self) -> str:
        """sha256 over a canonical byte encoding of the fitted parameters."""
        digest = hashlib.sha256()
        digest.update(b"repro-surrogate/1")
        digest.update(self.training_fingerprint.encode("utf-8"))
        digest.update(str(self.training_rows).encode("utf-8"))
        for name in self.feature_names:
            digest.update(name.encode("utf-8"))
        for value in (*self.feature_means, *self.feature_scales):
            digest.update(struct.pack("<d", value))
        for tau in self.config.quantiles:
            digest.update(struct.pack("<d", tau))
        digest.update(struct.pack("<idd", self.config.iterations,
                                  self.config.learning_rate,
                                  self.config.smoothing))
        for target in TARGETS:
            digest.update(target.encode("utf-8"))
            for tau in self.config.quantiles:
                digest.update(struct.pack("<d", tau))
                for coef in self.coefficients[target][tau]:
                    digest.update(struct.pack("<d", coef))
                digest.update(struct.pack("<d", self.intercepts[target][tau]))
        return digest.hexdigest()


def _to_fit_space(target: str, values: np.ndarray) -> np.ndarray:
    if target in LOG_TARGETS:
        return np.log(np.maximum(values, LOG_FLOOR))
    return values


def fit(
    rows: list[dict],
    config: FitConfig | None = None,
    training_fingerprint: str = "",
) -> QuantileModel:
    """Fit the quantile bank on training rows from ``data.build_training_set``.

    Each row carries ``features`` (tuple, :data:`FEATURE_NAMES` order)
    and one value per :data:`TARGETS` entry.  Rows are consumed in
    input order and the descent is deterministic, so the same training
    set always yields the same fingerprint.
    """
    if not rows:
        raise ConfigurationError("cannot fit a surrogate on zero rows")
    config = config or FitConfig()
    x = np.asarray([row["features"] for row in rows], dtype=np.float64)
    if x.shape[1] != len(FEATURE_NAMES):
        raise ConfigurationError(
            f"expected {len(FEATURE_NAMES)} features per row, "
            f"got {x.shape[1]}"
        )
    n = x.shape[0]
    means = np.sum(x, axis=0) / n
    centred = x - means
    scales = np.sqrt(np.sum(centred * centred, axis=0) / n)
    scales = np.where(scales > 0.0, scales, 1.0)  # constant columns
    standardised = centred / scales
    coefficients: dict[str, dict[float, tuple[float, ...]]] = {}
    intercepts: dict[str, dict[float, float]] = {}
    for target in TARGETS:
        y = _to_fit_space(
            target,
            np.asarray([row[target] for row in rows], dtype=np.float64),
        )
        clamp = (
            MONOTONE_FEATURE_INDICES if target in MONOTONE_TARGETS else ()
        )
        coefficients[target] = {}
        intercepts[target] = {}
        for tau in config.quantiles:
            coefs, intercept = _fit_quantile(
                standardised, y, tau, config, clamp
            )
            coefficients[target][tau] = tuple(float(c) for c in coefs)
            intercepts[target][tau] = float(intercept)
    return QuantileModel(
        config=config,
        coefficients=coefficients,
        intercepts=intercepts,
        feature_means=tuple(float(m) for m in means),
        feature_scales=tuple(float(s) for s in scales),
        training_fingerprint=training_fingerprint,
        training_rows=len(rows),
    )


__all__ = [
    "FitConfig",
    "LOG_TARGETS",
    "MONOTONE_TARGETS",
    "QuantileModel",
    "TARGETS",
    "fit",
    "pinball_loss",
]
