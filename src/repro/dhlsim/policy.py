"""Shuttle retry/timeout policy and optical-network failover policy.

A production DHL cannot treat a breached tube or a stalled cart as
fatal: shuttles retry with exponential backoff, every operation carries
a deadline, and transfers stuck behind a long outage degrade gracefully
onto the optical network the DHL was built to relieve.  This module
holds the two policy dataclasses; :mod:`repro.dhlsim.scheduler`
executes them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..network.transfer import OpticalLink, ParallelLinks


@dataclass(frozen=True)
class ShuttlePolicy:
    """Retry/timeout behaviour for one shuttle operation.

    ``max_attempts`` bounds physical launch attempts; between failed
    attempts the scheduler sleeps ``base_backoff_s * backoff_factor**n``
    (capped at ``max_backoff_s``) plus deterministic jitter drawn from
    the system's seeded RNG, so two runs with the same seed produce
    identical schedules.  ``deadline_s``, when set, races the whole
    operation against a timeout (an ``AnyOf`` in the DES); losing the
    race raises :class:`~repro.errors.ShuttleTimeoutError`.
    ``give_up_outage_s``, when set, abandons retrying as soon as the
    track's current outage is at least that old, raising
    :class:`~repro.errors.DegradedServiceError` so callers can fail
    over.  The default policy (one attempt, no deadline) reproduces the
    pre-reliability scheduler exactly.
    """

    max_attempts: int = 1
    base_backoff_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 60.0
    jitter_frac: float = 0.0
    deadline_s: float | None = None
    give_up_outage_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0:
            raise ConfigurationError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_backoff_s < 0:
            raise ConfigurationError(
                f"max_backoff_s must be >= 0, got {self.max_backoff_s}"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1), got {self.jitter_frac}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.give_up_outage_s is not None and self.give_up_outage_s < 0:
            raise ConfigurationError(
                f"give_up_outage_s must be >= 0, got {self.give_up_outage_s}"
            )

    def backoff_delay(self, failed_attempts: int, rng: np.random.Generator) -> float:
        """Backoff before the next attempt after ``failed_attempts`` failures.

        Jitter is a symmetric fraction of the base delay drawn from
        ``rng``; with a seeded generator the whole retry schedule is
        deterministic.
        """
        if failed_attempts < 1:
            raise ConfigurationError(
                f"failed_attempts must be >= 1, got {failed_attempts}"
            )
        delay = min(
            self.base_backoff_s * self.backoff_factor ** (failed_attempts - 1),
            self.max_backoff_s,
        )
        if self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * (2.0 * float(rng.random()) - 1.0)
        return delay


#: One attempt, no deadline: the original fail-fast scheduler behaviour.
NO_RETRY = ShuttlePolicy()

#: A sensible production default: a few patient attempts under a deadline.
DEFAULT_RETRY = ShuttlePolicy(
    max_attempts=8,
    base_backoff_s=1.0,
    backoff_factor=2.0,
    max_backoff_s=30.0,
    jitter_frac=0.25,
)


@dataclass(frozen=True)
class FailoverPolicy:
    """Fall back to the optical network when the DHL is degraded.

    ``link`` is the optical path (single or parallel links) carrying the
    re-routed bytes; its transfer time and route energy are charged to
    the campaign and recorded under the ``network_failover`` telemetry
    energy category, making the penalty of losing the hyperloop
    first-class data.
    """

    link: OpticalLink | ParallelLinks

    def transfer_time(self, n_bytes: float) -> float:
        return self.link.transfer_time(n_bytes)

    def transfer_energy(self, n_bytes: float) -> float:
        return self.link.transfer_energy(n_bytes)
