"""Operational DHL simulator: carts, track, docks, library, scheduler, API.

Where :mod:`repro.core` predicts campaign time and energy in closed form,
this package *simulates* the moving parts — tube occupancy, dock slots,
pipelined launches, SSD failures — on the discrete-event engine, so the
two can be cross-validated and schedule-level questions (pipelining,
dual-rail, multi-stop contention) can be answered.
"""

from .api import DhlApi, TransferReport
from .cart import Cart, CartState
from .docking import DockingStation, RackEndpoint
from .faults import FaultInjector, expected_failures_per_campaign
from .library_node import LibraryNode
from .metrics import EnergySample, Telemetry, telemetry_view
from .multistop import (
    ContentionReport,
    MultiStopExperiment,
    RequestOutcome,
    TransferRequest,
    speed_contention_sweep,
)
from .policy import DEFAULT_RETRY, NO_RETRY, FailoverPolicy, ShuttlePolicy
from .reliability import (
    CartStallInjector,
    ChaosInjectors,
    ChaosSpec,
    DockOutageInjector,
    LimDegradationInjector,
    RepairableInjector,
    TrackOutageInjector,
    install_chaos,
)
from .scheduler import DhlSystem, ShuttleAttempt
from .timeline import (
    CART_STATE_EVENT,
    Span,
    TimelineEvent,
    TimelineRecorder,
    render_gantt,
    timeline_events,
)
from .track import Endpoint, Track, TrackHealth, build_tracks, default_endpoints, pick_track

__all__ = [
    "CART_STATE_EVENT",
    "Cart",
    "CartState",
    "CartStallInjector",
    "ChaosInjectors",
    "ChaosSpec",
    "ContentionReport",
    "DEFAULT_RETRY",
    "DhlApi",
    "DhlSystem",
    "DockOutageInjector",
    "DockingStation",
    "Endpoint",
    "EnergySample",
    "FailoverPolicy",
    "FaultInjector",
    "LibraryNode",
    "LimDegradationInjector",
    "MultiStopExperiment",
    "NO_RETRY",
    "RackEndpoint",
    "RepairableInjector",
    "RequestOutcome",
    "ShuttleAttempt",
    "ShuttlePolicy",
    "Span",
    "Telemetry",
    "TimelineEvent",
    "TimelineRecorder",
    "Track",
    "TrackHealth",
    "TrackOutageInjector",
    "render_gantt",
    "TransferReport",
    "TransferRequest",
    "build_tracks",
    "default_endpoints",
    "expected_failures_per_campaign",
    "install_chaos",
    "pick_track",
    "speed_contention_sweep",
    "telemetry_view",
    "timeline_events",
]
