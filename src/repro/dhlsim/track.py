"""Rail and endpoint geometry for the operational simulator.

A :class:`Track` is one vacuum tube with endpoints at known positions
(metres from the library).  Only one cart may occupy a tube at a time
(single-rail design); a dual-rail layout instantiates two tubes, one per
direction.  Docking briefly blocks the tube past the docking endpoint —
"it is not possible to shuttle another cart past the cart being docked"
(Section III-B5) — which we conservatively model as holding the tube for
the dock duration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.params import DhlParams
from ..core.physics import launch_energy, motion_profile
from ..errors import SchedulingError
from ..sim import Environment, Resource
from ..units import assert_non_negative


@dataclass(frozen=True)
class Endpoint:
    """A named stop on the rail at a fixed position (metres)."""

    endpoint_id: int
    name: str
    position_m: float
    is_library: bool = False

    def __post_init__(self) -> None:
        assert_non_negative("position_m", self.position_m)


def default_endpoints(params: DhlParams, n_racks: int = 1) -> tuple[Endpoint, ...]:
    """The paper's primary layout: a library and rack endpoints.

    With one rack the rack sits at ``track_length``; multi-stop layouts
    (Section VI) space racks evenly along the final half of the rail.
    """
    if n_racks <= 0:
        raise SchedulingError(f"need at least one rack endpoint, got {n_racks}")
    endpoints = [Endpoint(0, "library", 0.0, is_library=True)]
    if n_racks == 1:
        endpoints.append(Endpoint(1, "rack-0", params.track_length))
    else:
        start = params.track_length / 2.0
        step = (params.track_length - start) / (n_racks - 1)
        for rack in range(n_racks):
            endpoints.append(Endpoint(rack + 1, f"rack-{rack}", start + rack * step))
    return tuple(endpoints)


@dataclass
class TrackHealth:
    """Mutable fault state of one track: tube availability, LIM health.

    Fault injectors (``repro.dhlsim.reliability``) flip these flags; the
    scheduler consults them before and after claiming the tube.  A
    breach makes the tube unavailable until repair; a degraded LIM
    leaves the tube open but stretches travel time by ``lim_slowdown``.
    """

    tube_available: bool = True
    down_since: float = 0.0
    lim_slowdown: float = 1.0
    outages: int = 0
    downtime_s: float = 0.0
    listeners: list = field(default_factory=list)
    """Callbacks ``(available: bool, now: float)`` fired on every
    down/up transition — how the fleet's lane health monitors observe
    fault-to-repair windows without polling the DES clock."""

    def mark_down(self, now: float) -> None:
        if not self.tube_available:
            raise SchedulingError("track is already down")
        self.tube_available = False
        self.down_since = now
        self.outages += 1
        for listener in list(self.listeners):
            listener(False, now)

    def mark_up(self, now: float) -> None:
        if self.tube_available:
            raise SchedulingError("track is not down")
        self.tube_available = True
        self.downtime_s += now - self.down_since
        for listener in list(self.listeners):
            listener(True, now)

    def outage_age(self, now: float) -> float:
        """Seconds the current outage has lasted (0 when the track is up)."""
        return 0.0 if self.tube_available else now - self.down_since

    def degrade_lim(self, slowdown: float) -> None:
        if slowdown < 1.0:
            raise SchedulingError(f"lim slowdown must be >= 1, got {slowdown}")
        self.lim_slowdown = slowdown

    def restore_lim(self) -> None:
        self.lim_slowdown = 1.0


@dataclass
class Track:
    """A single vacuum tube connecting all endpoints, with occupancy control."""

    env: Environment
    params: DhlParams
    endpoints: tuple[Endpoint, ...]
    name: str = "rail-0"
    tube: Resource = field(init=False)
    health: TrackHealth = field(init=False)
    traversals: int = 0
    metres_travelled: float = 0.0

    def __post_init__(self) -> None:
        if len(self.endpoints) < 2:
            raise SchedulingError("a track needs at least two endpoints")
        ids = [endpoint.endpoint_id for endpoint in self.endpoints]
        if len(set(ids)) != len(ids):
            raise SchedulingError(f"duplicate endpoint ids on track {self.name}: {ids}")
        self.tube = Resource(self.env, capacity=1)
        self.health = TrackHealth()
        self._by_id = {endpoint.endpoint_id: endpoint for endpoint in self.endpoints}

    def endpoint(self, endpoint_id: int) -> Endpoint:
        try:
            return self._by_id[endpoint_id]
        except KeyError:
            known = sorted(self._by_id)
            raise SchedulingError(
                f"unknown endpoint {endpoint_id} on track {self.name}; known: {known}"
            ) from None

    def distance(self, src: int, dst: int) -> float:
        """Rail distance between two endpoints, metres."""
        if src == dst:
            raise SchedulingError(f"src and dst endpoints are both {src}")
        return abs(self.endpoint(src).position_m - self.endpoint(dst).position_m)

    def travel_time(self, src: int, dst: int, profile: str = "paper") -> float:
        """Rail time (no dock handling) between two endpoints."""
        distance = self.distance(src, dst)
        hop_params = self.params.with_(track_length=distance)
        return motion_profile(hop_params, profile).motion_time

    def hop_energy(self, src: int, dst: int) -> float:
        """Launch energy for one hop (speed-dominated; distance matters
        only when the hop is shorter than the LIM ramp)."""
        distance = self.distance(src, dst)
        return launch_energy(self.params.with_(track_length=distance))

    def record_traversal(self, src: int, dst: int) -> None:
        self.traversals += 1
        self.metres_travelled += self.distance(src, dst)


def build_tracks(
    env: Environment,
    params: DhlParams,
    n_racks: int = 1,
) -> list[Track]:
    """Instantiate the rail(s): one tube, or two when ``params.dual_rail``."""
    endpoints = default_endpoints(params, n_racks)
    if not params.dual_rail:
        return [Track(env, params, endpoints, name="rail-0")]
    return [
        Track(env, params, endpoints, name="rail-outbound"),
        Track(env, params, endpoints, name="rail-inbound"),
    ]


def pick_track(tracks: list[Track], src: int, dst: int) -> Track:
    """Choose the tube for a hop: outbound tube for library->rack moves,
    inbound for the return direction; the single tube otherwise."""
    if not tracks:
        raise SchedulingError("no tracks configured")
    if len(tracks) == 1:
        return tracks[0]
    outbound = tracks[0]
    inbound = tracks[1]
    src_pos = outbound.endpoint(src).position_m
    dst_pos = outbound.endpoint(dst).position_m
    return outbound if dst_pos > src_pos else inbound
