"""Docking stations: where carts couple to compute racks over PCIe.

Each rack endpoint owns several docking stations (Section III-B5): a cart
is lifted off the track into a station, its SSDs' PCIe connectors mate,
and the rack's nodes then read/write at local bandwidth.  Multiple
stations per endpoint enable pipelining — while one cart is being read,
the next can be shuttled in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..sim import Environment, Event, Resource
from ..storage.ssd_array import PCIE6_X64, PcieLink
from .cart import Cart, CartState


@dataclass
class DockingStation:
    """A single dock slot: holds at most one cart, connected over PCIe."""

    env: Environment
    station_id: int
    endpoint_id: int
    link: PcieLink = PCIE6_X64
    cart: Cart | None = None
    slot_claim: object | None = None
    """The rack slot grant held while a dispatched cart occupies this dock."""
    out_of_service: bool = False
    """Set by dock fault injectors; an OOS station accepts no carts."""
    busy: Resource = field(init=False)
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def __post_init__(self) -> None:
        # One I/O stream at a time per dock; the PCIe link is the bottleneck.
        self.busy = Resource(self.env, capacity=1)

    @property
    def occupied(self) -> bool:
        return self.cart is not None

    def attach(self, cart: Cart) -> None:
        if self.cart is not None:
            raise SchedulingError(
                f"dock {self.station_id}@{self.endpoint_id} already holds "
                f"cart {self.cart.cart_id}"
            )
        cart.transition(CartState.DOCKED)
        cart.location = self.endpoint_id
        self.cart = cart

    def detach(self) -> Cart:
        if self.cart is None:
            raise SchedulingError(
                f"dock {self.station_id}@{self.endpoint_id} is empty"
            )
        cart = self.cart
        self.cart = None
        cart.transition(CartState.READY)
        return cart

    # -- I/O processes ---------------------------------------------------------

    def read(self, n_bytes: float) -> Event:
        """Process: read ``n_bytes`` from the docked cart at PCIe/SSD speed."""
        return self.env.process(self._read(n_bytes))

    def _read(self, n_bytes: float):
        cart = self._require_cart("read")
        if n_bytes < 0:
            raise SchedulingError(f"read size must be >= 0, got {n_bytes}")
        with self.busy.request() as claim:
            yield claim
            array = cart.array
            if cart.failed_drives:
                bandwidth = min(
                    array.surviving(cart.failed_drives).read_bw, self.link.bandwidth
                )
            else:
                bandwidth = array.effective_read_bw(self.link)
            yield self.env.timeout(n_bytes / bandwidth)
            self.bytes_read += n_bytes
        return n_bytes

    def write(self, n_bytes: float) -> Event:
        """Process: write ``n_bytes`` to the docked cart at PCIe/SSD speed."""
        return self.env.process(self._write(n_bytes))

    def _write(self, n_bytes: float):
        cart = self._require_cart("write")
        if n_bytes < 0:
            raise SchedulingError(f"write size must be >= 0, got {n_bytes}")
        if n_bytes > cart.array.usable_capacity_bytes:
            raise SchedulingError(
                f"write of {n_bytes:.3g} B exceeds cart capacity "
                f"{cart.array.usable_capacity_bytes:.3g} B"
            )
        with self.busy.request() as claim:
            yield claim
            bandwidth = cart.array.effective_write_bw(self.link)
            yield self.env.timeout(n_bytes / bandwidth)
            self.bytes_written += n_bytes
        return n_bytes

    def _require_cart(self, operation: str) -> Cart:
        if self.cart is None:
            raise SchedulingError(
                f"cannot {operation}: dock {self.station_id}@{self.endpoint_id} is empty"
            )
        return self.cart


@dataclass
class RackEndpoint:
    """A rack endpoint with several docking stations and a free-slot pool."""

    env: Environment
    endpoint_id: int
    n_stations: int = 2
    stations: list[DockingStation] = field(init=False)
    slots: Resource = field(init=False)
    stranded: list[Cart] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_stations <= 0:
            raise SchedulingError(f"need >= 1 docking station, got {self.n_stations}")
        self.stations = [
            DockingStation(self.env, station_id=index, endpoint_id=self.endpoint_id)
            for index in range(self.n_stations)
        ]
        self.slots = Resource(self.env, capacity=self.n_stations)
        self.stranded = []

    def free_station(self) -> DockingStation:
        """An unoccupied, in-service station; callers must hold a slot grant."""
        for station in self.stations:
            if not station.occupied and not station.out_of_service:
                return station
        raise SchedulingError(
            f"endpoint {self.endpoint_id}: slot accounting out of sync "
            "(grant held but no free station)"
        )

    def strand(self, cart: Cart) -> None:
        """Park a cart in the recovery bay when no dock slot is free.

        A returning cart whose shuttle failed after its slot was handed
        to the next dispatch waits here for an operator (or a later
        recovery process) instead of being silently lost.
        """
        if cart in self.stranded:
            raise SchedulingError(
                f"cart {cart.cart_id} is already stranded at endpoint "
                f"{self.endpoint_id}"
            )
        self.stranded.append(cart)

    def station_holding(self, cart: Cart) -> DockingStation:
        for station in self.stations:
            if station.cart is cart:
                return station
        raise SchedulingError(
            f"cart {cart.cart_id} is not docked at endpoint {self.endpoint_id}"
        )

    def find_docked(self, dataset: str, index: int) -> DockingStation:
        """The station whose cart holds a given shard."""
        for station in self.stations:
            if station.cart is not None and station.cart.holds(dataset, index):
                return station
        raise SchedulingError(
            f"no docked cart at endpoint {self.endpoint_id} holds "
            f"shard ({dataset!r}, {index})"
        )

    @property
    def docked_carts(self) -> list[Cart]:
        return [station.cart for station in self.stations if station.cart is not None]
