"""The DHL software API (paper Section III-D).

The paper specifies four commands, administered over the ordinary
network:

1. **Open** — the rack requests an SSD cart from the library; if present
   it is shuttled over and docked.
2. **Close** — the rack disconnects a cart; it shuttles back home.
3. **Read** — read data from a docked cart at local PCIe bandwidth.
4. **Write** — write data to a cart at a specific docking station.

On top of those, :meth:`DhlApi.bulk_transfer` orchestrates a whole
dataset move with pipelining: while one cart's data is being read, the
next is already in flight — the optimisation Section V-B sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DegradedServiceError, SchedulingError
from ..sim import Environment, Event, Store
from ..storage.datasets import Dataset
from .cart import Cart
from .docking import DockingStation
from .metrics import COUNT_PREFIX, ENERGY_PREFIX
from .scheduler import DhlSystem


@dataclass(frozen=True)
class TransferReport:
    """Outcome of a bulk transfer orchestrated through the API."""

    dataset: Dataset
    shards_moved: int
    bytes_delivered: float
    start_s: float
    end_s: float
    launches: int
    launch_energy_j: float

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def effective_bandwidth(self) -> float:
        if self.elapsed_s <= 0:
            raise SchedulingError("transfer completed in zero time")
        return self.bytes_delivered / self.elapsed_s


@dataclass
class DhlApi:
    """The four-command API bound to one simulated DHL system."""

    system: DhlSystem
    env: Environment = field(init=False)

    def __post_init__(self) -> None:
        self.env = self.system.env

    # -- the four commands ----------------------------------------------------

    def open(self, dataset: str, shard_index: int, endpoint_id: int) -> Event:
        """Process: fetch the cart holding a shard; returns its station."""
        return self.env.process(self._open(dataset, shard_index, endpoint_id))

    def _open(self, dataset: str, shard_index: int, endpoint_id: int):
        cart = self.system.library.cart_holding(dataset, shard_index)
        station = yield self.system.dispatch_to_rack(cart.cart_id, endpoint_id)
        return station

    def close(self, cart: Cart, endpoint_id: int) -> Event:
        """Process: disconnect a cart and shuttle it back to the library."""
        return self.system.return_to_library(cart, endpoint_id)

    def read(self, endpoint_id: int, dataset: str, shard_index: int,
             n_bytes: float | None = None) -> Event:
        """Process: read shard bytes from the docked cart holding it."""
        return self.env.process(self._read(endpoint_id, dataset, shard_index, n_bytes))

    def _read(self, endpoint_id: int, dataset: str, shard_index: int,
              n_bytes: float | None):
        station = self.system.station_for_shard(endpoint_id, dataset, shard_index)
        cart = station.cart
        assert cart is not None
        cart.check_integrity()  # surfaces in-flight SSD failures at access time
        shard = cart.shards[(dataset, shard_index)]
        amount = shard.size_bytes if n_bytes is None else min(n_bytes, shard.size_bytes)
        done = yield station.read(amount)
        return done

    def write(self, station: DockingStation, n_bytes: float) -> Event:
        """Process: write bytes to the cart at a specific docking station."""
        if station.cart is None:
            raise SchedulingError(
                f"write to empty dock {station.station_id}@{station.endpoint_id}"
            )
        return station.write(n_bytes)

    # -- orchestration -----------------------------------------------------------

    def bulk_transfer(self, dataset: Dataset, endpoint_id: int = 1,
                      read_payload: bool = True) -> Event:
        """Process: move a staged dataset to a rack, shard by shard.

        Pipelined: up to ``stations_per_rack`` carts are in flight or
        being read concurrently.  Each shard is Opened, optionally Read
        in full, then Closed.  Returns a :class:`TransferReport`.
        """
        return self.env.process(self._bulk_transfer(dataset, endpoint_id, read_payload))

    def _bulk_transfer(self, dataset: Dataset, endpoint_id: int, read_payload: bool):
        system = self.system
        tracer = system.tracer
        shard_keys = sorted(
            (shard_index for name, shard_index in self._library_shards(dataset.name)),
        )
        if not shard_keys:
            raise SchedulingError(
                f"dataset {dataset.name!r} is not staged in the library; "
                "call DhlSystem.load_dataset first"
            )
        start = self.env.now
        start_launches = system.total_launches
        start_energy = system.total_launch_energy
        delivered = Store(self.env)

        def shard_worker(shard_index: int):
            shard_track = f"shard-{shard_index}"
            while True:
                open_span = tracer.span("open", track=shard_track, shard=shard_index)
                try:
                    station = yield self.open(dataset.name, shard_index, endpoint_id)
                    open_span.end()
                    break
                except DegradedServiceError:
                    open_span.end(failed=True)
                    # Graceful degradation: the DHL gave up on this
                    # shard (outage past the policy threshold or retries
                    # exhausted).  With a failover policy the bytes
                    # re-route over the optical network, charging its
                    # time and route energy; without one the shard waits
                    # for the repair crew and tries again.
                    if system.failover is not None:
                        with tracer.span("failover", track=shard_track,
                                         shard=shard_index):
                            n_sent = yield self.env.process(
                                self._failover_transfer(dataset.name, shard_index)
                            )
                        yield delivered.put(n_sent)
                        return
                    tracer.instant("open.deferred", track=shard_track,
                                   shard=shard_index)
                    system.metrics.counter(COUNT_PREFIX + "open_deferrals").inc()
                    yield self.env.timeout(
                        max(system.shuttle_policy.max_backoff_s, 1.0)
                    )
            cart = station.cart
            if read_payload:
                with tracer.span("read", track=shard_track, shard=shard_index):
                    n_read = yield self.read(endpoint_id, dataset.name, shard_index)
            else:
                n_read = cart.shards[(dataset.name, shard_index)].size_bytes
            with tracer.span("close", track=shard_track, shard=shard_index):
                yield self.env.process(self._persistent_close(cart, endpoint_id))
            yield delivered.put(n_read)

        with tracer.span("bulk_transfer", track="api", dataset=dataset.name,
                         shards=len(shard_keys)):
            for shard_index in shard_keys:
                self.env.process(shard_worker(shard_index))

            total_bytes = 0.0
            for _ in shard_keys:
                total_bytes += yield delivered.get()

        return TransferReport(
            dataset=dataset,
            shards_moved=len(shard_keys),
            bytes_delivered=total_bytes,
            start_s=start,
            end_s=self.env.now,
            launches=system.total_launches - start_launches,
            launch_energy_j=system.total_launch_energy - start_energy,
        )

    def bulk_writeback(self, dataset: Dataset, endpoint_id: int = 1) -> Event:
        """Process: stream rack-resident data *into* the library.

        The backup direction (Section II-D2): empty carts shuttle to the
        rack, the rack Writes shard-sized chunks onto them at PCIe speed,
        and loaded carts Close back into cold storage.  Pipelined across
        the endpoint's docking stations like :meth:`bulk_transfer`.
        Returns a :class:`TransferReport`.
        """
        return self.env.process(self._bulk_writeback(dataset, endpoint_id))

    def _bulk_writeback(self, dataset: Dataset, endpoint_id: int):
        from ..storage.library import Shard, plan_placement

        system = self.system
        tracer = system.tracer
        plan = plan_placement(dataset, system.make_array())
        empty_carts = sum(
            1 for cart in system.library.carts.values() if not cart.shards
        )
        if empty_carts < plan.n_carts:
            raise SchedulingError(
                f"writeback of {dataset.name!r} needs {plan.n_carts} empty "
                f"carts but the library holds {empty_carts}; stage more "
                "with DhlSystem.add_empty_carts"
            )
        start = self.env.now
        start_launches = system.total_launches
        start_energy = system.total_launch_energy
        delivered = Store(self.env)

        def shard_worker(shard: Shard):
            shard_track = f"shard-{shard.index}"
            # Claim an empty cart and bring it to the rack.
            cart = system.library.idle_cart()
            cart.load_shard(shard)  # reserve content before dispatch
            while True:
                open_span = tracer.span("open", track=shard_track,
                                        shard=shard.index)
                try:
                    station = yield system.dispatch_to_rack(cart.cart_id, endpoint_id)
                    open_span.end()
                    break
                except DegradedServiceError:
                    open_span.end(failed=True)
                    if system.failover is not None:
                        # The cart was recovered into the library with
                        # the shard still reserved on it; undo that and
                        # ship the bytes over the optical network.
                        cart.unload_shard(shard.dataset, shard.index)
                        with tracer.span("failover", track=shard_track,
                                         shard=shard.index):
                            yield self.env.timeout(
                                system.failover.transfer_time(shard.size_bytes)
                            )
                        system.metrics.counter(COUNT_PREFIX + "failovers").inc()
                        system.metrics.counter(
                            ENERGY_PREFIX + "network_failover"
                        ).inc(system.failover.transfer_energy(shard.size_bytes))
                        yield delivered.put(shard.size_bytes)
                        return
                    tracer.instant("open.deferred", track=shard_track,
                                   shard=shard.index)
                    system.metrics.counter(COUNT_PREFIX + "open_deferrals").inc()
                    yield self.env.timeout(
                        max(system.shuttle_policy.max_backoff_s, 1.0)
                    )
            with tracer.span("write", track=shard_track, shard=shard.index):
                yield self.write(station, shard.size_bytes)
            with tracer.span("close", track=shard_track, shard=shard.index):
                yield self.env.process(
                    self._persistent_close(station.cart, endpoint_id)
                )
            yield delivered.put(shard.size_bytes)

        with tracer.span("bulk_writeback", track="api", dataset=dataset.name,
                         shards=plan.n_carts):
            for shard in plan:
                self.env.process(shard_worker(shard))

            total_bytes = 0.0
            for _ in plan.shards:
                total_bytes += yield delivered.get()

        return TransferReport(
            dataset=dataset,
            shards_moved=plan.n_carts,
            bytes_delivered=total_bytes,
            start_s=start,
            end_s=self.env.now,
            launches=system.total_launches - start_launches,
            launch_energy_j=system.total_launch_energy - start_energy,
        )

    def _persistent_close(self, cart: Cart, endpoint_id: int):
        """Process: Close a cart, waiting out track outages.

        Unlike Open — whose payload can fail over to the optical network
        — a Close moves the physical cart, which has exactly one way
        home.  When the retry policy gives up (outage past threshold or
        attempts exhausted) the cart stays parked at the rack and we try
        again after a beat, so campaigns drain cleanly once the track is
        repaired instead of stranding hardware.
        """
        while True:
            try:
                result = yield self.close(cart, endpoint_id)
                return result
            except DegradedServiceError:
                self.system.tracer.instant(
                    "return.deferred",
                    track=f"cart-{cart.cart_id}",
                    cart=cart.cart_id,
                )
                self.system.metrics.counter(
                    COUNT_PREFIX + "return_deferrals"
                ).inc()
                yield self.env.timeout(
                    max(self.system.shuttle_policy.max_backoff_s, 1.0)
                )

    def _failover_transfer(self, dataset: str, shard_index: int):
        """Process: push one library-resident shard over the optical network.

        Used when the DHL degrades: the shard's cart stays in the
        library and the bytes go over ``system.failover.link``, with the
        transfer time simulated and the route energy recorded under the
        ``network_failover`` category.
        """
        policy = self.system.failover
        if policy is None:
            raise SchedulingError("no failover policy configured on this system")
        cart = self.system.library.cart_holding(dataset, shard_index)
        size = cart.shards[(dataset, shard_index)].size_bytes
        # Optical-link occupancy: how many failover streams share the
        # fallback path at once (a gauge sampled into the trace).
        active = self.system.metrics.gauge("occupancy.optical_failover")
        active.add(1)
        self.system.tracer.counter("occupancy.optical_failover", active.value)
        try:
            yield self.env.timeout(policy.transfer_time(size))
        finally:
            active.add(-1)
            self.system.tracer.counter("occupancy.optical_failover", active.value)
        self.system.metrics.counter(COUNT_PREFIX + "failovers").inc()
        self.system.metrics.counter(
            ENERGY_PREFIX + "network_failover"
        ).inc(policy.transfer_energy(size))
        return size

    def _library_shards(self, dataset: str):
        for cart in self.system.library.carts.values():
            for (name, index) in cart.shards:
                if name == dataset:
                    yield (name, index)
