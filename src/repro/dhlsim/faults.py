"""Fault injection: in-flight SSD failures and RAID recovery (Section III-D).

The paper notes that "if an SSD fails in-flight, the endpoint's DHL API
will report the error, and RAID and backups can ameliorate the issue".
This module injects per-trip drive failures so tests and benches can
measure the cost of that recovery path.

The injector registers on :attr:`DhlSystem.pre_shuttle_hooks` rather
than monkey-patching ``_shuttle``: multiple injectors compose cleanly
(each rolls its own RNG) and :meth:`FaultInjector.detach` removes one
without disturbing the others — the old wrapping approach silently
double-wrapped the shuttle and could never be undone.  Track, dock and
cart-stall faults live in :mod:`repro.dhlsim.reliability`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, DataIntegrityError
from .cart import Cart
from .scheduler import DhlSystem, ShuttleAttempt


@dataclass
class FaultInjector:
    """Bernoulli per-drive, per-trip failure injection.

    ``per_drive_trip_failure_prob`` is the chance any single SSD fails
    during one shuttle (vibration, connector wear, induced currents).
    Deterministic under a fixed seed.
    """

    system: DhlSystem
    per_drive_trip_failure_prob: float
    seed: int = 0
    injected_failures: int = 0
    lost_carts: int = 0
    _rng: np.random.Generator = field(init=False)
    _attached: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.per_drive_trip_failure_prob <= 1.0:
            raise ConfigurationError(
                "per_drive_trip_failure_prob must be in [0, 1], got "
                f"{self.per_drive_trip_failure_prob}"
            )
        self._rng = np.random.default_rng(self.seed)
        self.system.pre_shuttle_hooks.append(self._on_shuttle)
        self._attached = True

    def detach(self) -> None:
        """Stop injecting; idempotent, leaves other hooks untouched.

        Safe even when the hook was already removed externally (a fuzzer
        clearing ``pre_shuttle_hooks`` wholesale, a test tearing the
        system down): a missing hook is treated as already detached
        rather than surfacing ``ValueError`` from ``list.remove``.
        """
        if self._attached:
            try:
                self.system.pre_shuttle_hooks.remove(self._on_shuttle)
            except ValueError:
                pass  # removed behind our back; detaching is still done
            self._attached = False

    def __enter__(self) -> "FaultInjector":
        """Context-manager form: ``with FaultInjector(...) as inj``.

        Guarantees the hook is detached on exit, so state machines and
        fuzzers cannot leak attached injectors across examples.
        """
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    @property
    def attached(self) -> bool:
        return self._attached

    def _on_shuttle(self, attempt: ShuttleAttempt) -> None:
        self.inject(attempt.cart)

    def inject(self, cart: Cart) -> int:
        """Roll failures for one trip; returns drives failed this trip."""
        n_drives = cart.array.count - cart.failed_drives
        if n_drives <= 0:
            return 0
        failures = int(
            self._rng.binomial(n_drives, self.per_drive_trip_failure_prob)
        )
        if failures:
            cart.fail_drive(failures)
            self.injected_failures += failures
            try:
                cart.check_integrity()
            except DataIntegrityError:
                self.lost_carts += 1
        return failures


def expected_failures_per_campaign(
    n_drives_per_cart: int,
    launches: int,
    per_drive_trip_failure_prob: float,
) -> float:
    """Closed-form expectation to validate the injector against."""
    if n_drives_per_cart <= 0 or launches < 0:
        raise ConfigurationError("drive and launch counts must be positive")
    if not 0.0 <= per_drive_trip_failure_prob <= 1.0:
        raise ConfigurationError("failure probability must be in [0, 1]")
    return n_drives_per_cart * launches * per_drive_trip_failure_prob
