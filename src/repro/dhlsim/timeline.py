"""Cart timelines: render what the operational simulator did.

The timeline is a *view over the trace*: :class:`DhlSystem` emits a
``cart.state`` instant into its tracer on every cart transition, and
:class:`TimelineRecorder` re-derives per-cart state intervals from that
log — there is no parallel record-keeping.  Attaching a recorder simply
makes sure the system's tracer is capturing instants.  The ASCII Gantt
renderer then makes pipelining visible: overlapping transit and
dock-read bars are the Section V-B optimisation at work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, SimulationError
from ..obs.tracer import TraceLevel, Tracer
from .cart import CartState
from .scheduler import DhlSystem

CART_STATE_EVENT = "cart.state"
"""Trace instant name carrying cart transitions (args: cart, state)."""


@dataclass(frozen=True)
class TimelineEvent:
    """One cart state transition."""

    time_s: float
    cart_id: int
    state: str


@dataclass(frozen=True)
class Span:
    """A rendered interval of one cart's life in one state."""

    cart_id: int
    state: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def timeline_events(tracer: Tracer) -> list[TimelineEvent]:
    """Cart transitions extracted from a tracer's instant log."""
    events = []
    for instant in tracer.instants:
        if instant.name != CART_STATE_EVENT:
            continue
        args = dict(instant.args)
        events.append(
            TimelineEvent(
                time_s=instant.time_s,
                cart_id=args["cart"],
                state=args["state"],
            )
        )
    return events


@dataclass
class TimelineRecorder:
    """A cart-timeline view over one system's trace.

    Attaching ensures the system's tracer captures instants (raising a
    disabled tracer to ``METRICS`` level); everything else is derived
    on demand from the trace log.
    """

    system: DhlSystem
    tracer: Tracer = field(init=False)

    def __post_init__(self) -> None:
        self.tracer = self.system.tracer
        self.tracer.enable(TraceLevel.METRICS)

    @property
    def events(self) -> list[TimelineEvent]:
        """Every recorded cart transition, in time order."""
        return timeline_events(self.tracer)

    def spans(self) -> list[Span]:
        """Consecutive event pairs per cart, as closed intervals."""
        events = self.events
        if not events:
            raise SimulationError("no events recorded; run a transfer first")
        by_cart: dict[int, list[TimelineEvent]] = {}
        for event in events:
            by_cart.setdefault(event.cart_id, []).append(event)
        end_time = self.system.env.now
        spans = []
        for cart_id, cart_events in by_cart.items():
            for current, following in zip(cart_events, cart_events[1:]):
                spans.append(
                    Span(
                        cart_id=cart_id,
                        state=current.state,
                        start_s=current.time_s,
                        end_s=following.time_s,
                    )
                )
            last = cart_events[-1]
            if end_time > last.time_s:
                spans.append(
                    Span(
                        cart_id=cart_id,
                        state=last.state,
                        start_s=last.time_s,
                        end_s=end_time,
                    )
                )
        return sorted(spans, key=lambda span: (span.cart_id, span.start_s))

    def concurrency(self, state: str) -> int:
        """Peak number of carts simultaneously in ``state`` — the direct
        measure of pipelining (docked concurrency > 1 means overlapped
        reads)."""
        if state not in CartState.ALL:
            raise ConfigurationError(f"unknown cart state {state!r}")
        boundaries = []
        for span in self.spans():
            if span.state == state and span.duration_s > 0:
                boundaries.append((span.start_s, 1))
                boundaries.append((span.end_s, -1))
        peak = current = 0
        for _, delta in sorted(boundaries, key=lambda item: (item[0], item[1])):
            current += delta
            peak = max(peak, current)
        return peak


_STATE_GLYPHS = {
    CartState.STORED: ".",
    CartState.READY: "r",
    CartState.IN_TRANSIT: ">",
    CartState.ARRIVED: "a",
    CartState.DOCKED: "#",
}


def render_gantt(recorder: TimelineRecorder, width: int = 72) -> str:
    """ASCII Gantt chart: one row per cart, glyphs by state.

    Legend: '.' stored, 'r' ready, '>' in transit, 'a' arrived,
    '#' docked (data accessible).
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    spans = recorder.spans()
    end_time = max(span.end_s for span in spans)
    if end_time <= 0:
        raise SimulationError("timeline has no duration")
    cart_ids = sorted({span.cart_id for span in spans})
    scale = width / end_time

    lines = [
        f"cart timeline, 0..{end_time:.1f} s "
        "('.' stored, 'r' ready, '>' transit, 'a' arrived, '#' docked)"
    ]
    for cart_id in cart_ids:
        row = [" "] * width
        for span in spans:
            if span.cart_id != cart_id:
                continue
            start = min(width - 1, int(span.start_s * scale))
            end = min(width, max(start + 1, int(span.end_s * scale)))
            glyph = _STATE_GLYPHS[span.state]
            for cell in range(start, end):
                row[cell] = glyph
        lines.append(f"cart {cart_id:>4d} |{''.join(row)}|")
    return "\n".join(lines)
