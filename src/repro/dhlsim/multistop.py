"""Multi-stop DHL contention study (Section VI: Multi-stops).

A multi-stop DHL serves several racks from one rail.  The single tube
then becomes a shared resource: requests from different racks queue for
it, and the paper predicts that "multi-stop would motivate higher
speeds to ameliorate potential contention".  This module drives the
operational simulator with a seeded stochastic request load and
measures exactly that effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.params import DhlParams
from ..core.percentiles import percentile
from ..errors import ConfigurationError
from ..sim import Environment, Store
from ..storage.datasets import synthetic_dataset
from .api import DhlApi
from .scheduler import DhlSystem


@dataclass(frozen=True)
class TransferRequest:
    """One rack asking for one cart-sized shard at a given time."""

    request_id: int
    arrival_s: float
    endpoint_id: int
    shard_index: int


@dataclass(frozen=True)
class RequestOutcome:
    """Measured service of one request."""

    request: TransferRequest
    started_s: float
    completed_s: float

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.request.arrival_s

    @property
    def queueing_s(self) -> float:
        return self.started_s - self.request.arrival_s


@dataclass(frozen=True)
class ContentionReport:
    """Aggregate statistics of a multi-stop run."""

    params: DhlParams
    n_racks: int
    outcomes: tuple[RequestOutcome, ...]
    tube_utilisation: float = 0.0
    """Time-averaged busy fraction of the shared tube over the run."""

    @property
    def mean_latency_s(self) -> float:
        return float(np.mean([outcome.latency_s for outcome in self.outcomes]))

    @property
    def p95_latency_s(self) -> float:
        # The shared rule equals np.percentile's default linear method,
        # so historical values are unchanged.
        return percentile([o.latency_s for o in self.outcomes], 95)

    @property
    def mean_queueing_s(self) -> float:
        return float(np.mean([outcome.queueing_s for outcome in self.outcomes]))

    @property
    def makespan_s(self) -> float:
        return max(outcome.completed_s for outcome in self.outcomes)


@dataclass
class MultiStopExperiment:
    """A seeded open-loop request load over a multi-stop DHL."""

    params: DhlParams = field(default_factory=DhlParams)
    n_racks: int = 3
    n_requests: int = 12
    mean_interarrival_s: float = 10.0
    stations_per_rack: int = 2
    seed: int = 0
    read_bytes: float | None = None
    """Bytes read per request; None reads the whole shard.  Small reads
    make tube contention (not SSD drain time) the dominant effect."""

    def __post_init__(self) -> None:
        if self.n_racks < 2:
            raise ConfigurationError("a multi-stop study needs >= 2 racks")
        if self.n_requests <= 0:
            raise ConfigurationError("n_requests must be >= 1")
        if self.mean_interarrival_s <= 0:
            raise ConfigurationError("mean_interarrival_s must be positive")
        if self.read_bytes is not None and self.read_bytes < 0:
            raise ConfigurationError("read_bytes must be >= 0")

    def generate_requests(self) -> list[TransferRequest]:
        """Poisson arrivals, racks drawn uniformly, one shard each."""
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(self.mean_interarrival_s, size=self.n_requests)
        arrivals = np.cumsum(gaps)
        racks = rng.integers(1, self.n_racks + 1, size=self.n_requests)
        return [
            TransferRequest(
                request_id=index,
                arrival_s=float(arrivals[index]),
                endpoint_id=int(racks[index]),
                shard_index=index,
            )
            for index in range(self.n_requests)
        ]

    def run(self) -> ContentionReport:
        """Simulate the load end to end and collect latency statistics."""
        from ..sim.stats import UtilisationMonitor

        env = Environment()
        system = DhlSystem(
            env,
            params=self.params,
            n_racks=self.n_racks,
            stations_per_rack=self.stations_per_rack,
            library_slots=max(64, self.n_requests * 2),
        )
        tube_monitor = UtilisationMonitor(system.tracks[0].tube)
        dataset = synthetic_dataset(
            self.n_requests * self.params.storage_per_cart, name="multistop"
        )
        system.load_dataset(dataset)
        api = DhlApi(system)
        requests = self.generate_requests()
        done: Store = Store(env)

        def serve(request: TransferRequest):
            if request.arrival_s > env.now:
                yield env.timeout(request.arrival_s - env.now)
            started = env.now
            station = yield api.open(dataset.name, request.shard_index,
                                     request.endpoint_id)
            yield api.read(request.endpoint_id, dataset.name,
                           request.shard_index, n_bytes=self.read_bytes)
            yield api.close(station.cart, request.endpoint_id)
            yield done.put(
                RequestOutcome(
                    request=request, started_s=started, completed_s=env.now
                )
            )

        for request in requests:
            env.process(serve(request))

        def collect():
            outcomes = []
            for _ in requests:
                outcome = yield done.get()
                outcomes.append(outcome)
            return outcomes

        outcomes = env.run(until=env.process(collect()))
        return ContentionReport(
            params=self.params,
            n_racks=self.n_racks,
            outcomes=tuple(sorted(outcomes, key=lambda o: o.request.request_id)),
            tube_utilisation=tube_monitor.utilisation(),
        )


def speed_contention_sweep(
    speeds_m_s: tuple[float, ...] = (100.0, 200.0, 300.0),
    **experiment_kwargs: object,
) -> dict[float, ContentionReport]:
    """The paper's prediction, measured: higher speeds cut contention.

    Returns a report per top speed with otherwise identical seeds and
    load, so latency differences are attributable to the speed alone.
    """
    if not speeds_m_s:
        raise ConfigurationError("at least one speed is required")
    reports = {}
    for speed in speeds_m_s:
        experiment = MultiStopExperiment(
            params=DhlParams(max_speed=speed), **experiment_kwargs
        )
        reports[speed] = experiment.run()
    return reports
