"""The library endpoint: cold storage of SSD carts (Section III-B6).

The library sits at one end of the DHL, storing carts in its own internal
docking slots raised off the main track.  It is the origin of Open
requests and the destination of Close returns, and the place where failed
carts are repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..sim import Environment
from ..storage.library import LibraryInventory, PlacementPlan, Shard
from .cart import Cart, CartState


@dataclass
class LibraryNode:
    """Cart cold storage with slot bookkeeping and shard lookup."""

    env: Environment
    endpoint_id: int = 0
    capacity_slots: int = 256
    carts: dict[int, Cart] = field(default_factory=dict)
    inventory: LibraryInventory = field(init=False)
    repairs_performed: int = 0

    def __post_init__(self) -> None:
        self.inventory = LibraryInventory(capacity_slots=self.capacity_slots)

    # -- cart management -------------------------------------------------------

    def admit(self, cart: Cart) -> None:
        """Store a cart (it must be at the library and not in motion)."""
        if cart.cart_id in self.carts:
            raise SchedulingError(f"cart {cart.cart_id} is already in the library")
        if len(self.carts) >= self.capacity_slots:
            raise SchedulingError(
                "library is full; extend the rail to add slots (Section III-B6)"
            )
        if cart.state != CartState.STORED:
            cart.transition(CartState.STORED)
        cart.location = self.endpoint_id
        self.carts[cart.cart_id] = cart

    def checkout(self, cart_id: int) -> Cart:
        """Remove a cart from storage, ready to launch."""
        try:
            cart = self.carts.pop(cart_id)
        except KeyError:
            raise SchedulingError(f"cart {cart_id} is not in the library") from None
        cart.transition(CartState.READY)
        return cart

    def cart_holding(self, dataset: str, index: int) -> Cart:
        """The stored cart carrying a given shard."""
        for cart in self.carts.values():
            if cart.holds(dataset, index):
                return cart
        raise SchedulingError(
            f"no library cart holds shard ({dataset!r}, {index}); "
            "it may be out at an endpoint"
        )

    def idle_cart(self) -> Cart:
        """Any stored cart with no payload (for Write/backup traffic)."""
        for cart in self.carts.values():
            if not cart.shards:
                return cart
        raise SchedulingError("no empty cart available in the library")

    # -- dataset ingestion -------------------------------------------------------

    def ingest_plan(self, plan: PlacementPlan, make_cart) -> list[Cart]:
        """Materialise a placement plan: one loaded cart per shard.

        ``make_cart`` is a factory returning a fresh :class:`Cart`; the
        system wires it to the configured SSD array.
        """
        carts = []
        for shard in plan:
            cart = make_cart()
            cart.load_shard(shard)
            self.admit(cart)
            self.inventory.store(
                Shard(
                    dataset=shard.dataset,
                    index=shard.index,
                    offset_bytes=shard.offset_bytes,
                    size_bytes=shard.size_bytes,
                )
            )
            carts.append(cart)
        return carts

    # -- maintenance ---------------------------------------------------------------

    def repair_cart(self, cart_id: int):
        """Process: rebuild a degraded cart's failed drives in place."""
        if cart_id not in self.carts:
            raise SchedulingError(f"cart {cart_id} is not in the library")
        cart = self.carts[cart_id]
        return self.env.process(self._repair(cart))

    def _repair(self, cart: Cart):
        rebuild_seconds = cart.repair()
        if rebuild_seconds > 0:
            yield self.env.timeout(rebuild_seconds)
            self.repairs_performed += 1
        return rebuild_seconds

    @property
    def stored_count(self) -> int:
        return len(self.carts)
