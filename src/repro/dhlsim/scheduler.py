"""The DHL system and its cart scheduler.

:class:`DhlSystem` wires the simulator together — tracks, library, rack
endpoints, telemetry — and implements the shuttle primitive every API
command builds on.  The scheduler enforces the constraints the paper
calls out:

* a cart can only be in one place at a time;
* data on a cart is inaccessible during transit;
* only one cart per tube (single rail), and a docking cart briefly
  blocks the tube;
* endpoints have limited docking capacity, so carts return to the
  library when their data is consumed.

Reliability: every shuttle operation runs under the system's
:class:`~repro.dhlsim.policy.ShuttlePolicy` — failed attempts (track
breach, in-tube stall) are retried with exponential backoff and the
whole operation can race a deadline.  Fault models observe and steer
attempts through the ``pre_shuttle_hooks`` / ``post_shuttle_hooks``
lists instead of monkey-patching ``_shuttle``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.params import DhlParams
from ..errors import (
    DegradedServiceError,
    SchedulingError,
    ShuttleTimeoutError,
    TrackFaultError,
)
from ..obs.metrics import MetricsRegistry
from ..obs.probe import ResourceProbe
from ..obs.tracer import NULL_SPAN, TraceLevel, Tracer
from ..sim import Environment, Event, Interrupt
from ..storage.datasets import Dataset
from ..storage.library import PlacementPlan, plan_placement
from ..storage.ssd_array import SsdArray
from .cart import Cart, CartState
from .docking import DockingStation, RackEndpoint
from .library_node import LibraryNode
from .metrics import (
    COUNT_PREFIX,
    DURATION_PREFIX,
    ENERGY_PREFIX,
    telemetry_view,
)
from .policy import NO_RETRY, FailoverPolicy, ShuttlePolicy
from .track import Track, build_tracks, pick_track


@dataclass
class ShuttleAttempt:
    """One physical launch attempt, visible to shuttle hooks.

    Pre-shuttle hooks run once the attempt is committed to launch (tube
    claimed, track up) and may mutate the fault directives: set
    ``stall_s`` to stall the cart mid-tube for that long, and
    ``abort_in_tube`` to have the stall end in extraction (the attempt
    fails with :class:`~repro.errors.TrackFaultError`).  Post-shuttle
    hooks observe completed attempts.
    """

    cart: Cart
    src: int
    dst: int
    number: int = 1
    stall_s: float = 0.0
    abort_in_tube: bool = False
    abort_reason: str | None = None


ShuttleHook = Callable[[ShuttleAttempt], None]


@dataclass
class DhlSystem:
    """A complete simulated DHL: rail(s), library, racks, telemetry."""

    env: Environment
    params: DhlParams = field(default_factory=DhlParams)
    n_racks: int = 1
    stations_per_rack: int = 2
    library_slots: int = 512
    parity_drives: int = 0
    shuttle_policy: ShuttlePolicy = NO_RETRY
    failover: FailoverPolicy | None = None
    retry_seed: int = 0
    tracer: Tracer | None = None
    tracks: list[Track] = field(init=False)
    library: LibraryNode = field(init=False)
    racks: dict[int, RackEndpoint] = field(init=False)
    metrics: MetricsRegistry = field(init=False)
    probes: list[ResourceProbe] = field(init=False)
    pre_shuttle_hooks: list[ShuttleHook] = field(init=False)
    post_shuttle_hooks: list[ShuttleHook] = field(init=False)

    def __post_init__(self) -> None:
        if self.tracer is None:
            self.tracer = Tracer(self.env, level=TraceLevel.OFF)
        else:
            self.tracer.attach_clock(self.env)
        self.tracks = build_tracks(self.env, self.params, self.n_racks)
        self.library = LibraryNode(
            self.env, endpoint_id=0, capacity_slots=self.library_slots
        )
        self.racks = {}
        for endpoint in self.tracks[0].endpoints:
            if not endpoint.is_library:
                self.racks[endpoint.endpoint_id] = RackEndpoint(
                    self.env,
                    endpoint_id=endpoint.endpoint_id,
                    n_stations=self.stations_per_rack,
                )
        self.metrics = MetricsRegistry(self.env)
        # Claim/release probes keyed to match leaked_resources(), so the
        # trace-derived leak audit lines up with the scheduler's own.
        # Only an enabled tracer pays the wrapping cost.
        self.probes = []
        if self.tracer.enabled:
            for track in self.tracks:
                self.probes.append(
                    ResourceProbe(track.tube, self.tracer,
                                  f"tube:{track.name}", metrics=self.metrics)
                )
            for endpoint_id, rack in self.racks.items():
                self.probes.append(
                    ResourceProbe(rack.slots, self.tracer,
                                  f"slots:{endpoint_id}", metrics=self.metrics)
                )
        self.pre_shuttle_hooks = []
        self.post_shuttle_hooks = []
        self._retry_rng = np.random.default_rng(self.retry_seed)

    # -- factories ---------------------------------------------------------------

    def make_array(self) -> SsdArray:
        return SsdArray(
            device=self.params.ssd_device,
            count=self.params.ssds_per_cart,
            parity_drives=self.parity_drives,
        )

    def make_cart(self) -> Cart:
        cart = Cart(array=self.make_array(), location=self.library.endpoint_id)
        # Every state transition lands in the trace as a `cart.state`
        # instant; the timeline renderer is built entirely from these.
        tracer = self.tracer

        def traced_transition(cart_self: Cart, new_state: str,
                              _original=Cart.transition) -> None:
            _original(cart_self, new_state)
            tracer.instant(
                "cart.state",
                track=f"cart-{cart_self.cart_id}",
                cart=cart_self.cart_id,
                state=new_state,
            )

        cart.transition = traced_transition.__get__(cart)  # type: ignore[method-assign]
        return cart

    def load_dataset(self, dataset: Dataset) -> PlacementPlan:
        """Stage a dataset in the library, one loaded cart per shard."""
        plan = plan_placement(dataset, self.make_array())
        self.library.ingest_plan(plan, self.make_cart)
        return plan

    def add_empty_carts(self, count: int) -> list[Cart]:
        """Stage empty carts in the library (for write-back traffic)."""
        if count <= 0:
            raise SchedulingError(f"cart count must be >= 1, got {count}")
        carts = []
        for _ in range(count):
            cart = self.make_cart()
            self.library.admit(cart)
            carts.append(cart)
        return carts

    def rack(self, endpoint_id: int) -> RackEndpoint:
        try:
            return self.racks[endpoint_id]
        except KeyError:
            known = sorted(self.racks)
            raise SchedulingError(
                f"unknown rack endpoint {endpoint_id}; known racks: {known}"
            ) from None

    # -- the shuttle primitive ------------------------------------------------------

    def shuttle(self, cart: Cart, dst: int) -> Event:
        """Process: move a READY cart from its location to endpoint ``dst``.

        Sequence: undock handling, exclusive tube traversal, dock
        handling — wrapped in the system's retry/deadline policy.
        Launch energy is metered per hop.  The caller is responsible for
        slot reservations at the destination.
        """
        return self.env.process(self._shuttle(cart, dst))

    def _shuttle(self, cart: Cart, dst: int):
        """Retry wrapper: run attempts under the shuttle policy.

        Raises :class:`ShuttleTimeoutError` when the per-operation
        deadline races ahead of the attempt, and
        :class:`DegradedServiceError` when attempts are exhausted or the
        track outage has outlasted ``give_up_outage_s``.
        """
        if cart.state != CartState.READY:
            raise SchedulingError(
                f"cart {cart.cart_id} must be READY to shuttle, is {cart.state}"
            )
        src = cart.location
        if src == dst:
            raise SchedulingError(f"cart {cart.cart_id} is already at endpoint {dst}")
        policy = self.shuttle_policy
        deadline_at = (
            None if policy.deadline_s is None else self.env.now + policy.deadline_s
        )
        track = pick_track(self.tracks, src, dst)
        cart_track = f"cart-{cart.cart_id}"
        with self.tracer.span("shuttle", track=cart_track,
                              cart=cart.cart_id, src=src, dst=dst):
            result = yield from self._shuttle_with_retries(
                cart, src, dst, track, policy, deadline_at, cart_track
            )
        return result

    def _shuttle_with_retries(self, cart: Cart, src: int, dst: int, track: Track,
                              policy: ShuttlePolicy, deadline_at: float | None,
                              cart_track: str):
        last_fault: TrackFaultError | None = None
        for attempt_number in range(1, policy.max_attempts + 1):
            # Exhaustion check must precede spawning the attempt: a
            # process launched here with no one left to yield it would
            # fail undefused and crash the whole run.
            remaining = None
            if deadline_at is not None:
                remaining = deadline_at - self.env.now
                if remaining <= 0:
                    self.metrics.counter(COUNT_PREFIX + "shuttle_timeouts").inc()
                    self.tracer.instant("shuttle.timeout", track=cart_track,
                                        attempt=attempt_number)
                    raise ShuttleTimeoutError(
                        f"cart {cart.cart_id} {src}->{dst}: deadline "
                        f"{policy.deadline_s:.3g}s exhausted before attempt "
                        f"{attempt_number}"
                    )
            attempt = ShuttleAttempt(cart=cart, src=src, dst=dst, number=attempt_number)
            proc = self.env.process(self._shuttle_once(attempt, track))
            try:
                if remaining is None:
                    return (yield proc)
                # The paper-prescribed deadline: race the attempt against
                # a timeout; whichever fires first decides the outcome.
                deadline_event = self.env.timeout(remaining)
                race = self.env.any_of([proc, deadline_event])
                yield race
                if proc.triggered:
                    # Drop the losing timeout so a draining run() does
                    # not spin virtual time out to the full deadline.
                    deadline_event.cancel()
                    if proc.ok:
                        return proc.value
                    raise proc.value
                proc.interrupt("shuttle deadline exceeded")
                try:
                    yield proc  # wait for the attempt to unwind cleanly
                except (Interrupt, TrackFaultError):
                    pass
                self.metrics.counter(COUNT_PREFIX + "shuttle_timeouts").inc()
                self.tracer.instant("shuttle.timeout", track=cart_track,
                                    attempt=attempt_number)
                raise ShuttleTimeoutError(
                    f"cart {cart.cart_id} {src}->{dst} exceeded its "
                    f"{policy.deadline_s:.3g}s deadline on attempt {attempt_number}"
                )
            except TrackFaultError as fault:
                last_fault = fault
                self.metrics.counter(COUNT_PREFIX + "shuttle_faults").inc()
                self.tracer.instant("shuttle.fault", track=cart_track,
                                    attempt=attempt_number, cause=fault.cause)
            if (
                policy.give_up_outage_s is not None
                and track.health.outage_age(self.env.now) >= policy.give_up_outage_s
            ):
                raise DegradedServiceError(
                    f"track {track.name} has been down "
                    f"{track.health.outage_age(self.env.now):.3g}s "
                    f"(threshold {policy.give_up_outage_s:.3g}s); degrading"
                ) from last_fault
            if attempt_number == policy.max_attempts:
                break
            self.metrics.counter(COUNT_PREFIX + "shuttle_retries").inc()
            self.tracer.instant("shuttle.retry", track=cart_track,
                                attempt=attempt_number)
            backoff = policy.backoff_delay(attempt_number, self._retry_rng)
            if deadline_at is not None:
                # Never sleep past the deadline: wake exactly at it so
                # the exhaustion check above fires on time.
                backoff = min(backoff, max(deadline_at - self.env.now, 0.0))
            yield self.env.timeout(backoff)
        if policy.max_attempts == 1 and last_fault is not None:
            raise last_fault  # fail-fast policy: surface the root cause directly
        raise DegradedServiceError(
            f"cart {cart.cart_id} {src}->{dst} failed after "
            f"{policy.max_attempts} attempts"
        ) from last_fault

    def _shuttle_once(self, attempt: ShuttleAttempt, track: Track):
        """One physical launch attempt; normalises cart state on failure."""
        cart, src, dst = attempt.cart, attempt.src, attempt.dst
        tracer = self.tracer
        cart_track = f"cart-{cart.cart_id}"
        # The attempt span and its phase children (tube.wait, undock,
        # transit[/stall], dock) partition the attempt exactly: the
        # trace-invariant tests hold their durations to sum to the
        # attempt's, even when an interrupt unwinds mid-phase.
        attempt_span = tracer.span("attempt", track=cart_track,
                                   number=attempt.number, src=src, dst=dst)
        wait_span = NULL_SPAN
        try:
            if not track.health.tube_available:
                raise TrackFaultError(
                    f"tube {track.name} is unavailable (breach under repair)",
                    track=track.name,
                    cause="breach",
                )
            wait_span = tracer.span("tube.wait", track=cart_track)
            with track.tube.request() as tube_claim:
                yield tube_claim
                wait_span.end()
                # Re-check: the breach may have struck while we queued.
                if not track.health.tube_available:
                    raise TrackFaultError(
                        f"tube {track.name} went down while cart "
                        f"{cart.cart_id} queued for it",
                        track=track.name,
                        cause="breach",
                    )
                for hook in list(self.pre_shuttle_hooks):
                    hook(attempt)
                with tracer.span("undock", track=cart_track):
                    yield self.env.timeout(self.params.undock_time)
                cart.transition(CartState.IN_TRANSIT)
                cart.location = dst
                # A degraded LIM launches slower but still launches.
                travel = track.travel_time(src, dst) * track.health.lim_slowdown
                with tracer.span("transit", track=cart_track):
                    if attempt.stall_s > 0.0 or attempt.abort_in_tube:
                        yield self.env.timeout(travel / 2.0)
                        self.metrics.counter(COUNT_PREFIX + "cart_stalls").inc()
                        if attempt.stall_s > 0.0:
                            self.metrics.counter(
                                DURATION_PREFIX + "stall"
                            ).inc(attempt.stall_s)
                            with tracer.span("stall", track=cart_track):
                                yield self.env.timeout(attempt.stall_s)
                        if attempt.abort_in_tube:
                            raise TrackFaultError(
                                f"cart {cart.cart_id} stalled in {track.name} "
                                "and was extracted",
                                track=track.name,
                                cause=attempt.abort_reason or "stall",
                            )
                        yield self.env.timeout(travel / 2.0)
                    else:
                        yield self.env.timeout(travel)
                cart.transition(CartState.ARRIVED)
                # Docking blocks the tube: hold the claim through the dock.
                with tracer.span("dock", track=cart_track):
                    yield self.env.timeout(self.params.dock_time)
        except BaseException:
            # Breach, extraction or deadline interrupt: the tube claim is
            # released by the context manager; park the cart READY at its
            # origin so the retry layer can relaunch or re-store it.
            wait_span.end()
            attempt_span.end(failed=True)
            if cart.state in (CartState.IN_TRANSIT, CartState.ARRIVED):
                cart.abort_transit(src)
            raise
        attempt_span.end()
        energy = track.hop_energy(src, dst)
        self.metrics.counter(ENERGY_PREFIX + "launch").inc(energy)
        self.metrics.counter(COUNT_PREFIX + "launches").inc()
        track.record_traversal(src, dst)
        cart.trips_completed += 1
        for hook in list(self.post_shuttle_hooks):
            hook(attempt)
        return cart

    # -- high-level movements -----------------------------------------------------

    def dispatch_to_rack(self, cart_id: int, endpoint_id: int) -> Event:
        """Process: library -> rack, ending docked at a free station."""
        return self.env.process(self._dispatch(cart_id, endpoint_id))

    def _dispatch(self, cart_id: int, endpoint_id: int):
        rack = self.rack(endpoint_id)
        cart_track = f"cart-{cart_id}"
        with self.tracer.span("dispatch", track=cart_track,
                              cart=cart_id, endpoint=endpoint_id):
            with self.tracer.span("slot.wait", track=cart_track):
                slot = rack.slots.request()
                yield slot
            cart = self.library.checkout(cart_id)
            try:
                yield self.env.process(self._shuttle(cart, endpoint_id))
                station = rack.free_station()
                station.attach(cart)
            except BaseException:
                slot.release()
                # A failed attempt parks the cart READY at its origin (the
                # library); re-admit it so the cart is never leaked.
                if (
                    cart.state == CartState.READY
                    and cart.location == self.library.endpoint_id
                ):
                    self.library.admit(cart)
                raise
            station.slot_claim = slot  # released on return
            self.metrics.counter(COUNT_PREFIX + "dispatches").inc()
        return station

    def return_to_library(self, cart: Cart, endpoint_id: int) -> Event:
        """Process: rack -> library, freeing the dock slot."""
        return self.env.process(self._return(cart, endpoint_id))

    def _return(self, cart: Cart, endpoint_id: int):
        with self.tracer.span("return", track=f"cart-{cart.cart_id}",
                              cart=cart.cart_id, endpoint=endpoint_id):
            result = yield from self._return_inner(cart, endpoint_id)
        return result

    def _return_inner(self, cart: Cart, endpoint_id: int):
        rack = self.rack(endpoint_id)
        if cart in rack.stranded:
            # A previous return attempt failed and parked the cart in
            # the recovery bay; it is READY at the rack, not docked.
            rack.stranded.remove(cart)
        else:
            station = rack.station_holding(cart)
            cart = station.detach()
            slot_claim = getattr(station, "slot_claim", None)
            if slot_claim is not None:
                slot_claim.release()
                station.slot_claim = None
        try:
            yield self.env.process(self._shuttle(cart, self.library.endpoint_id))
        except BaseException:
            # The cart is parked READY back at the rack.  Without this
            # handler a mid-shuttle fault stranded it detached with its
            # dock slot already released.  Re-dock it if a slot and a
            # station are still free, otherwise park it in the rack's
            # recovery bay for a later return attempt.
            recovery = rack.slots.request()
            station = None
            if recovery.triggered:
                station = next(
                    (
                        candidate
                        for candidate in rack.stations
                        if not candidate.occupied and not candidate.out_of_service
                    ),
                    None,
                )
            if station is not None:
                station.attach(cart)
                station.slot_claim = recovery
            else:
                recovery.release()
                rack.strand(cart)
                self.metrics.counter(COUNT_PREFIX + "stranded_carts").inc()
                self.tracer.instant("cart.stranded", track=f"cart-{cart.cart_id}",
                                    endpoint=endpoint_id)
            raise
        self.library.admit(cart)
        self.metrics.counter(COUNT_PREFIX + "returns").inc()
        return cart

    # -- accounting helpers ---------------------------------------------------------

    @property
    def telemetry(self):
        """Deprecated query view over :attr:`metrics`.

        Kept so analysis tables and older tests can keep reading
        ``count``/``total_energy``/``total_duration``/``counters``; the
        scheduler itself writes to the registry directly.
        """
        return telemetry_view(self.env, self.metrics)

    @property
    def total_launch_energy(self) -> float:
        return self.metrics.value(ENERGY_PREFIX + "launch")

    @property
    def total_launches(self) -> int:
        return int(self.metrics.value(COUNT_PREFIX + "launches"))

    def station_for_shard(self, endpoint_id: int, dataset: str, index: int) -> DockingStation:
        return self.rack(endpoint_id).find_docked(dataset, index)

    def leaked_resources(self) -> dict[str, int]:
        """Claims still held across tubes and racks (chaos-test invariant).

        A quiescent system — no transfer in flight — must report zero
        everywhere: failed shuttles release tube claims, failed
        dispatches release dock slots.
        """
        leaks = {}
        for track in self.tracks:
            leaks[f"tube:{track.name}"] = track.tube.count
        for endpoint_id, rack in self.racks.items():
            held = rack.slots.count
            docked = len(rack.docked_carts)
            out_of_service = sum(
                1 for station in rack.stations if station.out_of_service
            )
            leaks[f"slots:{endpoint_id}"] = held - docked - out_of_service
        return leaks
