"""The DHL system and its cart scheduler.

:class:`DhlSystem` wires the simulator together — tracks, library, rack
endpoints, telemetry — and implements the shuttle primitive every API
command builds on.  The scheduler enforces the constraints the paper
calls out:

* a cart can only be in one place at a time;
* data on a cart is inaccessible during transit;
* only one cart per tube (single rail), and a docking cart briefly
  blocks the tube;
* endpoints have limited docking capacity, so carts return to the
  library when their data is consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.params import DhlParams
from ..errors import SchedulingError
from ..sim import Environment, Event
from ..storage.datasets import Dataset
from ..storage.library import PlacementPlan, plan_placement
from ..storage.ssd_array import SsdArray
from .cart import Cart, CartState
from .docking import DockingStation, RackEndpoint
from .library_node import LibraryNode
from .metrics import Telemetry
from .track import Track, build_tracks, pick_track


@dataclass
class DhlSystem:
    """A complete simulated DHL: rail(s), library, racks, telemetry."""

    env: Environment
    params: DhlParams = field(default_factory=DhlParams)
    n_racks: int = 1
    stations_per_rack: int = 2
    library_slots: int = 512
    parity_drives: int = 0
    tracks: list[Track] = field(init=False)
    library: LibraryNode = field(init=False)
    racks: dict[int, RackEndpoint] = field(init=False)
    telemetry: Telemetry = field(init=False)

    def __post_init__(self) -> None:
        self.tracks = build_tracks(self.env, self.params, self.n_racks)
        self.library = LibraryNode(
            self.env, endpoint_id=0, capacity_slots=self.library_slots
        )
        self.racks = {}
        for endpoint in self.tracks[0].endpoints:
            if not endpoint.is_library:
                self.racks[endpoint.endpoint_id] = RackEndpoint(
                    self.env,
                    endpoint_id=endpoint.endpoint_id,
                    n_stations=self.stations_per_rack,
                )
        self.telemetry = Telemetry(self.env)

    # -- factories ---------------------------------------------------------------

    def make_array(self) -> SsdArray:
        return SsdArray(
            device=self.params.ssd_device,
            count=self.params.ssds_per_cart,
            parity_drives=self.parity_drives,
        )

    def make_cart(self) -> Cart:
        return Cart(array=self.make_array(), location=self.library.endpoint_id)

    def load_dataset(self, dataset: Dataset) -> PlacementPlan:
        """Stage a dataset in the library, one loaded cart per shard."""
        plan = plan_placement(dataset, self.make_array())
        self.library.ingest_plan(plan, self.make_cart)
        return plan

    def add_empty_carts(self, count: int) -> list[Cart]:
        """Stage empty carts in the library (for write-back traffic)."""
        if count <= 0:
            raise SchedulingError(f"cart count must be >= 1, got {count}")
        carts = []
        for _ in range(count):
            cart = self.make_cart()
            self.library.admit(cart)
            carts.append(cart)
        return carts

    def rack(self, endpoint_id: int) -> RackEndpoint:
        try:
            return self.racks[endpoint_id]
        except KeyError:
            known = sorted(self.racks)
            raise SchedulingError(
                f"unknown rack endpoint {endpoint_id}; known racks: {known}"
            ) from None

    # -- the shuttle primitive ------------------------------------------------------

    def shuttle(self, cart: Cart, dst: int) -> Event:
        """Process: move a READY cart from its location to endpoint ``dst``.

        Sequence: undock handling, exclusive tube traversal, dock
        handling.  Launch energy is metered per hop.  The caller is
        responsible for slot reservations at the destination.
        """
        return self.env.process(self._shuttle(cart, dst))

    def _shuttle(self, cart: Cart, dst: int):
        if cart.state != CartState.READY:
            raise SchedulingError(
                f"cart {cart.cart_id} must be READY to shuttle, is {cart.state}"
            )
        src = cart.location
        if src == dst:
            raise SchedulingError(f"cart {cart.cart_id} is already at endpoint {dst}")
        track = pick_track(self.tracks, src, dst)
        with track.tube.request() as tube_claim:
            yield tube_claim
            yield self.env.timeout(self.params.undock_time)
            cart.transition(CartState.IN_TRANSIT)
            cart.location = dst
            yield self.env.timeout(track.travel_time(src, dst))
            cart.transition(CartState.ARRIVED)
            # Docking blocks the tube: hold the claim through the dock.
            yield self.env.timeout(self.params.dock_time)
        energy = track.hop_energy(src, dst)
        self.telemetry.record_energy("launch", energy)
        self.telemetry.increment("launches")
        track.record_traversal(src, dst)
        cart.trips_completed += 1
        return cart

    # -- high-level movements -----------------------------------------------------

    def dispatch_to_rack(self, cart_id: int, endpoint_id: int) -> Event:
        """Process: library -> rack, ending docked at a free station."""
        return self.env.process(self._dispatch(cart_id, endpoint_id))

    def _dispatch(self, cart_id: int, endpoint_id: int):
        rack = self.rack(endpoint_id)
        slot = rack.slots.request()
        yield slot
        cart = self.library.checkout(cart_id)
        try:
            yield self.env.process(self._shuttle(cart, endpoint_id))
            station = rack.free_station()
            station.attach(cart)
        except BaseException:
            slot.release()
            raise
        station.slot_claim = slot  # released on return
        self.telemetry.increment("dispatches")
        return station

    def return_to_library(self, cart: Cart, endpoint_id: int) -> Event:
        """Process: rack -> library, freeing the dock slot."""
        return self.env.process(self._return(cart, endpoint_id))

    def _return(self, cart: Cart, endpoint_id: int):
        rack = self.rack(endpoint_id)
        station = rack.station_holding(cart)
        cart = station.detach()
        slot_claim = getattr(station, "slot_claim", None)
        if slot_claim is not None:
            slot_claim.release()
            station.slot_claim = None
        yield self.env.process(self._shuttle(cart, self.library.endpoint_id))
        self.library.admit(cart)
        self.telemetry.increment("returns")
        return cart

    # -- accounting helpers ---------------------------------------------------------

    @property
    def total_launch_energy(self) -> float:
        return self.telemetry.total_energy("launch")

    @property
    def total_launches(self) -> int:
        return self.telemetry.count("launches")

    def station_for_shard(self, endpoint_id: int, dataset: str, index: int) -> DockingStation:
        return self.rack(endpoint_id).find_docked(dataset, index)
