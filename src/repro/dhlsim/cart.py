"""Cart state machine for the operational DHL simulator.

A cart is the magnetically levitated vehicle carrying an SSD array
(Section III-B1).  The simulator tracks each cart's lifecycle through an
explicit state machine so scheduling bugs surface as
:class:`~repro.errors.CartStateError` instead of silent corruption.

States and legal transitions::

    STORED    --undock-->  READY
    READY     --launch-->  IN_TRANSIT
    IN_TRANSIT --arrive--> ARRIVED
    ARRIVED   --dock-->    DOCKED
    DOCKED    --undock-->  READY           (heading back out)
    ARRIVED/READY --store--> STORED        (into a library slot)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import CartStateError, StorageError
from ..storage.library import Shard
from ..storage.ssd_array import SsdArray


class CartState:
    """Enumeration of cart lifecycle states."""

    STORED = "stored"
    READY = "ready"
    IN_TRANSIT = "in-transit"
    ARRIVED = "arrived"
    DOCKED = "docked"

    ALL = (STORED, READY, IN_TRANSIT, ARRIVED, DOCKED)


_TRANSITIONS: dict[str, tuple[str, ...]] = {
    CartState.STORED: (CartState.READY,),
    # READY -> DOCKED covers re-docking a cart whose return shuttle was
    # aborted by a track fault: it parks back in the station it left.
    CartState.READY: (CartState.IN_TRANSIT, CartState.STORED, CartState.DOCKED),
    CartState.IN_TRANSIT: (CartState.ARRIVED,),
    CartState.ARRIVED: (CartState.DOCKED, CartState.STORED, CartState.READY),
    CartState.DOCKED: (CartState.READY,),
}

_cart_ids = itertools.count()


@dataclass
class Cart:
    """One DHL cart: an SSD array plus location/state bookkeeping.

    ``location`` is the endpoint id the cart currently occupies (or is
    docked at); during transit it is the *destination* endpoint.
    ``shards`` maps (dataset, index) to the stored :class:`Shard`.
    """

    array: SsdArray
    location: int = 0
    cart_id: int = field(default_factory=lambda: next(_cart_ids))
    state: str = CartState.STORED
    shards: dict[tuple[str, int], Shard] = field(default_factory=dict)
    failed_drives: int = 0
    trips_completed: int = 0

    def __post_init__(self) -> None:
        if self.state not in CartState.ALL:
            raise CartStateError(f"unknown cart state {self.state!r}")

    # -- state machine -------------------------------------------------------

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, validating against the transition table."""
        if new_state not in CartState.ALL:
            raise CartStateError(f"unknown cart state {new_state!r}")
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise CartStateError(
                f"cart {self.cart_id}: illegal transition "
                f"{self.state} -> {new_state} (allowed: {allowed})"
            )
        self.state = new_state

    @property
    def in_motion(self) -> bool:
        return self.state == CartState.IN_TRANSIT

    @property
    def accessible(self) -> bool:
        """Data is only reachable while docked (Section III-D caveat)."""
        return self.state == CartState.DOCKED

    # -- payload -------------------------------------------------------------

    @property
    def stored_bytes(self) -> float:
        return sum(shard.size_bytes for shard in self.shards.values())

    @property
    def free_bytes(self) -> float:
        return self.array.usable_capacity_bytes - self.stored_bytes

    def load_shard(self, shard: Shard) -> None:
        """Place a shard's data on the cart (content bookkeeping only)."""
        key = (shard.dataset, shard.index)
        if key in self.shards:
            raise StorageError(f"cart {self.cart_id} already holds shard {key}")
        if shard.size_bytes > self.free_bytes + 1e-6:
            raise StorageError(
                f"cart {self.cart_id}: shard of {shard.size_bytes:.3g} B does not fit "
                f"in {self.free_bytes:.3g} B free"
            )
        self.shards[key] = shard

    def unload_shard(self, dataset: str, index: int) -> Shard:
        """Remove and return a shard from the cart."""
        try:
            return self.shards.pop((dataset, index))
        except KeyError:
            raise StorageError(
                f"cart {self.cart_id} does not hold shard ({dataset!r}, {index})"
            ) from None

    def holds(self, dataset: str, index: int) -> bool:
        return (dataset, index) in self.shards

    def abort_transit(self, origin: int) -> None:
        """Recover from a failed shuttle attempt: back to READY at ``origin``.

        A breach, stall extraction or deadline interrupt can strike while
        the cart is IN_TRANSIT (location already points at the
        destination) or ARRIVED (not yet docked).  Recovery parks the
        cart READY at the endpoint it launched from so the retry layer
        can relaunch or re-store it.
        """
        if self.state == CartState.IN_TRANSIT:
            self.transition(CartState.ARRIVED)
        if self.state == CartState.ARRIVED:
            self.transition(CartState.READY)
        if self.state != CartState.READY:
            raise CartStateError(
                f"cart {self.cart_id}: cannot abort transit from state {self.state}"
            )
        self.location = origin

    # -- faults ---------------------------------------------------------------

    def fail_drive(self, count: int = 1) -> None:
        """Record in-flight drive failures; recoverability checked at dock."""
        if count <= 0:
            raise StorageError(f"failure count must be positive, got {count}")
        self.failed_drives += count

    def check_integrity(self) -> None:
        """Raise :class:`DataIntegrityError` when failures exceed parity."""
        self.array.surviving(self.failed_drives)

    def repair(self) -> float:
        """Repair failed drives at the library; returns rebuild seconds."""
        degraded = self.array.surviving(self.failed_drives)
        rebuild = degraded.rebuild_time()
        self.failed_drives = 0
        return rebuild

    def __repr__(self) -> str:
        return (
            f"<Cart {self.cart_id} {self.state} at endpoint {self.location} "
            f"holding {len(self.shards)} shards>"
        )
