"""Track, dock and cart fault models with repair crews (DES processes).

The paper's reliability story stops at in-flight SSD failures
(:mod:`repro.dhlsim.faults`).  A production DHL must also survive:

* **vacuum breaches** — the tube is unavailable until a repair crew
  restores it (MTTF/MTTR model, :class:`TrackOutageInjector`);
* **LIM failures** — launches degrade to a slower profile until fixed
  (:class:`LimDegradationInjector`);
* **dock-station failures** — a station goes out of service, shrinking
  the endpoint's effective docking capacity
  (:class:`DockOutageInjector`);
* **in-tube cart stalls** — a cart loses levitation mid-tube and either
  limps on after a delay or is extracted, aborting the shuttle
  (:class:`CartStallInjector`).

All injectors are seeded and deterministic; repair crews are DES
processes sampling MTTF/MTTR from configurable distributions.
:func:`install_chaos` wires a full fault cocktail onto one system and
:meth:`ChaosInjectors.availability_model` returns the matching
closed-form prediction (:mod:`repro.core.availability`) so the DES can
be validated against theory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.availability import AvailabilityModel, RepairableComponent, stall_overhead
from ..errors import ConfigurationError
from ..sim import Interrupt
from .docking import RackEndpoint
from .metrics import COUNT_PREFIX, DURATION_PREFIX
from .scheduler import DhlSystem, ShuttleAttempt
from .track import Track

DISTRIBUTIONS = ("exponential", "fixed")


def _sample(rng: np.random.Generator, mean: float, distribution: str) -> float:
    if distribution == "exponential":
        return float(rng.exponential(mean))
    return mean  # "fixed"


@dataclass
class RepairableInjector:
    """Base MTTF/MTTR fault loop: fail, wait for the crew, repair, repeat.

    Subclasses define what "fail" and "repair" do.  Time-to-failure and
    time-to-repair are sampled from ``distribution`` (exponential by
    default, matching the steady-state availability model; ``"fixed"``
    gives strictly periodic faults for reproducible scenario tests).
    """

    system: DhlSystem
    mttf_s: float
    mttr_s: float
    seed: int = 0
    distribution: str = "exponential"
    outages: int = 0
    downtime_s: float = 0.0
    crew: object | None = None
    """Optional :class:`repro.chaos.crew.RepairCrewPool`: when set, the
    repair cannot start until a crew is free, so concurrent faults queue
    FIFO behind a bounded maintenance workforce."""
    crew_wait_s: float = 0.0
    """Seconds this injector's faults spent waiting for a free crew."""

    #: Metrics duration category charged per repair (subclass class attr).
    _duration_category = None

    #: Span name for one fault-to-repair window in the trace.
    _fault_span = "fault"

    def __post_init__(self) -> None:
        if self.mttf_s <= 0:
            raise ConfigurationError(f"mttf_s must be > 0, got {self.mttf_s}")
        if self.mttr_s < 0:
            raise ConfigurationError(f"mttr_s must be >= 0, got {self.mttr_s}")
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}; "
                f"expected one of {DISTRIBUTIONS}"
            )
        self._rng = np.random.default_rng(self.seed)
        self._stopped = False
        self.process = self.system.env.process(self._run())

    def stop(self) -> None:
        """Halt the fault loop, repairing any outstanding fault first."""
        self._stopped = True
        # A never-started generator cannot catch an Interrupt (the throw
        # raises at the function header); such a loop instead notices
        # ``_stopped`` at its first resume and exits cleanly.
        if self.process.is_alive and self.process.started:
            self.process.interrupt("stop")

    def component(self, name: str) -> RepairableComponent:
        """The closed-form component this injector realises."""
        return RepairableComponent(name=name, mttf_s=self.mttf_s, mttr_s=self.mttr_s)

    def _fault_track(self) -> str:
        """Trace track for this injector's fault windows."""
        return f"fault:{type(self).__name__}"

    # -- the fault loop -----------------------------------------------------

    def _run(self):
        env = self.system.env
        tracer = self.system.tracer
        window = None
        claim = None
        try:
            while not self._stopped:
                yield env.timeout(_sample(self._rng, self.mttf_s, self.distribution))
                if self._stopped:
                    return
                if not self._can_fail():
                    continue  # another injector holds this component down
                self._fail()
                window = tracer.span(self._fault_span, track=self._fault_track())
                self.outages += 1
                if self.crew is not None:
                    waiting_since = env.now
                    claim = self.crew.request(self._fault_track())
                    yield claim
                    self.crew_wait_s += env.now - waiting_since
                repair = _sample(self._rng, self.mttr_s, self.distribution)
                yield env.timeout(repair)
                self._repair()
                if claim is not None:
                    claim.release()
                    claim = None
                window.end()
                window = None
                self.downtime_s += repair
                if self._duration_category is not None:
                    self.system.metrics.counter(
                        DURATION_PREFIX + self._duration_category
                    ).inc(repair)
        except Interrupt:
            if claim is not None:
                claim.release()
            if window is not None:
                self._repair()
                window.end(interrupted=True)

    # -- subclass surface ---------------------------------------------------

    def _can_fail(self) -> bool:
        return True

    def _fail(self) -> None:
        raise NotImplementedError

    def _repair(self) -> None:
        raise NotImplementedError


@dataclass
class TrackOutageInjector(RepairableInjector):
    """Vacuum breach: the tube rejects new entries until repaired.

    Carts already in the tube complete their traversal (they are past
    the breach by construction); queued and new shuttles fail with
    :class:`~repro.errors.TrackFaultError` and are retried under the
    system's :class:`~repro.dhlsim.policy.ShuttlePolicy`.
    """

    track: Track | None = None

    _duration_category = "track_downtime"
    _fault_span = "fault.track"

    def __post_init__(self) -> None:
        if self.track is None:
            self.track = self.system.tracks[0]
        super().__post_init__()

    def _fault_track(self) -> str:
        return f"fault:track:{self.track.name}"

    def _can_fail(self) -> bool:
        return self.track.health.tube_available

    def _fail(self) -> None:
        self.track.health.mark_down(self.system.env.now)
        self.system.metrics.counter(COUNT_PREFIX + "track_outages").inc()

    def _repair(self) -> None:
        self.track.health.mark_up(self.system.env.now)


@dataclass
class LimDegradationInjector(RepairableInjector):
    """LIM failure: launches still happen, but ``slowdown`` times slower."""

    track: Track | None = None
    slowdown: float = 2.0

    _duration_category = "lim_degraded"
    _fault_span = "fault.lim"

    def _fault_track(self) -> str:
        return f"fault:lim:{self.track.name}"

    def __post_init__(self) -> None:
        if self.track is None:
            self.track = self.system.tracks[0]
        if self.slowdown < 1.0:
            raise ConfigurationError(f"slowdown must be >= 1, got {self.slowdown}")
        super().__post_init__()

    def _can_fail(self) -> bool:
        return self.track.health.lim_slowdown == 1.0

    def _fail(self) -> None:
        self.track.health.degrade_lim(self.slowdown)
        self.system.metrics.counter(COUNT_PREFIX + "lim_outages").inc()

    def _repair(self) -> None:
        self.track.health.restore_lim()


@dataclass
class DockOutageInjector(RepairableInjector):
    """Dock-station failure: one station per outage goes out of service.

    The crew claims a dock slot (waiting its turn behind live traffic,
    like a real maintenance window), marks a free station out of
    service, and releases both at repair time.  Effective docking
    capacity shrinks by one for the repair duration.
    """

    rack: RackEndpoint | None = None

    _fault_span = "fault.dock"

    def __post_init__(self) -> None:
        if self.rack is None:
            self.rack = next(iter(self.system.racks.values()))
        super().__post_init__()

    def _fault_track(self) -> str:
        return f"fault:dock:{self.rack.endpoint_id}"

    def _run(self):
        env = self.system.env
        tracer = self.system.tracer
        claim = None
        crew_claim = None
        station = None
        window = None
        try:
            while not self._stopped:
                yield env.timeout(_sample(self._rng, self.mttf_s, self.distribution))
                if self._stopped:
                    return
                if self.crew is not None:
                    waiting_since = env.now
                    crew_claim = self.crew.request(self._fault_track())
                    yield crew_claim
                    self.crew_wait_s += env.now - waiting_since
                claim = self.rack.slots.request()
                yield claim
                station = next(
                    (
                        candidate
                        for candidate in self.rack.stations
                        if not candidate.occupied and not candidate.out_of_service
                    ),
                    None,
                )
                if station is None:  # defensive: nothing sensible to break
                    claim.release()
                    claim = None
                    if crew_claim is not None:
                        crew_claim.release()
                        crew_claim = None
                    continue
                station.out_of_service = True
                window = tracer.span(
                    self._fault_span,
                    track=self._fault_track(),
                    station=station.station_id,
                )
                self.outages += 1
                self.system.metrics.counter(COUNT_PREFIX + "dock_outages").inc()
                repair = _sample(self._rng, self.mttr_s, self.distribution)
                yield env.timeout(repair)
                station.out_of_service = False
                claim.release()
                if crew_claim is not None:
                    crew_claim.release()
                    crew_claim = None
                window.end()
                claim = None
                station = None
                window = None
                self.downtime_s += repair
                self.system.metrics.counter(
                    DURATION_PREFIX + "dock_downtime"
                ).inc(repair)
        except Interrupt:
            if station is not None:
                station.out_of_service = False
            if claim is not None:
                claim.release()
            if crew_claim is not None:
                crew_claim.release()
            if window is not None:
                window.end(interrupted=True)


@dataclass
class CartStallInjector:
    """In-tube stall: with probability ``stall_prob`` per shuttle the cart
    loses levitation mid-tube and sits for ``stall_time_s`` (holding the
    tube); with probability ``abort_prob`` the stall ends in extraction
    and the attempt fails.  Registered as a pre-shuttle hook.
    """

    system: DhlSystem
    stall_prob: float
    stall_time_s: float
    abort_prob: float = 0.0
    seed: int = 0
    stalls: int = 0
    aborts: int = 0
    _attached: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        for name, probability in (
            ("stall_prob", self.stall_prob),
            ("abort_prob", self.abort_prob),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {probability}"
                )
        if self.stall_time_s < 0:
            raise ConfigurationError(
                f"stall_time_s must be >= 0, got {self.stall_time_s}"
            )
        self._rng = np.random.default_rng(self.seed)
        self.system.pre_shuttle_hooks.append(self._on_shuttle)
        self._attached = True

    def detach(self) -> None:
        """Stop injecting; idempotent even if the hook was removed externally."""
        if self._attached:
            try:
                self.system.pre_shuttle_hooks.remove(self._on_shuttle)
            except ValueError:
                pass  # removed behind our back; detaching is still done
            self._attached = False

    def __enter__(self) -> "CartStallInjector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    def _on_shuttle(self, attempt: ShuttleAttempt) -> None:
        if float(self._rng.random()) < self.stall_prob:
            attempt.stall_s += self.stall_time_s
            self.stalls += 1
            if float(self._rng.random()) < self.abort_prob:
                attempt.abort_in_tube = True
                attempt.abort_reason = "levitation stall"
                self.aborts += 1


# -- chaos orchestration ------------------------------------------------------


@dataclass(frozen=True)
class ChaosSpec:
    """One seeded fault cocktail: which faults to inject, how hard.

    Set an MTTF to ``None`` to skip that fault class.  A single ``seed``
    derives per-injector seeds so one integer reproduces the whole run.
    """

    track_mttf_s: float | None = None
    track_mttr_s: float = 60.0
    lim_mttf_s: float | None = None
    lim_mttr_s: float = 60.0
    lim_slowdown: float = 2.0
    dock_mttf_s: float | None = None
    dock_mttr_s: float = 60.0
    stall_prob: float = 0.0
    stall_time_s: float = 0.0
    stall_abort_prob: float = 0.0
    drive_failure_prob: float = 0.0
    distribution: str = "exponential"
    seed: int = 0


@dataclass
class ChaosInjectors:
    """Handles for one installed fault cocktail."""

    spec: ChaosSpec
    system: DhlSystem
    track: TrackOutageInjector | None = None
    lim: LimDegradationInjector | None = None
    dock: DockOutageInjector | None = None
    stall: CartStallInjector | None = None
    drives: object | None = None  # FaultInjector; typed loosely to avoid a cycle

    def stop(self) -> None:
        """Halt every fault process and detach every hook."""
        for injector in (self.track, self.lim, self.dock):
            if injector is not None:
                injector.stop()
        for hooked in (self.stall, self.drives):
            if hooked is not None:
                hooked.detach()

    def availability_model(self, per_shuttle_s: float) -> AvailabilityModel:
        """The closed-form prediction matching this cocktail.

        ``per_shuttle_s`` is the fault-free tube occupancy of one
        shuttle (undock + travel + dock); it scales the stall overhead.
        Only track outages and stalls enter the model: LIM degradation
        and dock outages reduce headroom, not the serialised-tube
        bottleneck, so for a tube-bound campaign they are second-order.
        """
        components = []
        if self.track is not None:
            components.append(self.track.component("track"))
        if not components:
            components.append(RepairableComponent("ideal", mttf_s=1.0, mttr_s=0.0))
        overhead = 0.0
        if self.stall is not None and self.spec.stall_prob > 0:
            overhead = stall_overhead(
                self.spec.stall_prob, self.spec.stall_time_s, per_shuttle_s
            )
        return AvailabilityModel(components=tuple(components), overhead=overhead)


def install_chaos(system: DhlSystem, spec: ChaosSpec,
                  crew: object | None = None) -> ChaosInjectors:
    """Install a full fault cocktail on ``system``; returns the handles.

    ``crew`` (a :class:`repro.chaos.crew.RepairCrewPool`) serialises the
    MTTF/MTTR injectors' repairs behind a bounded workforce; ``None``
    keeps the historical one-crew-per-fault-class behaviour.
    """
    from .faults import FaultInjector

    handles = ChaosInjectors(spec=spec, system=system)
    if spec.track_mttf_s is not None:
        handles.track = TrackOutageInjector(
            system,
            mttf_s=spec.track_mttf_s,
            mttr_s=spec.track_mttr_s,
            seed=spec.seed,
            distribution=spec.distribution,
            crew=crew,
        )
    if spec.lim_mttf_s is not None:
        handles.lim = LimDegradationInjector(
            system,
            mttf_s=spec.lim_mttf_s,
            mttr_s=spec.lim_mttr_s,
            seed=spec.seed + 1,
            distribution=spec.distribution,
            slowdown=spec.lim_slowdown,
            crew=crew,
        )
    if spec.dock_mttf_s is not None:
        handles.dock = DockOutageInjector(
            system,
            mttf_s=spec.dock_mttf_s,
            mttr_s=spec.dock_mttr_s,
            seed=spec.seed + 2,
            distribution=spec.distribution,
            crew=crew,
        )
    if spec.stall_prob > 0.0:
        handles.stall = CartStallInjector(
            system,
            stall_prob=spec.stall_prob,
            stall_time_s=spec.stall_time_s,
            abort_prob=spec.stall_abort_prob,
            seed=spec.seed + 3,
        )
    if spec.drive_failure_prob > 0.0:
        handles.drives = FaultInjector(
            system,
            per_drive_trip_failure_prob=spec.drive_failure_prob,
            seed=spec.seed + 4,
        )
    return handles
