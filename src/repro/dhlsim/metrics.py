"""Telemetry for the operational simulator: energy, launches, utilisation.

The analytical model predicts campaign energy and time in closed form;
the simulator *measures* them.  This module accumulates those
measurements so tests can cross-validate the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..sim import Environment


@dataclass(frozen=True)
class EnergySample:
    """One energy expenditure: when, what for, how much."""

    time_s: float
    category: str
    joules: float


@dataclass
class Telemetry:
    """Accumulates energy samples and operation counters during a run."""

    env: Environment
    samples: list[EnergySample] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    durations: dict[str, float] = field(default_factory=dict)

    def record_energy(self, category: str, joules: float) -> None:
        if joules < 0:
            raise SimulationError(f"energy must be >= 0, got {joules}")
        self.samples.append(EnergySample(self.env.now, category, joules))

    def increment(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def record_duration(self, category: str, seconds: float) -> None:
        """Accumulate elapsed seconds against a category (e.g. downtime)."""
        if seconds < 0:
            raise SimulationError(f"duration must be >= 0, got {seconds}")
        self.durations[category] = self.durations.get(category, 0.0) + seconds

    def total_duration(self, category: str) -> float:
        return self.durations.get(category, 0.0)

    def total_energy(self, category: str | None = None) -> float:
        """Total joules, optionally restricted to one category."""
        return sum(
            sample.joules
            for sample in self.samples
            if category is None or sample.category == category
        )

    def energy_by_category(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for sample in self.samples:
            totals[sample.category] = totals.get(sample.category, 0.0) + sample.joules
        return totals

    def average_power(self) -> float:
        """Mean power over the elapsed simulation time."""
        if self.env.now <= 0:
            raise SimulationError("no simulated time has elapsed")
        return self.total_energy() / self.env.now

    def count(self, counter: str) -> int:
        return self.counters.get(counter, 0)
