"""Operational telemetry — a compatibility facade over the metrics registry.

.. deprecated::
    :class:`Telemetry` predates the observability subsystem and is kept
    as a thin shim so the scheduler's call sites and downstream tests
    keep working unchanged.  Every sample now lands in a
    :class:`repro.obs.MetricsRegistry` (energy under ``energy_j.*``,
    counters under ``count.*``, durations under ``duration_s.*``), which
    is the one metrics path shared with tracing, probes and the CLI's
    trace artefacts.  New code should talk to the registry directly via
    :attr:`Telemetry.registry` or :attr:`DhlSystem.metrics`.

The analytical model predicts campaign energy and time in closed form;
the simulator *measures* them.  This module accumulates those
measurements so tests can cross-validate the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..obs.metrics import MetricsRegistry
from ..sim import Environment

ENERGY_PREFIX = "energy_j."
COUNT_PREFIX = "count."
DURATION_PREFIX = "duration_s."


@dataclass(frozen=True)
class EnergySample:
    """One energy expenditure: when, what for, how much."""

    time_s: float
    category: str
    joules: float


@dataclass
class Telemetry:
    """Accumulates energy samples and operation counters during a run.

    A per-sample log (:attr:`samples`) is retained for tests that need
    individual timestamps; the aggregates live in :attr:`registry`.
    """

    env: Environment
    registry: MetricsRegistry | None = None
    samples: list[EnergySample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = MetricsRegistry(self.env)

    def record_energy(self, category: str, joules: float) -> None:
        if joules < 0:
            raise SimulationError(f"energy must be >= 0, got {joules}")
        self.samples.append(EnergySample(self.env.now, category, joules))
        self.registry.counter(ENERGY_PREFIX + category).inc(joules)

    def increment(self, counter: str, by: int = 1) -> None:
        self.registry.counter(COUNT_PREFIX + counter).inc(by)

    def record_duration(self, category: str, seconds: float) -> None:
        """Accumulate elapsed seconds against a category (e.g. downtime)."""
        if seconds < 0:
            raise SimulationError(f"duration must be >= 0, got {seconds}")
        self.registry.counter(DURATION_PREFIX + category).inc(seconds)

    def total_duration(self, category: str) -> float:
        return self.registry.value(DURATION_PREFIX + category)

    def total_energy(self, category: str | None = None) -> float:
        """Total joules, optionally restricted to one category."""
        if category is not None:
            return self.registry.value(ENERGY_PREFIX + category)
        return sum(self.energy_by_category().values())

    def energy_by_category(self) -> dict[str, float]:
        return self.registry.counters_with_prefix(ENERGY_PREFIX)

    def average_power(self) -> float:
        """Mean power over the elapsed simulation time."""
        if self.env.now <= 0:
            raise SimulationError("no simulated time has elapsed")
        return self.total_energy() / self.env.now

    def count(self, counter: str) -> int:
        return int(self.registry.value(COUNT_PREFIX + counter))

    @property
    def counters(self) -> dict[str, int]:
        """Operation counters as a plain dict (compatibility view)."""
        return {
            name: int(value)
            for name, value in self.registry.counters_with_prefix(
                COUNT_PREFIX
            ).items()
        }

    @property
    def durations(self) -> dict[str, float]:
        """Accumulated durations by category (compatibility view)."""
        return self.registry.counters_with_prefix(DURATION_PREFIX)


def telemetry_view(env: Environment, registry: MetricsRegistry) -> Telemetry:
    """A deprecated-API view over an existing registry.

    The scheduler and fault models now write to the
    :class:`~repro.obs.metrics.MetricsRegistry` directly; this factory
    exists so :attr:`DhlSystem.telemetry` can keep serving the old query
    API (``count``/``total_energy``/``total_duration``/``counters``) to
    analysis tables and downstream tests without any ``dhlsim`` module
    other than this one naming the facade class.
    """
    return Telemetry(env, registry=registry)
