"""The five network routes of the paper's Fig. 2 energy exercise.

Each route is a power decomposition over Table III components:

* **A0** — direct minimal connection: only the two endpoint transceivers.
* **A1** — direct passive connection with regular NICs (same rack).
* **A2** — passive connection through one ToR switch (same rack).
* **B**  — different rack, same aisle: ToR -> aggregation -> ToR.
* **C**  — different aisle: ToR -> agg -> core -> agg -> ToR.

Routes B and C can also be *derived* from the fat-tree topology via
:func:`derive_route`, which must agree with the hand-written census —
tests enforce this consistency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from .components import (
    ENDPOINT_NIC_W,
    SWITCH_PORT_ACTIVE_W,
    SWITCH_PORT_PASSIVE_W,
    TRANSCEIVER_W,
)
from .topology import FatTree, PortCount


@dataclass(frozen=True)
class Route:
    """A named network path with a component census and derived power."""

    name: str
    description: str
    transceivers: int = 0
    nics: int = 0
    passive_ports: int = 0
    active_ports: int = 0

    def __post_init__(self) -> None:
        for field_name in ("transceivers", "nics", "passive_ports", "active_ports"):
            if getattr(self, field_name) < 0:
                raise TopologyError(f"{field_name} must be >= 0 on route {self.name!r}")

    @property
    def switches(self) -> int:
        """Number of switches traversed (two ports each)."""
        total_ports = self.passive_ports + self.active_ports
        if total_ports % 2:
            raise TopologyError(f"route {self.name!r} has an odd port count")
        return total_ports // 2

    @property
    def power_w(self) -> float:
        """Steady-state power drawn by this route during a transfer."""
        return (
            self.transceivers * TRANSCEIVER_W
            + self.nics * ENDPOINT_NIC_W
            + self.passive_ports * SWITCH_PORT_PASSIVE_W
            + self.active_ports * SWITCH_PORT_ACTIVE_W
        )

    def with_ports(self, ports: PortCount) -> "Route":
        """A copy of this route using a topology-derived port census."""
        return Route(
            name=self.name,
            description=self.description,
            transceivers=self.transceivers,
            nics=self.nics,
            passive_ports=ports.passive,
            active_ports=ports.active,
        )


ROUTE_A0 = Route(
    name="A0",
    description="direct minimal connection (transceivers only)",
    transceivers=2,
)
ROUTE_A1 = Route(
    name="A1",
    description="direct passive connection with regular NICs",
    nics=2,
)
ROUTE_A2 = Route(
    name="A2",
    description="passive connection through a ToR switch",
    nics=2,
    passive_ports=2,
)
ROUTE_B = Route(
    name="B",
    description="different rack, same aisle (3 switches)",
    nics=2,
    passive_ports=2,
    active_ports=4,
)
ROUTE_C = Route(
    name="C",
    description="different aisle via the core (5 switches)",
    nics=2,
    passive_ports=2,
    active_ports=8,
)

FIG2_ROUTES = (ROUTE_A0, ROUTE_A1, ROUTE_A2, ROUTE_B, ROUTE_C)

_ROUTES_BY_NAME = {route.name: route for route in FIG2_ROUTES}


def route_by_name(name: str) -> Route:
    """Look up one of the Fig. 2 routes ('A0', 'A1', 'A2', 'B', 'C')."""
    try:
        return _ROUTES_BY_NAME[name]
    except KeyError:
        known = ", ".join(route.name for route in FIG2_ROUTES)
        raise TopologyError(f"unknown route {name!r}; known routes: {known}") from None


def derive_route(tree: FatTree, src: str, dst: str, name: str = "derived") -> Route:
    """Build a route by walking the fat tree between two servers.

    The endpoint NIC pair is always present; port counts come from the
    topology's passive/active cabling convention.  The same-rack case
    yields route A2's census, cross-rack yields B's, cross-aisle yields
    C's.
    """
    path = tree.shortest_path(src, dst)
    ports = tree.classify_ports(path)
    return Route(
        name=name,
        description=f"derived path {' -> '.join(path)}",
        nics=2,
        passive_ports=ports.passive,
        active_ports=ports.active,
    )


def fig2_scenario_endpoints(tree: FatTree) -> dict[str, tuple[str, str]]:
    """Concrete (storage, destination) server pairs realising A2, B and C.

    A0/A1 are direct cables and do not traverse the tree, so only the
    switched scenarios appear here.
    """
    storage = tree.server(aisle=0, rack=0, index=0)
    return {
        "A2": (storage, tree.server(aisle=0, rack=0, index=1)),
        "B": (storage, tree.server(aisle=0, rack=1, index=0)),
        "C": (storage, tree.server(aisle=1, rack=0, index=0)),
    }
