"""Route-energy computation for bulk transfers (paper Figure 2, right).

Combines the route power decompositions with the transfer-time model to
regenerate the Fig. 2 table: the energy each route consumes moving the
29 PB dataset at 400 Gbit/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.datasets import Dataset, META_ML_LARGE
from ..units import gbps
from .routes import FIG2_ROUTES, Route
from .transfer import DEFAULT_LINK_GBPS, OpticalLink


@dataclass(frozen=True)
class RouteEnergy:
    """One row of the Fig. 2 table: a route and its transfer cost."""

    route: Route
    dataset: Dataset
    transfer_time_s: float
    power_w: float = field(init=False)
    energy_j: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "power_w", self.route.power_w)
        object.__setattr__(self, "energy_j", self.route.power_w * self.transfer_time_s)

    @property
    def energy_mj(self) -> float:
        return self.energy_j / 1e6


def route_energy(
    route: Route,
    dataset: Dataset = META_ML_LARGE,
    link_gbps: float = DEFAULT_LINK_GBPS,
) -> RouteEnergy:
    """Energy for one route to move ``dataset`` over a ``link_gbps`` link."""
    link = OpticalLink(route=route, rate_bytes_per_s=gbps(link_gbps))
    return RouteEnergy(
        route=route,
        dataset=dataset,
        transfer_time_s=link.transfer_time(dataset.size_bytes),
    )


def fig2_energies(
    dataset: Dataset = META_ML_LARGE,
    link_gbps: float = DEFAULT_LINK_GBPS,
) -> dict[str, RouteEnergy]:
    """All five Fig. 2 rows, keyed by route name.

    With the defaults this reproduces the paper's 13.92 / 22.97 / 50.05 /
    174.75 / 299.45 MJ column exactly.
    """
    return {
        route.name: route_energy(route, dataset=dataset, link_gbps=link_gbps)
        for route in FIG2_ROUTES
    }


def baseline_transfer_time(
    dataset: Dataset = META_ML_LARGE,
    link_gbps: float = DEFAULT_LINK_GBPS,
) -> float:
    """The single-link transfer time every comparison is anchored to.

    For 29 PB at 400 Gbit/s this is 580 000 s, the paper's "~6.71 days".
    """
    return dataset.size_bytes / gbps(link_gbps)
