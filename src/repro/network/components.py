"""Power models of modern networking components (paper Table III).

Table III characterises transceivers, NICs and switches; the Fig. 2
exercise combines them into per-route powers.  We keep each component's
quoted power *range* and expose the operating points that make the paper's
route energies come out exactly (see :mod:`repro.network.energy`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import gbps


@dataclass(frozen=True)
class PowerRange:
    """A min..max power envelope in watts, with interpolation helpers."""

    low_w: float
    high_w: float

    def __post_init__(self) -> None:
        if self.low_w < 0 or self.high_w < self.low_w:
            raise ConfigurationError(
                f"invalid power range [{self.low_w}, {self.high_w}]"
            )

    def at(self, fraction: float) -> float:
        """Linear interpolation: 0 -> low, 1 -> high."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        return self.low_w + fraction * (self.high_w - self.low_w)

    @property
    def mid_w(self) -> float:
        return self.at(0.5)

    def contains(self, power_w: float) -> bool:
        return self.low_w <= power_w <= self.high_w


@dataclass(frozen=True)
class Transceiver:
    """An optical transceiver module (e.g. 400G QSFP-DD)."""

    name: str
    speed_bps: float
    power_w: float

    def __post_init__(self) -> None:
        if self.speed_bps <= 0 or self.power_w < 0:
            raise ConfigurationError(f"invalid transceiver spec: {self}")


@dataclass(frozen=True)
class Nic:
    """A network interface card; power depends on cabling and load."""

    name: str
    speed_bps: float
    power: PowerRange
    ports: int = 1

    def __post_init__(self) -> None:
        if self.speed_bps <= 0 or self.ports <= 0:
            raise ConfigurationError(f"invalid NIC spec: {self}")

    @property
    def total_speed_bps(self) -> float:
        return self.speed_bps * self.ports


@dataclass(frozen=True)
class Switch:
    """A data centre switch with per-port power derived from the chassis.

    Chassis power scales between ``power.low_w`` (all ports passive) and
    ``power.high_w`` (all ports active optics), so per-port power is the
    chassis figure divided by the port count.
    """

    name: str
    port_speed_bps: float
    ports: int
    power: PowerRange

    def __post_init__(self) -> None:
        if self.port_speed_bps <= 0 or self.ports <= 0:
            raise ConfigurationError(f"invalid switch spec: {self}")

    @property
    def passive_port_w(self) -> float:
        """Per-port power with a passive (DAC) cable attached."""
        return self.power.low_w / self.ports

    @property
    def active_port_w(self) -> float:
        """Per-port power with active optics attached."""
        return self.power.high_w / self.ports

    def port_power(self, active: bool) -> float:
        return self.active_port_w if active else self.passive_port_w


# --------------------------------------------------------------------------
# Table III catalogue
# --------------------------------------------------------------------------

TRANSCEIVER_400G = Transceiver("Broadcom AFCT-91DRDHZ", speed_bps=gbps(400) * 8, power_w=12.0)
# NB: Transceiver.speed_bps is in bits/s; gbps() returns bytes/s, so we
# multiply back by 8.  Kept explicit to avoid double-conversion bugs.

NIC_100G = Nic("Intel E810-CQDA1 / Broadcom N1100G", speed_bps=100e9, power=PowerRange(15.8, 22.5))
NIC_2X200G = Nic(
    "Broadcom P2200G / NVIDIA ConnectX-6",
    speed_bps=200e9,
    power=PowerRange(17.0, 23.3),
    ports=2,
)

SWITCH_QM9700 = Switch(
    "NVIDIA QM9700", port_speed_bps=400e9, ports=32, power=PowerRange(747.0, 1720.0)
)
SWITCH_9364D_GX2A = Switch(
    "Cisco Nexus 9364D-GX2A", port_speed_bps=400e9, ports=64, power=PowerRange(1324.0, 3000.0)
)

TABLE_III_COMPONENTS = (
    TRANSCEIVER_400G,
    NIC_100G,
    NIC_2X200G,
    SWITCH_QM9700,
    SWITCH_9364D_GX2A,
)

# --------------------------------------------------------------------------
# Operating points used by the paper's Fig. 2 energy exercise.
#
# These four constants exactly reproduce the five route energies in Fig. 2
# (13.92 / 22.97 / 50.05 / 174.75 / 299.45 MJ for A0/A1/A2/B/C over the
# 580 000 s transfer).  The endpoint NIC figure of 19.8 W sits inside the
# bolded 2x200G NIC's 17-23.3 W envelope; the switch ports come straight
# from the bolded QM9700 chassis range divided by its 32 ports.
# --------------------------------------------------------------------------

TRANSCEIVER_W: float = TRANSCEIVER_400G.power_w  # 12 W
ENDPOINT_NIC_W: float = 19.8
SWITCH_PORT_PASSIVE_W: float = SWITCH_QM9700.passive_port_w  # 747/32
SWITCH_PORT_ACTIVE_W: float = SWITCH_QM9700.active_port_w  # 1720/32

assert NIC_2X200G.power.contains(ENDPOINT_NIC_W)
