"""Fat-tree data centre topology builder (paper Figure 2, left).

The paper's energy exercise uses a representative fat tree: server nodes
under top-of-rack (ToR) switches, ToRs under per-aisle aggregation
switches, and a core layer joining aisles.  We build it as a networkx
graph so routes can be *derived* (shortest path) rather than hard-coded,
and so alternative topologies can be explored.

Link convention (matching the paper): server-to-ToR links are passive
copper (DAC); switch-to-switch links are active optics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from ..errors import TopologyError

TIER_SERVER = "server"
TIER_TOR = "tor"
TIER_AGG = "agg"
TIER_CORE = "core"

_TIERS = (TIER_SERVER, TIER_TOR, TIER_AGG, TIER_CORE)


@dataclass(frozen=True)
class FatTreeSpec:
    """Shape of a fat-tree: aisles x racks x servers, with agg/core widths.

    The defaults mirror Figure 2: two aisles, four racks per aisle, and
    eight servers per rack, one aggregation layer per aisle and a shared
    core layer.
    """

    aisles: int = 2
    racks_per_aisle: int = 4
    servers_per_rack: int = 8
    agg_per_aisle: int = 2
    core_switches: int = 2

    def __post_init__(self) -> None:
        for name in ("aisles", "racks_per_aisle", "servers_per_rack", "agg_per_aisle",
                     "core_switches"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be positive, got {getattr(self, name)}")


class FatTree:
    """A concrete fat-tree instance with named nodes and tier metadata.

    Node naming: servers are ``srv-a{aisle}-r{rack}-n{index}``, ToRs are
    ``tor-a{aisle}-r{rack}``, aggregations ``agg-a{aisle}-{index}`` and
    cores ``core-{index}``.
    """

    def __init__(self, spec: FatTreeSpec = FatTreeSpec()):
        self.spec = spec
        self.graph = nx.Graph()
        self._build()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        spec = self.spec
        for core in range(spec.core_switches):
            self._add_switch(f"core-{core}", TIER_CORE)
        for aisle in range(spec.aisles):
            for agg in range(spec.agg_per_aisle):
                name = f"agg-a{aisle}-{agg}"
                self._add_switch(name, TIER_AGG, aisle=aisle)
                for core in range(spec.core_switches):
                    self.graph.add_edge(name, f"core-{core}", passive=False)
            for rack in range(spec.racks_per_aisle):
                tor = f"tor-a{aisle}-r{rack}"
                self._add_switch(tor, TIER_TOR, aisle=aisle, rack=rack)
                for agg in range(spec.agg_per_aisle):
                    self.graph.add_edge(tor, f"agg-a{aisle}-{agg}", passive=False)
                for server in range(spec.servers_per_rack):
                    srv = f"srv-a{aisle}-r{rack}-n{server}"
                    self.graph.add_node(srv, tier=TIER_SERVER, aisle=aisle, rack=rack)
                    self.graph.add_edge(srv, tor, passive=True)

    def _add_switch(self, name: str, tier: str, **attrs: int) -> None:
        self.graph.add_node(name, tier=tier, **attrs)

    # -- queries ------------------------------------------------------------

    def tier(self, node: str) -> str:
        """The tier (server/tor/agg/core) of a node."""
        try:
            return self.graph.nodes[node]["tier"]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def servers(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d["tier"] == TIER_SERVER]

    def switches(self, tier: str | None = None) -> list[str]:
        if tier is not None and tier not in _TIERS:
            raise TopologyError(f"unknown tier {tier!r}; expected one of {_TIERS}")
        return [
            n
            for n, d in self.graph.nodes(data=True)
            if d["tier"] != TIER_SERVER and (tier is None or d["tier"] == tier)
        ]

    def server(self, aisle: int, rack: int, index: int) -> str:
        """Canonical name of a server, validated against the topology."""
        name = f"srv-a{aisle}-r{rack}-n{index}"
        if name not in self.graph:
            raise TopologyError(
                f"no server at aisle={aisle} rack={rack} index={index} "
                f"(spec: {self.spec})"
            )
        return name

    def shortest_path(self, src: str, dst: str) -> list[str]:
        """Shortest hop path between two nodes (ties broken by networkx)."""
        for node in (src, dst):
            if node not in self.graph:
                raise TopologyError(f"unknown node {node!r}")
        try:
            return nx.shortest_path(self.graph, src, dst)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path between {src!r} and {dst!r}") from None

    def path_switches(self, path: Iterable[str]) -> list[str]:
        """The switches traversed by a node path, in order."""
        return [node for node in path if self.tier(node) != TIER_SERVER]

    def classify_ports(self, path: list[str]) -> "PortCount":
        """Count passive vs active switch ports along a server-to-server path.

        Each traversed switch contributes two ports (ingress + egress);
        a port is passive when the adjacent hop is a server, active when
        it faces another switch — the paper's cabling assumption.
        """
        if len(path) < 2:
            raise TopologyError("path must contain at least two nodes")
        for endpoint in (path[0], path[-1]):
            if self.tier(endpoint) != TIER_SERVER:
                raise TopologyError(f"path endpoints must be servers, got {endpoint!r}")
        passive = active = 0
        for position in range(1, len(path) - 1):
            node = path[position]
            if self.tier(node) == TIER_SERVER:
                raise TopologyError(f"path interior crosses a server: {node!r}")
            for neighbour in (path[position - 1], path[position + 1]):
                if self.tier(neighbour) == TIER_SERVER:
                    passive += 1
                else:
                    active += 1
        return PortCount(passive=passive, active=active, switches=len(path) - 2)


@dataclass(frozen=True)
class PortCount:
    """Switch-port census of one route."""

    passive: int
    active: int
    switches: int
    nic_pairs: int = 1

    total: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "total", self.passive + self.active)
        if self.passive < 0 or self.active < 0 or self.switches < 0:
            raise TopologyError(f"negative port counts: {self}")
        if self.total != 2 * self.switches:
            raise TopologyError(
                f"each switch must contribute exactly two ports: {self}"
            )
