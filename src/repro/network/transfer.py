"""Optical-network transfer timing: serial links and parallel scaling.

The paper's baseline moves 29 PB over a single 400 Gbit/s link in
580 000 s (~6.71 days); parallelising over n links divides the time but
multiplies route power.  This module captures both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import assert_positive, gbps
from .routes import Route

DEFAULT_LINK_GBPS: float = 400.0
"""The paper's evaluation baseline link rate."""


@dataclass(frozen=True)
class OpticalLink:
    """A point-to-point optical connection following one route."""

    route: Route
    rate_bytes_per_s: float = gbps(DEFAULT_LINK_GBPS)

    def __post_init__(self) -> None:
        assert_positive("rate_bytes_per_s", self.rate_bytes_per_s)

    def transfer_time(self, n_bytes: float) -> float:
        """Seconds to push ``n_bytes`` through this single link."""
        if n_bytes < 0:
            raise ConfigurationError(f"transfer size must be >= 0, got {n_bytes!r}")
        return n_bytes / self.rate_bytes_per_s

    def transfer_energy(self, n_bytes: float) -> float:
        """Joules consumed by the route while the transfer is in flight."""
        return self.route.power_w * self.transfer_time(n_bytes)

    def efficiency_bytes_per_joule(self) -> float:
        """Steady-state data moved per joule (rate / power)."""
        return self.rate_bytes_per_s / self.route.power_w


@dataclass(frozen=True)
class ParallelLinks:
    """``n`` identical optical links operated side by side.

    ``n`` may be fractional: the paper's Fig. 6 network curves assume "a
    continuous, not quantised number of links for simplicity".
    """

    link: OpticalLink
    n: float = 1.0

    def __post_init__(self) -> None:
        assert_positive("n", self.n)

    @property
    def power_w(self) -> float:
        return self.link.route.power_w * self.n

    @property
    def rate_bytes_per_s(self) -> float:
        return self.link.rate_bytes_per_s * self.n

    def transfer_time(self, n_bytes: float) -> float:
        """Seconds with the dataset striped perfectly over all links."""
        return self.link.transfer_time(n_bytes) / self.n

    def transfer_energy(self, n_bytes: float) -> float:
        """Energy is invariant in n: n links run for 1/n the time."""
        return self.power_w * self.transfer_time(n_bytes)


# --------------------------------------------------------------------------
# Vectorised kernels
# --------------------------------------------------------------------------


def transfer_time_kernel(n_bytes, rate_bytes_per_s) -> np.ndarray:
    """Array twin of :meth:`OpticalLink.transfer_time`.

    Broadcasts transfer sizes against link rates, so one call prices a
    whole sweep of payloads, a whole catalogue of links, or both.
    """
    n_bytes = np.asarray(n_bytes, dtype=np.float64)
    rate = np.asarray(rate_bytes_per_s, dtype=np.float64)
    if np.any(n_bytes < 0):
        raise ConfigurationError("transfer sizes must be >= 0")
    if np.any(rate <= 0):
        raise ConfigurationError("link rates must be > 0")
    return n_bytes / rate


def transfer_energy_kernel(n_bytes, power_w, rate_bytes_per_s) -> np.ndarray:
    """Array twin of :meth:`OpticalLink.transfer_energy`: P x S / rate."""
    power = np.asarray(power_w, dtype=np.float64)
    if np.any(power <= 0):
        raise ConfigurationError("route powers must be > 0")
    return power * transfer_time_kernel(n_bytes, rate_bytes_per_s)


def traced_transfer(link, n_bytes: float, tracer, start_s: float = 0.0,
                    track: str = "optical"):
    """Stamp one closed-form transfer into a trace as a link-occupancy window.

    Optical transfers are computed analytically, not simulated, so there
    is no process to instrument; this helper projects the result into
    the same trace vocabulary the DES uses — an async ``transfer`` span
    for the busy window, bracketed by ``occupancy.<track>`` counter
    samples.  ``link`` is any object with ``transfer_time`` (an
    :class:`OpticalLink` or :class:`ParallelLinks`).  Returns the span.
    """
    duration_s = link.transfer_time(n_bytes)
    tracer.counter(f"occupancy.{track}", 1.0, time_s=start_s)
    span = tracer.span_at(
        "transfer",
        start_s=start_s,
        end_s=start_s + duration_s,
        track=track,
        asynchronous=True,
        bytes=n_bytes,
    )
    tracer.counter(f"occupancy.{track}", 0.0, time_s=start_s + duration_s)
    return span


def links_for_power(route: Route, power_budget_w: float,
                    rate_bytes_per_s: float = gbps(DEFAULT_LINK_GBPS)) -> ParallelLinks:
    """The (continuous) number of parallel links a power budget affords."""
    assert_positive("power_budget_w", power_budget_w)
    link = OpticalLink(route=route, rate_bytes_per_s=rate_bytes_per_s)
    return ParallelLinks(link=link, n=power_budget_w / route.power_w)


def links_for_time(route: Route, n_bytes: float, deadline_s: float,
                   rate_bytes_per_s: float = gbps(DEFAULT_LINK_GBPS)) -> ParallelLinks:
    """The (continuous) number of parallel links to finish by a deadline."""
    assert_positive("deadline_s", deadline_s)
    assert_positive("n_bytes", n_bytes)
    link = OpticalLink(route=route, rate_bytes_per_s=rate_bytes_per_s)
    n = link.transfer_time(n_bytes) / deadline_s
    return ParallelLinks(link=link, n=n)


def speedup_links_needed(n_bytes: float, target_time_s: float,
                         rate_bytes_per_s: float = gbps(DEFAULT_LINK_GBPS)) -> float:
    """How much aggregate network speedup a target transfer time demands.

    Reproduces the paper's intro example: compressing the 29 PB / 6.7 day
    transfer into one hour needs a ~161x speedup (to > 64 Tbit/s).
    """
    assert_positive("target_time_s", target_time_s)
    assert_positive("n_bytes", n_bytes)
    return n_bytes / rate_bytes_per_s / target_time_s
