"""Shared-network congestion: what bulk transfers do to foreground flows.

Sections I and II-D2 motivate the DHL with a congestion argument: a
PB-scale transfer "consum[es] a static portion of the data centre's
total bandwidth which could be used by other, more dynamic
applications", and bulk backups "cause traffic spikes that lower the
efficiency of networking".  This module makes the argument measurable:
it routes a set of flows over the fat tree, allocates link bandwidth by
max-min fairness (progressive filling), and reports how much foreground
throughput a bulk transfer steals — traffic a DHL would take off the
network entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, TopologyError
from ..units import assert_positive, gbps
from .topology import FatTree

DEFAULT_LINK_CAPACITY: float = gbps(400)


@dataclass(frozen=True)
class Flow:
    """One traffic demand between two servers."""

    name: str
    src: str
    dst: str
    demand_bytes_per_s: float = float("inf")
    """Offered load; infinite means 'take whatever the network gives'."""

    def __post_init__(self) -> None:
        if self.demand_bytes_per_s <= 0:
            raise ConfigurationError(
                f"flow {self.name!r} demand must be positive"
            )
        if self.src == self.dst:
            raise TopologyError(f"flow {self.name!r} has identical endpoints")


@dataclass(frozen=True)
class Allocation:
    """Max-min fair rates for a set of flows on one topology."""

    rates: dict[str, float]
    paths: dict[str, tuple[str, ...]]

    def rate(self, flow_name: str) -> float:
        try:
            return self.rates[flow_name]
        except KeyError:
            known = ", ".join(sorted(self.rates))
            raise ConfigurationError(
                f"unknown flow {flow_name!r}; allocated flows: {known}"
            ) from None

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())


class SharedNetwork:
    """A fat tree whose links are fairly shared among routed flows."""

    def __init__(self, tree: FatTree | None = None,
                 link_capacity: float = DEFAULT_LINK_CAPACITY):
        assert_positive("link_capacity", link_capacity)
        self.tree = tree or FatTree()
        self.link_capacity = link_capacity

    def _edges_of(self, path: list[str]) -> list[tuple[str, str]]:
        return [
            tuple(sorted((path[index], path[index + 1])))
            for index in range(len(path) - 1)
        ]

    def _flow_edges(self, flow: Flow) -> tuple[list[str], dict[tuple[str, str], float]]:
        """(representative path, edge -> load fraction) for one flow.

        Single-path routing: every edge of the one shortest path carries
        the flow's full rate (weight 1.0).
        """
        path = self.tree.shortest_path(flow.src, flow.dst)
        return path, {edge: 1.0 for edge in self._edges_of(path)}

    def allocate(self, flows: list[Flow]) -> Allocation:
        """Progressive-filling max-min fairness with demand caps.

        Repeatedly raise all unfrozen flows' rates equally until a link
        saturates (freeze its flows) or a flow hits its demand (freeze
        it); standard water-filling.  Edge loads are weighted so ECMP
        subclasses can split a flow across several paths.
        """
        if not flows:
            raise ConfigurationError("at least one flow is required")
        names = [flow.name for flow in flows]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate flow names: {names}")

        paths: dict[str, list[str]] = {}
        weights: dict[str, dict[tuple[str, str], float]] = {}
        for flow in flows:
            path, edge_weights = self._flow_edges(flow)
            paths[flow.name] = path
            weights[flow.name] = edge_weights
        all_edges = {edge for per_flow in weights.values() for edge in per_flow}

        rates = {flow.name: 0.0 for flow in flows}
        frozen: set[str] = set()
        demands = {flow.name: flow.demand_bytes_per_s for flow in flows}

        def edge_load(edge: tuple[str, str]) -> float:
            return sum(
                rates[name] * weights[name].get(edge, 0.0) for name in rates
            )

        while len(frozen) < len(flows):
            active = [name for name in rates if name not in frozen]
            increment = float("inf")
            for edge in all_edges:
                active_weight = sum(
                    weights[name].get(edge, 0.0) for name in active
                )
                if active_weight <= 0:
                    continue
                headroom = self.link_capacity - edge_load(edge)
                increment = min(increment, headroom / active_weight)
            for name in active:
                increment = min(increment, demands[name] - rates[name])
            if increment == float("inf"):
                raise ConfigurationError(
                    "unbounded allocation: no shared link and no finite demand"
                )
            increment = max(increment, 0.0)
            for name in active:
                rates[name] += increment
            for name in active:
                if rates[name] >= demands[name] - 1e-9:
                    frozen.add(name)
            for edge in all_edges:
                if edge_load(edge) >= self.link_capacity - 1e-6:
                    for name in active:
                        if weights[name].get(edge, 0.0) > 0:
                            frozen.add(name)
        return Allocation(
            rates=rates,
            paths={name: tuple(path) for name, path in paths.items()},
        )


class EcmpNetwork(SharedNetwork):
    """Equal-cost multi-path routing: flows split evenly over all
    shortest paths (static per-flow ECMP hashing in expectation).

    A flow's rate is still a single scalar — the static split means its
    throughput is capped by its most congested path, which is exactly
    ECMP's known shortcoming and why the allocation freezes the whole
    flow when any of its edges saturates.
    """

    def _flow_edges(self, flow: Flow) -> tuple[list[str], dict[tuple[str, str], float]]:
        import networkx as nx

        try:
            all_paths = list(
                nx.all_shortest_paths(self.tree.graph, flow.src, flow.dst)
            )
        except nx.NetworkXNoPath:
            from ..errors import TopologyError

            raise TopologyError(
                f"no path between {flow.src!r} and {flow.dst!r}"
            ) from None
        share = 1.0 / len(all_paths)
        edge_weights: dict[tuple[str, str], float] = {}
        for path in all_paths:
            for edge in self._edges_of(path):
                edge_weights[edge] = edge_weights.get(edge, 0.0) + share
        return all_paths[0], edge_weights


@dataclass(frozen=True)
class BulkImpact:
    """Foreground throughput with and without a bulk transfer running."""

    baseline: Allocation
    contended: Allocation
    bulk_flow: str
    foreground_flows: tuple[str, ...] = field(default=())

    @property
    def foreground_loss(self) -> float:
        """Fraction of foreground throughput lost to the bulk transfer."""
        before = sum(self.baseline.rate(name) for name in self.foreground_flows)
        after = sum(self.contended.rate(name) for name in self.foreground_flows)
        if before <= 0:
            raise ConfigurationError("no foreground throughput to compare")
        return 1.0 - after / before

    @property
    def bulk_rate(self) -> float:
        return self.contended.rate(self.bulk_flow)


def bulk_transfer_impact(
    network: SharedNetwork,
    foreground: list[Flow],
    bulk: Flow,
) -> BulkImpact:
    """Measure what a bulk transfer costs co-running foreground flows.

    This is the traffic a DHL removes from the network: with the DHL,
    the 'contended' column never happens.
    """
    if not foreground:
        raise ConfigurationError("at least one foreground flow is required")
    baseline = network.allocate(foreground)
    contended = network.allocate(foreground + [bulk])
    return BulkImpact(
        baseline=baseline,
        contended=contended,
        bulk_flow=bulk.name,
        foreground_flows=tuple(flow.name for flow in foreground),
    )


def paper_backup_scenario(link_gbps_capacity: float = 400.0) -> BulkImpact:
    """The Section II-D2 spike: a cross-aisle bulk backup colliding with
    rack-to-rack foreground traffic that shares the storage rack's
    uplink and the aggregation layer."""
    network = SharedNetwork(link_capacity=gbps(link_gbps_capacity))
    tree = network.tree
    storage = tree.server(0, 0, 0)
    foreground = [
        # Same-source services: share the storage node's access link and ToR.
        Flow("svc-a", storage, tree.server(0, 1, 1)),
        Flow("svc-b", storage, tree.server(0, 2, 2)),
        Flow("svc-c", tree.server(0, 0, 3), tree.server(0, 1, 3)),
    ]
    bulk = Flow("bulk-backup", storage, tree.server(1, 0, 0))
    return bulk_transfer_impact(network, foreground, bulk)
