"""A leaf-spine topology alternative to the Fig. 2 fat tree.

The paper cites Popoola & Pranggono's finding that switch-centric DCN
topology choice moves network energy (Section VII-C, [79]).  This
module builds the other mainstream topology — a two-tier leaf-spine —
with the same tier/cabling conventions as :class:`FatTree`, so routes,
energies and congestion studies run unchanged on it and the two fabrics
can be compared per-route.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import TopologyError
from .routes import Route, derive_route
from .topology import FatTree, FatTreeSpec, TIER_AGG, TIER_SERVER


@dataclass(frozen=True)
class LeafSpineSpec:
    """Shape of a leaf-spine fabric: every leaf connects to every spine."""

    leaves: int = 8
    spines: int = 4
    servers_per_leaf: int = 8

    def __post_init__(self) -> None:
        for name in ("leaves", "spines", "servers_per_leaf"):
            if getattr(self, name) <= 0:
                raise TopologyError(f"{name} must be positive, got {getattr(self, name)}")


class LeafSpine(FatTree):
    """A two-tier Clos: leaves (ToR role) fully meshed to spines.

    Inherits every query from :class:`FatTree` (shortest paths, port
    classification, server lookup by (aisle=0, rack=leaf, index)).
    """

    def __init__(self, spec: LeafSpineSpec = LeafSpineSpec()):
        # Bypass FatTree.__init__'s builder; construct our own graph.
        self.spec = FatTreeSpec(
            aisles=1,
            racks_per_aisle=spec.leaves,
            servers_per_rack=spec.servers_per_leaf,
            agg_per_aisle=spec.spines,
            core_switches=1,
        )
        self.leaf_spec = spec
        self.graph = nx.Graph()
        self._build_leaf_spine(spec)

    def _build_leaf_spine(self, spec: LeafSpineSpec) -> None:
        for spine in range(spec.spines):
            self.graph.add_node(f"spine-{spine}", tier=TIER_AGG)
        for leaf in range(spec.leaves):
            leaf_name = f"leaf-{leaf}"
            self.graph.add_node(leaf_name, tier="tor", aisle=0, rack=leaf)
            for spine in range(spec.spines):
                self.graph.add_edge(leaf_name, f"spine-{spine}", passive=False)
            for server in range(spec.servers_per_leaf):
                srv = f"srv-a0-r{leaf}-n{server}"
                self.graph.add_node(srv, tier=TIER_SERVER, aisle=0, rack=leaf)
                self.graph.add_edge(srv, leaf_name, passive=True)


def leaf_spine_routes(fabric: LeafSpine | None = None) -> dict[str, Route]:
    """The leaf-spine equivalents of the switched Fig. 2 scenarios.

    * same-leaf (A2-like): one switch, two passive ports;
    * cross-leaf (B/C-like): leaf -> spine -> leaf, three switches —
      leaf-spine has no third tier, so the fat tree's 5-switch
      cross-aisle route C collapses to 3 switches here.
    """
    fabric = fabric or LeafSpine()
    storage = fabric.server(0, 0, 0)
    scenarios = {
        "same-leaf": fabric.server(0, 0, 1),
        "cross-leaf": fabric.server(0, 1, 0),
    }
    return {
        name: derive_route(fabric, storage, dst, name=f"ls-{name}")
        for name, dst in scenarios.items()
    }


def topology_energy_comparison(
    dataset_bytes: float = 29e15,
    link_gbps: float = 400.0,
) -> dict[str, float]:
    """Worst-route transfer energy per fabric, in joules.

    Reproduces the Popoola-style observation the paper leans on: the
    flatter fabric's worst case (3 switches) beats the fat tree's
    (5 switches), yet *both* are orders above the DHL.
    """
    from ..units import gbps as to_rate

    transfer_s = dataset_bytes / to_rate(link_gbps)
    from .routes import ROUTE_C

    fat_tree_worst = ROUTE_C.power_w * transfer_s
    leaf_spine_worst = (
        leaf_spine_routes()["cross-leaf"].power_w * transfer_s
    )
    return {
        "fat-tree-worst": fat_tree_worst,
        "leaf-spine-worst": leaf_spine_worst,
    }
