"""Generators for every table in the paper, as structured rows.

Each ``table*`` function returns ``(headers, rows)`` ready for
:func:`repro.analysis.formatting.render_table`; benches assert on the
rows and the CLI prints them.
"""

from __future__ import annotations

from ..core.breakeven import paper_minimum_example
from ..core.cost import LimCost, RailCost, cost_matrix, dhl_cost
from ..core.model import DesignPointReport
from ..core.params import (
    LENGTH_CANDIDATES_M,
    SPEED_CANDIDATES_M_S,
    SSD_COUNT_CANDIDATES,
    DhlParams,
)
from ..core.physics import cart_mass, lim
from ..core.sweep import table_vi_sweep
from ..mlsim.analysis import iso_power_comparison, iso_time_comparison
from ..network.components import TABLE_III_COMPONENTS, Nic, Switch, Transceiver
from ..network.energy import baseline_transfer_time, fig2_energies
from ..storage.datasets import TABLE_I_DATASETS, TABLE_I_STREAMS
from ..storage.devices import TABLE_II_DEVICES
from ..storage.mlmodels import TABLE_IV_MODELS
from ..units import DAY, GB, KJ, KW, MJ, PB, TB

Rows = tuple[list[str], list[list[object]]]


def table1() -> Rows:
    """Table I: large emerging datasets and data creation rates."""
    headers = ["Name", "Size / Rate", "Type"]
    rows: list[list[object]] = []
    for dataset in TABLE_I_DATASETS:
        if dataset.size_bytes >= PB:
            size = f"{dataset.size_bytes / PB:.3g} PB"
        else:
            size = f"{dataset.size_bytes / TB:.3g} TB"
        rows.append([dataset.name, size, dataset.category])
    for stream in TABLE_I_STREAMS:
        if stream.rate_bytes_per_s >= TB:
            rate = f"{stream.rate_bytes_per_s / TB:.3g} TB/s"
        else:
            rate = f"{stream.rate_bytes_per_s * DAY / PB:.3g} PB/day"
        rows.append([stream.name, rate, stream.category])
    return headers, rows


def table2() -> Rows:
    """Table II: currently available storage solutions, plus density."""
    headers = ["Device", "Size (TB)", "Package", "Weight (g)",
               "Rd/Wr (MB/s)", "GB per gram"]
    rows: list[list[object]] = []
    for device in TABLE_II_DEVICES:
        rows.append([
            device.name,
            device.capacity_bytes / TB,
            device.form_factor.name,
            device.mass_kg * 1e3,
            f"{device.read_bw / 1e6:.0f}/{device.write_bw / 1e6:.0f}",
            device.density_bytes_per_gram / GB,
        ])
    return headers, rows


def table3() -> Rows:
    """Table III: networking component power."""
    headers = ["Component", "Speed (Gbit/s)", "Ports", "Power (W)"]
    rows: list[list[object]] = []
    for component in TABLE_III_COMPONENTS:
        if isinstance(component, Transceiver):
            rows.append([component.name, 400, "N/A", f"{component.power_w:g}"])
        elif isinstance(component, Nic):
            speed = f"{component.ports}x{component.speed_bps / 1e9:.0f}" \
                if component.ports > 1 else f"{component.speed_bps / 1e9:.0f}"
            rows.append([
                component.name, speed, "N/A",
                f"{component.power.low_w:g}-{component.power.high_w:g}",
            ])
        elif isinstance(component, Switch):
            rows.append([
                component.name,
                f"{component.port_speed_bps / 1e9:.0f} (per port)",
                component.ports,
                f"{component.power.low_w:g}-{component.power.high_w:g}",
            ])
    return headers, rows


def fig2_table() -> Rows:
    """Figure 2 (right): route energies for moving 29 PB."""
    headers = ["Option", "Route", "Power (W)", "Energy (MJ)"]
    rows: list[list[object]] = []
    for name, entry in fig2_energies().items():
        rows.append([
            name,
            entry.route.description,
            entry.power_w,
            entry.energy_j / MJ,
        ])
    return headers, rows


def table4() -> Rows:
    """Table IV: ML models with a significant storage footprint."""
    headers = ["Name", "# Params", "Size (bytes)", "From", "Year"]
    rows: list[list[object]] = []
    for model in TABLE_IV_MODELS:
        params = (
            f"{model.n_params / 1e12:g}T" if model.n_params >= 1e12
            else f"{model.n_params / 1e9:g}B"
        )
        size = (
            f"{model.size_bytes / TB:g} TB" if model.size_bytes >= TB
            else f"{model.size_bytes / GB:g} GB"
        )
        rows.append([model.name, params, size, model.origin, model.year])
    return headers, rows


def table5() -> Rows:
    """Table V: the DHL parameter space (defaults marked)."""
    default = DhlParams()
    headers = ["Parameter", "Values", "Default"]
    rows: list[list[object]] = [
        ["Time to dock or undock", "3 s", f"{default.dock_time:g} s"],
        [
            "Mass of cart",
            "161, 282, 524 g",
            f"{cart_mass(default).total_grams:.0f} g",
        ],
        [
            "Distance of DHL",
            ", ".join(f"{value:g}" for value in LENGTH_CANDIDATES_M) + " m",
            f"{default.track_length:g} m",
        ],
        ["Acceleration rate", "1000 m/s^2", f"{default.acceleration:g} m/s^2"],
        [
            "Maximum speed",
            ", ".join(f"{value:g}" for value in SPEED_CANDIDATES_M_S) + " m/s",
            f"{default.max_speed:g} m/s",
        ],
        ["LIM efficiency", "75%", f"{default.lim_efficiency:.0%}"],
        [
            "LIM length",
            ", ".join(
                f"{lim(default).length_for_speed(speed):g}"
                for speed in SPEED_CANDIDATES_M_S
            ) + " m",
            f"{lim(default).length_for_speed(default.max_speed):g} m",
        ],
        [
            "SSDs per cart",
            ", ".join(str(count) for count in SSD_COUNT_CANDIDATES),
            str(default.ssds_per_cart),
        ],
        [
            "Storage per cart",
            "128, 256, 512 TB",
            f"{default.storage_per_cart_tb:g} TB",
        ],
    ]
    return headers, rows


def table6() -> Rows:
    """Table VI: design-space exploration + 29 PB comparison (13 rows)."""
    headers = [
        "Speed (m/s)", "Length (m)", "Cart (TB)",
        "Energy (kJ)", "Eff (GB/J)", "Time (s)", "BW (TB/s)", "Peak (kW)",
        "Speedup", "A0", "A1", "A2", "B", "C",
    ]
    rows: list[list[object]] = []
    for report in table_vi_sweep().reports:
        rows.append(_table6_row(report))
    return headers, rows


def _table6_row(report: DesignPointReport) -> list[object]:
    metrics = report.metrics
    params = metrics.params
    comparisons = report.comparisons
    return [
        params.max_speed,
        params.track_length,
        params.storage_per_cart_tb,
        metrics.energy_j / KJ,
        metrics.efficiency_gb_per_j,
        metrics.time_s,
        metrics.bandwidth_tb_per_s,
        metrics.peak_power_w / KW,
        f"{report.time_speedup:.1f}x",
        f"{comparisons['A0'].energy_reduction:.1f}x",
        f"{comparisons['A1'].energy_reduction:.1f}x",
        f"{comparisons['A2'].energy_reduction:.1f}x",
        f"{comparisons['B'].energy_reduction:.1f}x",
        f"{comparisons['C'].energy_reduction:.1f}x",
    ]


def table7a() -> Rows:
    """Table VII(a): time comparison with fixed average power."""
    headers = ["Scheme", "Avg Power (kW)", "Time/Iter (s)", "Slowdown vs DHL"]
    rows: list[list[object]] = []
    for entry in iso_power_comparison():
        rows.append([
            entry.scheme,
            entry.avg_power_w / KW,
            entry.time_per_iter_s,
            f"{entry.ratio_vs_dhl:.1f}x",
        ])
    return headers, rows


def table7b() -> Rows:
    """Table VII(b): communication power with fixed iteration time."""
    headers = ["Scheme", "Avg Power (kW)", "Time/Iter (s)", "Power vs DHL"]
    rows: list[list[object]] = []
    for entry in iso_time_comparison():
        rows.append([
            entry.scheme,
            entry.avg_power_w / KW,
            entry.time_per_iter_s,
            f"{entry.ratio_vs_dhl:.1f}x",
        ])
    return headers, rows


def table8a() -> Rows:
    """Table VIII(a): rail cost by distance."""
    headers = ["Material", "USD/kg", "100 m", "500 m", "1000 m"]
    costs = {distance: RailCost(distance) for distance in (100.0, 500.0, 1000.0)}
    rows: list[list[object]] = [
        ["Aluminium", 2.35] + [f"${costs[d].aluminium_usd:,.0f}" for d in costs],
        ["PVC (rail)", 1.20] + [f"${costs[d].pvc_rail_usd:,.0f}" for d in costs],
        ["PVC (vacuum tube)", 1.20] + [f"${costs[d].pvc_tube_usd:,.0f}" for d in costs],
        ["Total", "-"] + [f"${costs[d].total_usd:,.0f}" for d in costs],
    ]
    return headers, rows


def table8b() -> Rows:
    """Table VIII(b): accelerator/decelerator cost by top speed."""
    headers = ["Component", "USD/kg", "100 m/s", "200 m/s", "300 m/s"]
    costs = {speed: LimCost(speed) for speed in (100.0, 200.0, 300.0)}
    rows: list[list[object]] = [
        ["Copper wire", 8.58] + [f"${costs[s].copper_usd:,.0f}" for s in costs],
        ["VFD", "-"] + [f"${costs[s].vfd_usd:,.0f}" for s in costs],
        ["Total", "-"] + [f"${costs[s].total_usd:,.0f}" for s in costs],
    ]
    return headers, rows


def table8c() -> Rows:
    """Table VIII(c): overall total cost grid."""
    headers = ["Distance (m)", "100 m/s", "200 m/s", "300 m/s"]
    matrix = cost_matrix()
    rows: list[list[object]] = []
    for distance in (100.0, 500.0, 1000.0):
        rows.append(
            [f"{distance:g}"]
            + [f"${matrix[(distance, speed)]:,.0f}" for speed in (100.0, 200.0, 300.0)]
        )
    return headers, rows


def breakeven_summary() -> Rows:
    """Section V-E: the minimum-specification worked example."""
    example = paper_minimum_example()
    headers = ["Quantity", "Value"]
    rows: list[list[object]] = [
        ["DHL one-way trip time", f"{example.dhl_trip_time_s:.2f} s"],
        ["DHL launch energy", f"{example.dhl_launch_energy_j:.1f} J"],
        [
            "Optical A0 time for the same payload",
            f"{example.network_time(example.min_bytes_for_time):.2f} s",
        ],
        [
            "Optical A0 energy for the same payload",
            f"{example.network_energy(example.min_bytes_for_time):.1f} J",
        ],
        ["Minimum size for DHL time win", f"{example.min_bytes_for_time / 1e9:.0f} GB"],
        ["Minimum size for DHL energy win", f"{example.min_bytes_for_energy / 1e9:.2f} GB"],
    ]
    return headers, rows


def intro_example() -> Rows:
    """Section I / II-C anchors: the 29 PB motivating numbers."""
    from ..network.transfer import speedup_links_needed
    from ..storage.devices import (
        NIMBUS_EXADRIVE_100TB,
        WD_GOLD_24TB,
        drives_required,
    )

    transfer = baseline_transfer_time()
    headers = ["Quantity", "Value"]
    rows: list[list[object]] = [
        ["29 PB at 400 Gbit/s", f"{transfer:.0f} s ({transfer / DAY:.2f} days)"],
        [
            "Speedup needed for a 1-hour transfer",
            f"{speedup_links_needed(29 * PB, 3600.0):.0f}x",
        ],
        ["100 TB SSDs to hold 29 PB", drives_required(29 * PB, NIMBUS_EXADRIVE_100TB)],
        ["24 TB HDDs to hold 29 PB", drives_required(29 * PB, WD_GOLD_24TB)],
        ["Default DHL total cost", f"${dhl_cost(DhlParams()).total_usd:,.0f}"],
    ]
    return headers, rows
