"""Programmatic paper-vs-measured validation (EXPERIMENTS.md as code).

Every quantitative anchor in the paper is re-derived here and compared
against the printed value, producing a machine-checkable reproduction
record.  ``python -m repro validate`` renders it; the test suite asserts
that every check passes at its declared tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.breakeven import paper_minimum_example
from ..core.cost import cost_matrix
from ..core.model import design_point_report
from ..core.params import DhlParams
from ..core.physics import average_trip_power, cart_mass, launch_energy, trip_time
from ..mlsim.analysis import iso_power_comparison, iso_time_comparison
from ..network.energy import baseline_transfer_time, fig2_energies
from ..network.transfer import speedup_links_needed
from ..storage.devices import NIMBUS_EXADRIVE_100TB, drives_required
from ..units import GB, KJ, KW, PB


@dataclass(frozen=True)
class Check:
    """One paper anchor: the printed value vs our measurement."""

    section: str
    name: str
    paper_value: float
    measured: float
    tolerance: float
    unit: str = ""

    @property
    def deviation(self) -> float:
        return self.measured / self.paper_value - 1.0

    @property
    def passed(self) -> bool:
        return abs(self.deviation) <= self.tolerance


@dataclass
class ValidationSuite:
    """Collects checks lazily so partial suites stay cheap."""

    checks: list[Check] = field(default_factory=list)

    def add(self, section: str, name: str, paper_value: float,
            measured: float, tolerance: float, unit: str = "") -> None:
        self.checks.append(
            Check(
                section=section,
                name=name,
                paper_value=paper_value,
                measured=measured,
                tolerance=tolerance,
                unit=unit,
            )
        )

    @property
    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.passed]

    @property
    def all_passed(self) -> bool:
        return not self.failures

    def rows(self) -> list[list[object]]:
        """Rows for the CLI table renderer."""
        rendered = []
        for check in self.checks:
            rendered.append([
                check.section,
                check.name,
                f"{check.paper_value:g}{check.unit}",
                f"{check.measured:.4g}{check.unit}",
                f"{check.deviation:+.1%}",
                "ok" if check.passed else "FAIL",
            ])
        return rendered


def _motivation_checks(suite: ValidationSuite) -> None:
    suite.add("I", "29 PB transfer at 400 Gbit/s", 580_000,
              baseline_transfer_time(), 1e-9, " s")
    suite.add("I", "speedup for a 1-hour transfer", 161,
              speedup_links_needed(29 * PB, 3600.0), 0.002, "x")
    suite.add("II-C", "100 TB SSDs for 29 PB", 290,
              drives_required(29 * PB, NIMBUS_EXADRIVE_100TB), 0)


def _fig2_checks(suite: ValidationSuite) -> None:
    paper = {"A0": 13.92, "A1": 22.97, "A2": 50.05, "B": 174.75, "C": 299.45}
    energies = fig2_energies()
    for route, expected in paper.items():
        suite.add("Fig. 2", f"route {route} energy", expected,
                  energies[route].energy_mj, 0.001, " MJ")


def _table_v_checks(suite: ValidationSuite) -> None:
    for ssds, grams in ((16, 161), (32, 282), (64, 524)):
        suite.add("Table V", f"cart mass ({ssds} SSDs)", grams,
                  cart_mass(DhlParams(ssds_per_cart=ssds)).total_grams, 0.005,
                  " g")


def _table_vi_checks(suite: ValidationSuite) -> None:
    default = DhlParams()
    suite.add("Table VI", "default launch energy", 15,
              launch_energy(default) / KJ, 0.01, " kJ")
    suite.add("Table VI", "default trip time", 8.6, trip_time(default),
              0.001, " s")
    suite.add("Table VI", "default average power", 1.75,
              average_trip_power(default) / KW, 0.01, " kW")
    report = design_point_report(default)
    suite.add("Table VI", "default 29 PB speedup", 295.1,
              report.time_speedup, 0.01, "x")
    suite.add("Table VI", "default reduction vs C", 87.7,
              report.comparisons["C"].energy_reduction, 0.01, "x")
    extremes = design_point_report(DhlParams(max_speed=100.0, ssds_per_cart=64))
    suite.add("Abstract", "max energy reduction", 376.1,
              extremes.comparisons["C"].energy_reduction, 0.01, "x")
    fastest = design_point_report(DhlParams(max_speed=300.0, ssds_per_cart=64))
    suite.add("Abstract", "max time speedup", 646.4,
              fastest.time_speedup, 0.01, "x")


def _table_vii_checks(suite: ValidationSuite) -> None:
    iso_power = {row.scheme: row for row in iso_power_comparison()}
    suite.add("Table VII(a)", "DHL time/iteration", 1350,
              iso_power["DHL"].time_per_iter_s, 0.02, " s")
    for scheme, expected in (("A0", 5.7), ("C", 118.0)):
        suite.add("Table VII(a)", f"{scheme} slowdown", expected,
                  iso_power[scheme].ratio_vs_dhl, 0.10, "x")
    iso_time = {row.scheme: row for row in iso_time_comparison()}
    for scheme, expected in (("A0", 6.4), ("C", 135.0)):
        suite.add("Table VII(b)", f"{scheme} power ratio", expected,
                  iso_time[scheme].ratio_vs_dhl, 0.12, "x")


def _table_viii_checks(suite: ValidationSuite) -> None:
    matrix = cost_matrix()
    suite.add("Table VIII", "default total cost", 14_569,
              matrix[(500.0, 200.0)], 0.001, " USD")
    suite.add("Table VIII", "1 km / 300 m/s total cost", 21_842,
              matrix[(1000.0, 300.0)], 0.001, " USD")


def _breakeven_checks(suite: ValidationSuite) -> None:
    example = paper_minimum_example()
    suite.add("Sec. V-E", "minimum trip time", 7.2,
              example.dhl_trip_time_s, 0.05, " s")
    suite.add("Sec. V-E", "minimum dataset size", 360,
              example.min_bytes_for_time / GB, 0.05, " GB")


_SECTIONS: tuple[Callable[[ValidationSuite], None], ...] = (
    _motivation_checks,
    _fig2_checks,
    _table_v_checks,
    _table_vi_checks,
    _table_vii_checks,
    _table_viii_checks,
    _breakeven_checks,
)


def run_validation(include_simulation: bool = True) -> ValidationSuite:
    """Run every paper-anchor check; the ML-simulation checks (Table VII)
    take a minute and can be skipped for a fast pass."""
    suite = ValidationSuite()
    for section in _SECTIONS:
        if not include_simulation and section is _table_vii_checks:
            continue
        section(suite)
    return suite


def validation_table(include_simulation: bool = True) -> tuple[list[str], list[list[object]]]:
    """Headers and rows for the CLI."""
    suite = run_validation(include_simulation)
    headers = ["Section", "Check", "Paper", "Measured", "Dev", "Status"]
    return headers, suite.rows()
