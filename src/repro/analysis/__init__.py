"""Table and figure generators reproducing the paper's evaluation."""

from .export import EXPORTABLE_TABLES, export_tables, write_table_csv
from .extensions import (
    engineering_table,
    hybrid_policy_table,
    multistop_table,
    reliability_table,
    reuse_table,
    sneakernet_table,
)
from .figures import dock_time_sensitivity, figure6, figure6_ascii
from .fleetview import capacity_table, fleet_policy_table, fleet_sla_table
from .validation import Check, ValidationSuite, run_validation, validation_table
from .formatting import format_number, render_table
from .tables import (
    breakeven_summary,
    fig2_table,
    intro_example,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7a,
    table7b,
    table8a,
    table8b,
    table8c,
)

__all__ = [
    "EXPORTABLE_TABLES",
    "export_tables",
    "write_table_csv",
    "Check",
    "ValidationSuite",
    "breakeven_summary",
    "capacity_table",
    "fleet_policy_table",
    "fleet_sla_table",
    "run_validation",
    "validation_table",
    "dock_time_sensitivity",
    "engineering_table",
    "fig2_table",
    "hybrid_policy_table",
    "multistop_table",
    "reliability_table",
    "reuse_table",
    "sneakernet_table",
    "figure6",
    "figure6_ascii",
    "format_number",
    "intro_example",
    "render_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7a",
    "table7b",
    "table8a",
    "table8b",
    "table8c",
]
