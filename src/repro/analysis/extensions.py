"""Table generators for the extension studies beyond the paper's tables.

These cover the claims the paper makes in prose (Sections II-C, II-D3,
VI, VII-B) without giving a table: friction-limited baselines, the
engineering feasibility checks, multi-stop contention, and recurring
training-reuse savings.
"""

from __future__ import annotations

from ..baselines.sneakernet import (
    HUMAN_PORTER,
    SNOWMOBILE_TRUCK,
    plan_sneakernet,
)
from ..core.engineering import (
    assess_cart_thermals,
    assess_safety,
    connector_wear,
)
from ..core.model import plan_campaign
from ..core.params import DhlParams
from ..dhlsim.multistop import speed_contention_sweep
from ..mlsim.epochs import reuse_study
from ..network.routes import ROUTE_B
from ..storage.devices import SABRENT_ROCKET_4_PLUS_8TB
from ..units import DAY, GB, HOUR, PB, TB, format_energy, format_time
from ..workloads import (
    AllDhlPolicy,
    AllNetworkPolicy,
    BreakEvenPolicy,
    WorkloadGenerator,
    compare_policies,
)

Rows = tuple[list[str], list[list[object]]]


def sneakernet_table(dataset_bytes: float = 29 * PB,
                     distance_m: float = 500.0) -> Rows:
    """Embodied-movement shoot-out: DHL vs porter vs truck (Sec. VII-B)."""
    headers = ["Mover", "Time", "Energy", "Efficiency (GB/J)", "Labour ($)"]
    dhl = plan_campaign(DhlParams())
    rows: list[list[object]] = [[
        "DHL (default)",
        format_time(dhl.time_s),
        format_energy(dhl.energy_j),
        dhl.dataset.size_bytes / dhl.energy_j / GB,
        "$0",
    ]]
    for carrier in (HUMAN_PORTER, SNOWMOBILE_TRUCK):
        plan = plan_sneakernet(
            dataset_bytes, distance_m, carrier, SABRENT_ROCKET_4_PLUS_8TB
        )
        rows.append([
            carrier.name,
            format_time(plan.time_s),
            format_energy(plan.energy_j),
            plan.efficiency_bytes_per_j / GB,
            f"${plan.labour_cost_usd:,.0f}",
        ])
    return headers, rows


def engineering_table(transfers_per_day: float = 10.0) -> Rows:
    """Section VI feasibility checks at the default design point."""
    params = DhlParams()
    thermal = assess_cart_thermals(params)
    usb = connector_wear(params, transfers_per_day)
    m2 = connector_wear(params, transfers_per_day, connector="m.2")
    safety = assess_safety(params)
    headers = ["Check", "Value", "Verdict"]
    rows: list[list[object]] = [
        [
            "Cart heat (32 SSDs under load)",
            f"{thermal.total_power_w:.0f} W, junction {thermal.junction_c:.0f} C",
            "no throttling" if not thermal.throttles else "THROTTLES",
        ],
        [
            f"USB-C connector at {transfers_per_day:g} transfers/day",
            f"{usb.lifetime_years:.1f} years",
            "ok" if usb.lifetime_days > 365 else "replace early",
        ],
        [
            f"M.2 connector at {transfers_per_day:g} transfers/day",
            f"{m2.lifetime_days:.0f} days",
            "unsuitable (paper agrees)",
        ],
        [
            "Runaway-cart kinetic energy",
            f"{safety.kinetic_energy_j / 1e3:.1f} kJ",
            f"sandbag margin {safety.sandbag_margin:.1f}x",
        ],
    ]
    return headers, rows


def multistop_table(read_tb: float = 1.0) -> Rows:
    """Contention vs top speed on a 3-rack multi-stop DHL (Sec. VI)."""
    sweep = speed_contention_sweep(
        n_requests=10, seed=3, mean_interarrival_s=2.0, read_bytes=read_tb * TB
    )
    headers = ["Top speed (m/s)", "Mean latency (s)", "p95 (s)", "Makespan (s)"]
    rows: list[list[object]] = [
        [f"{speed:g}", report.mean_latency_s, report.p95_latency_s,
         report.makespan_s]
        for speed, report in sorted(sweep.items())
    ]
    return headers, rows


def hybrid_policy_table(horizon_hours: float = 6.0, seed: int = 42) -> Rows:
    """Section III-E as a table: hybrid routing vs the pure strategies."""
    jobs = WorkloadGenerator(seed=seed).generate(horizon_hours * HOUR)
    reports = compare_policies(
        jobs, [AllNetworkPolicy(), AllDhlPolicy(), BreakEvenPolicy()]
    )
    headers = ["Policy", "Energy", "Makespan", "Mean latency", "DHL byte share"]
    rows: list[list[object]] = []
    for name in ("all-network", "all-dhl", "break-even"):
        report = reports[name]
        rows.append([
            name,
            format_energy(report.total_energy_j),
            format_time(report.makespan_s),
            format_time(report.mean_latency_s),
            f"{report.dhl_share:.0%}",
        ])
    return headers, rows


def reliability_table(shards: int = 100, seed: int = 11) -> Rows:
    """Fault-tolerance study: chaos campaigns vs the availability model.

    Each row runs one seeded bulk-transfer campaign under a fault
    cocktail (``repro.dhlsim.reliability``) and compares the
    DES-measured slowdown against the closed-form
    :class:`~repro.core.availability.AvailabilityModel` prediction.
    """
    from ..dhlsim import (
        ChaosSpec,
        DhlApi,
        DhlSystem,
        ShuttlePolicy,
        install_chaos,
    )
    from ..sim import Environment
    from ..storage.datasets import synthetic_dataset

    params = DhlParams()
    policy = ShuttlePolicy(
        max_attempts=20, base_backoff_s=0.5, backoff_factor=2.0,
        max_backoff_s=4.0, jitter_frac=0.25,
    )

    def campaign(spec: ChaosSpec | None):
        env = Environment()
        system = DhlSystem(env, params=params, parity_drives=4,
                           shuttle_policy=policy)
        dataset = synthetic_dataset(shards * 200 * TB, name="reliability")
        system.load_dataset(dataset)
        handles = install_chaos(system, spec) if spec is not None else None
        api = DhlApi(system)
        report = env.run(until=api.bulk_transfer(dataset, read_payload=False))
        return system, report, handles

    baseline_system, baseline, _ = campaign(None)
    per_shuttle = (
        params.undock_time
        + baseline_system.tracks[0].travel_time(0, 1)
        + params.dock_time
    )
    scenarios = [
        ("Stalls only", ChaosSpec(
            stall_prob=0.05, stall_time_s=5.0, seed=seed,
            distribution="fixed",
        )),
        ("Track outages", ChaosSpec(
            track_mttf_s=400.0, track_mttr_s=60.0, seed=seed,
            distribution="fixed",
        )),
        ("Full chaos", ChaosSpec(
            track_mttf_s=400.0, track_mttr_s=60.0,
            stall_prob=0.05, stall_time_s=5.0, stall_abort_prob=0.2,
            drive_failure_prob=0.0005, seed=seed, distribution="fixed",
        )),
    ]
    headers = [
        "Scenario", "Availability", "Slowdown (model)", "Slowdown (DES)",
        "Retries", "Downtime", "Leaked claims",
    ]
    rows: list[list[object]] = [[
        "Fault-free", "100%", "1.00x", "1.00x", 0, format_time(0.0), 0,
    ]]
    for label, spec in scenarios:
        system, report, handles = campaign(spec)
        model = handles.availability_model(per_shuttle)
        measured = baseline.effective_bandwidth / report.effective_bandwidth
        downtime = system.telemetry.total_duration("track_downtime")
        rows.append([
            label,
            f"{model.availability:.1%}",
            f"{model.slowdown:.2f}x",
            f"{measured:.2f}x",
            system.telemetry.count("shuttle_retries"),
            format_time(downtime),
            sum(abs(v) for v in system.leaked_resources().values()),
        ])
    return headers, rows


def reuse_table(iterations_per_model: int = 1000,
                models_trained: int = 20) -> Rows:
    """Recurring-savings economics of dataset reuse (Sec. II-D3)."""
    study = reuse_study(
        ROUTE_B,
        iterations_per_model=iterations_per_model,
        models_trained=models_trained,
    )
    headers = ["Quantity", "Value"]
    rows: list[list[object]] = [
        ["Iterations per model", iterations_per_model],
        ["Models trained", models_trained],
        [
            "DHL comm energy per model",
            format_energy(study.dhl.total_comm_energy_j),
        ],
        [
            "Route-B comm energy per model (iso-power)",
            format_energy(study.network.total_comm_energy_j),
        ],
        ["DHL capital (materials)", f"${study.dhl_capital_usd:,.0f}"],
        ["Models to amortise capital", f"{study.models_to_amortise:.1f}"],
        ["Total saving over the fleet", f"${study.total_saving_usd:,.0f}"],
        [
            "Network time per model",
            f"{study.network.total_time_s / DAY:.1f} days "
            f"vs DHL {study.dhl.total_time_s / DAY:.1f} days",
        ],
    ]
    return headers, rows
