"""Plain-text table rendering for the CLI and benches.

Deliberately dependency-free: right-aligns numeric columns, left-aligns
text, and renders a compact ASCII grid suitable for diffing against the
paper's tables.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows into an aligned ASCII table."""
    if not headers:
        raise ConfigurationError("a table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells; expected {len(headers)}"
            )
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells), 1)
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    numeric = [
        all(_is_numeric(row[column]) for row in cells) if cells else False
        for column in range(len(headers))
    ]

    def format_row(row: Sequence[str]) -> str:
        parts = []
        for column, value in enumerate(row):
            if numeric[column]:
                parts.append(value.rjust(widths[column]))
            else:
                parts.append(value.ljust(widths[column]))
        return "| " + " | ".join(parts) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    lines = []
    if title:
        lines.append(title)
    lines.append(separator)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    for row in cells:
        lines.append(format_row(row))
    lines.append(separator)
    return "\n".join(lines)


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return format_number(value)
    return str(value)


def format_number(value: float, sig_figs: int = 4) -> str:
    """Format a float compactly: trim trailing zeros, avoid exponents for
    human-scale magnitudes."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1e7 or magnitude < 1e-3:
        return f"{value:.3g}"
    text = f"{value:.{sig_figs}g}"
    if "e" in text or "E" in text:
        text = f"{value:.1f}"
        if text.endswith(".0"):
            text = text[:-2]
    return text


def _is_numeric(text: str) -> bool:
    try:
        float(text.rstrip("x%"))
    except ValueError:
        return False
    return True
