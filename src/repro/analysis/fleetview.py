"""CLI tables for fleet and traffic runs: policies, SLA, chaos, tenants.

Rendered through the same :func:`repro.analysis.formatting.render_table`
pipeline as the paper tables, so ``repro fleet`` and ``repro chaos``
output sits next to ``repro table6`` output with identical formatting
conventions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..fleet.bench import FleetBenchReport
from ..fleet.capacity import CapacityPlan
from ..fleet.controlplane import FleetReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from typing import Mapping

    from ..chaos.bench import ChaosBenchReport
    from ..fleet.shard import ShardReport
    from ..traffic.bench import TrafficBenchReport
    from ..traffic.replay import ReplayResult


def fleet_policy_table(
    bench: FleetBenchReport,
) -> tuple[list[str], list[list[object]]]:
    """One row per (policy, cache) combo: the headline comparison."""
    headers = [
        "Policy",
        "Cache",
        "Jobs",
        "p50 (s)",
        "p99 (s)",
        "Miss rate",
        "Hit rate",
        "Launches",
        "Launch MJ",
        "Goodput (GB/s)",
    ]
    rows: list[list[object]] = []
    for label, report in bench.reports:
        policy, cache = label.split("+", 1)
        rows.append([
            policy,
            cache,
            report.n_jobs,
            f"{report.sla.overall.p50_s:.1f}",
            f"{report.p99_s:.1f}",
            f"{report.deadline_miss_rate:.1%}",
            f"{report.hit_rate:.1%}" if cache != "none" else "-",
            report.launches,
            f"{report.launch_energy_j / 1e6:.2f}",
            f"{report.goodput_bytes_per_s / 1e9:.1f}",
        ])
    return headers, rows


def fleet_sla_table(report: FleetReport) -> tuple[list[str], list[list[object]]]:
    """Per-traffic-class SLA attainment of one fleet run."""
    headers = [
        "Class",
        "Jobs",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "Miss rate",
        "Goodput (GB/s)",
    ]
    rows: list[list[object]] = []
    for class_sla in (*report.sla.classes, report.sla.overall):
        rows.append([
            class_sla.kind,
            class_sla.n_jobs,
            f"{class_sla.p50_s:.1f}",
            f"{class_sla.p95_s:.1f}",
            f"{class_sla.p99_s:.1f}",
            f"{class_sla.deadline_miss_rate:.1%}",
            f"{class_sla.goodput_bytes_per_s / 1e9:.1f}",
        ])
    return headers, rows


def learn_comparison_table(
    payload: "Mapping[str, object]",
) -> tuple[list[str], list[list[object]]]:
    """Learned policy vs every fixed combo, from a learn bench payload.

    Takes the JSON payload (not the report object) so the committed
    ``BENCH_learn.json`` renders identically to a fresh run.
    """
    headers = [
        "Control",
        "Jobs",
        "p99 (s)",
        "Miss rate",
        "Hit rate",
        "Launches",
        "Launch MJ",
    ]

    def row(label: str, kpis: "Mapping[str, object]") -> list[object]:
        return [
            label,
            int(kpis["n_jobs"]),
            f"{float(kpis['p99_s']):.1f}",
            f"{float(kpis['deadline_miss_rate']):.1%}",
            f"{float(kpis['cache_hit_rate']):.1%}",
            int(kpis["launches"]),
            f"{float(kpis['launch_energy_mj']):.2f}",
        ]

    best = payload["best_fixed"]
    rows = [row("learned (tabular-q)", dict(payload["learned"]))]
    for label, kpis in sorted(dict(payload["fixed"]).items()):
        marker = " *best fixed" if label == best else ""
        rows.append(row(f"{label}{marker}", dict(kpis)))
    return headers, rows


def chaos_mode_table(
    bench: "ChaosBenchReport",
) -> tuple[list[str], list[list[object]]]:
    """One row per chaos bench mode: the graceful-degradation headline."""
    headers = [
        "Mode",
        "Jobs",
        "Served",
        "Failed",
        "Failover",
        "Shed",
        "Diverted",
        "Trips",
        "p99 (s)",
        "Miss rate",
    ]
    rows: list[list[object]] = []
    for mode, report in bench.reports:
        rows.append([
            mode,
            report.n_jobs,
            report.served,
            report.failed,
            report.failovers,
            report.shed,
            report.diverted,
            report.breaker_trips,
            f"{report.p99_s:.1f}",
            f"{report.deadline_miss_rate:.1%}",
        ])
    return headers, rows


def lane_health_table(
    report: FleetReport,
) -> tuple[list[str], list[list[object]]]:
    """Per-lane degradation report: breaker state and fault history."""
    if not report.lane_health:
        raise ConfigurationError(
            "the fleet run had no degradation policy, so no lane health "
            "was recorded"
        )
    headers = [
        "Lane",
        "Breaker",
        "Trips",
        "Fault windows",
        "Serve failures",
        "Diverted",
    ]
    rows: list[list[object]] = []
    for summary in report.lane_health:
        rows.append([
            summary["lane"],
            summary["state"],
            summary["trips"],
            summary["fault_windows"],
            summary["serve_failures"],
            summary["diverted"],
        ])
    return headers, rows


def traffic_synthesis_table(
    bench: "TrafficBenchReport",
) -> tuple[list[str], list[list[object]]]:
    """What the synthesised trace offered: per-tenant demand shares."""
    headers = ["Tenant", "Records", "Share", "Peak req/s", "Zipf alpha"]
    total = max(bench.n_records, 1)
    profiles = {profile.name: profile for profile in bench.spec.tenants}
    rows: list[list[object]] = []
    for name, count in bench.tenant_counts:
        profile = profiles[name]
        rows.append([
            name,
            count,
            f"{count / total:.1%}",
            f"{profile.peak_rate_per_s:.2f}",
            f"{profile.zipf_alpha:.2f}",
        ])
    rows.append([
        "total", bench.n_records, "100.0%", "-", "-",
    ])
    return headers, rows


def traffic_tenant_table(
    result: "ReplayResult",
) -> tuple[list[str], list[list[object]]]:
    """Per-tenant SLA attainment of one trace replay."""
    tenant_sla = result.tenant_sla
    headers = [
        "Tenant",
        "Jobs",
        "p50 (s)",
        "p95 (s)",
        "p99 (s)",
        "Miss rate",
        "Goodput (GB/s)",
    ]
    rows: list[list[object]] = []
    for class_sla in (*tenant_sla.classes, tenant_sla.overall):
        rows.append([
            class_sla.kind,
            class_sla.n_jobs,
            f"{class_sla.p50_s:.1f}",
            f"{class_sla.p95_s:.1f}",
            f"{class_sla.p99_s:.1f}",
            f"{class_sla.deadline_miss_rate:.1%}",
            f"{class_sla.goodput_bytes_per_s / 1e9:.1f}",
        ])
    return headers, rows


def shard_pod_table(
    report: "ShardReport",
) -> tuple[list[str], list[list[object]]]:
    """Per-pod accounting of one sharded run, with the merged total."""
    headers = [
        "Pod",
        "Tracks",
        "Carts",
        "Jobs",
        "Served",
        "Shed",
        "Failover",
        "Failed",
        "Makespan (s)",
    ]
    rows: list[list[object]] = []
    for row in report.pod_rows:
        rows.append([
            row["pod"],
            row["tracks"],
            row["carts"],
            row["n_jobs"],
            row["served"],
            row["shed"],
            row["failovers"],
            row["failed"],
            f"{row['makespan_s']:.1f}",
        ])
    fleet = report.fleet
    rows.append([
        "total",
        report.plan.scenario.spec.n_tracks,
        report.plan.scenario.spec.cart_pool,
        fleet.n_jobs,
        fleet.served,
        fleet.shed,
        fleet.failovers,
        fleet.failed,
        f"{fleet.makespan_s:.1f}",
    ])
    return headers, rows


def shard_timing_table(
    payload: "Mapping[str, object]",
) -> tuple[list[str], list[list[object]]]:
    """Executor wall-clock comparison from a ``BENCH_shard.json`` payload.

    Wall times are machine-dependent (informational); the byte-identity
    of the two executors is the part every machine must reproduce.
    """
    timings = dict(payload.get("timings_informational", {}))
    if not timings:
        raise ConfigurationError(
            "the shard payload carries no timings_informational block"
        )
    headers = ["Executor", "Workers", "Wall (s)", "Speedup"]
    rows: list[list[object]] = [
        ["serial", 1, f"{timings['serial_wall_s']:.2f}", "1.00x"],
        [
            "process",
            timings["process_workers"],
            f"{timings['process_wall_s']:.2f}",
            f"{timings['speedup']:.2f}x",
        ],
    ]
    return headers, rows


def surrogate_validation_table(
    payload: "Mapping[str, object]",
) -> tuple[list[str], list[list[object]]]:
    """Held-out prediction errors vs their pinned bounds, per target.

    Takes the JSON payload (not the report object) so the committed
    ``BENCH_surrogate.json`` renders identically to a fresh run.
    """
    validation = dict(payload["validation"])
    bounds = dict(validation["bounds"])
    headers = ["Target", "Metric", "Error", "Bound"]
    rows: list[list[object]] = [
        [
            "p99",
            "mean rel",
            f"{float(validation['p99_mean_rel_error']):.3f}",
            f"{float(bounds['p99_mean']):.2f}",
        ],
        [
            "p99",
            "max rel",
            f"{float(validation['p99_max_rel_error']):.3f}",
            f"{float(bounds['p99_max']):.2f}",
        ],
        [
            "energy",
            "aggregate rel",
            f"{float(validation['energy_aggregate_rel_error']):.3f}",
            f"{float(bounds['energy_aggregate']):.2f}",
        ],
        [
            "energy",
            "mean rel",
            f"{float(validation['energy_mean_rel_error']):.3f}",
            f"{float(bounds['energy_mean']):.2f}",
        ],
        [
            "miss rate",
            "max abs",
            f"{float(validation['miss_max_abs_error']):.3f}",
            "-",
        ],
    ]
    return headers, rows


def surrogate_planner_table(
    payload: "Mapping[str, object]",
) -> tuple[list[str], list[list[object]]]:
    """Exhaustive vs surrogate-guided planner, from a bench payload."""
    exhaustive = dict(payload["exhaustive"])
    surrogate = dict(payload["surrogate"])

    def best_label(section: "Mapping[str, object]") -> str:
        best = section.get("best")
        if not best:
            return "-"
        best = dict(best)
        return (
            f"t{best['n_tracks']}c{best['cart_pool']}:"
            f"{best['policy']}+{best['cache_policy']}"
        )

    headers = ["Planner", "DES evals", "Pruned", "Best deployment"]
    rows: list[list[object]] = [
        [
            "exhaustive",
            int(exhaustive["des_evaluations"]),
            0,
            best_label(exhaustive),
        ],
        [
            "surrogate",
            int(surrogate["des_evaluations"]),
            int(surrogate["pruned"]),
            best_label(surrogate),
        ],
        [
            "reduction",
            f"{float(surrogate['reduction']):.1f}x",
            "-",
            "-",
        ],
    ]
    return headers, rows


def capacity_table(plan: CapacityPlan) -> tuple[list[str], list[list[object]]]:
    """Every evaluated candidate, cheapest first, winner marked."""
    if not plan.evaluations:
        raise ConfigurationError("the capacity plan evaluated no candidates")
    headers = [
        "Tracks",
        "Carts",
        "Policy",
        "Cache",
        "p99 (s)",
        "Miss rate",
        "Launch MJ",
        "Feasible",
    ]
    rows: list[list[object]] = []
    for evaluation in plan.evaluations:
        marker = " <- plan" if evaluation == plan.best else ""
        rows.append([
            evaluation.n_tracks,
            evaluation.cart_pool,
            evaluation.policy,
            evaluation.cache_policy,
            f"{evaluation.p99_s:.1f}",
            f"{evaluation.deadline_miss_rate:.1%}",
            f"{evaluation.launch_energy_j / 1e6:.2f}",
            ("yes" if evaluation.feasible else "no") + marker,
        ])
    return headers, rows
