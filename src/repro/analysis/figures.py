"""Generators for the paper's figures as data series (no plotting deps).

Figure 2's energy table lives in :mod:`repro.analysis.tables`; this
module produces Figure 6's curves and an ASCII rendering of them, plus a
sensitivity figure for the dock-time ablation discussed in Section V-A.
"""

from __future__ import annotations

import math

from ..core.params import DhlParams
from ..core.physics import trip_time
from ..errors import ConfigurationError
from ..mlsim.analysis import SweepPoint, figure6_series
from ..mlsim.workload import TrainingIteration
from ..units import KW


def figure6(
    iteration: TrainingIteration | None = None,
    max_tracks: int = 8,
) -> dict[str, list[SweepPoint]]:
    """Figure 6: time/iteration vs communication power budget, per scheme."""
    return figure6_series(iteration=iteration, max_tracks=max_tracks)


def figure6_ascii(series: dict[str, list[SweepPoint]] | None = None,
                  width: int = 72, height: int = 20) -> str:
    """A log-log scatter rendering of Figure 6 for terminal inspection."""
    if series is None:
        series = figure6()
    if not series:
        raise ConfigurationError("no series to plot")
    points = [point for curve in series.values() for point in curve]
    min_x = min(point.power_w for point in points)
    max_x = max(point.power_w for point in points)
    min_y = min(point.time_per_iter_s for point in points)
    max_y = max(point.time_per_iter_s for point in points)

    def x_cell(value: float) -> int:
        if max_x == min_x:
            return 0
        frac = (math.log10(value) - math.log10(min_x)) / (
            math.log10(max_x) - math.log10(min_x)
        )
        return min(width - 1, max(0, int(frac * (width - 1))))

    def y_cell(value: float) -> int:
        if max_y == min_y:
            return 0
        frac = (math.log10(value) - math.log10(min_y)) / (
            math.log10(max_y) - math.log10(min_y)
        )
        return min(height - 1, max(0, int(frac * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend = []
    for index, (name, curve) in enumerate(sorted(series.items())):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for point in curve:
            row = height - 1 - y_cell(point.time_per_iter_s)
            grid[row][x_cell(point.power_w)] = marker
    lines = [
        f"time/iter (s), {min_y:.0f}..{max_y:.0f} log-Y vs "
        f"power (kW), {min_x / KW:.2f}..{max_x / KW:.1f} log-X"
    ]
    lines.extend("".join(row) for row in grid)
    lines.extend(legend)
    return "\n".join(lines)


def dock_time_sensitivity(
    params: DhlParams | None = None,
    dock_times_s: tuple[float, ...] = (0.5, 1.0, 2.0, 3.0, 5.0, 10.0),
) -> list[tuple[float, float, float]]:
    """Trip time and embodied bandwidth vs dock/undock time.

    Section V-A observes that dock handling dominates the trip; this
    series quantifies that. Returns (dock_time, trip_time, bandwidth_tb_s).
    """
    params = params or DhlParams()
    rows = []
    for dock_time in dock_times_s:
        if dock_time < 0:
            raise ConfigurationError(f"dock time must be >= 0, got {dock_time}")
        point = params.with_(dock_time=dock_time, undock_time=dock_time)
        time = trip_time(point)
        rows.append((dock_time, time, params.storage_per_cart / time / 1e12))
    return rows
