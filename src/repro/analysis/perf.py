"""Sweep-engine performance benchmarking: the ``repro bench`` artefact.

The design-space tools promise that every evaluation engine in
:mod:`repro.core.sweep` returns bit-identical reports, and that the
vectorised/parallel paths are substantially faster than the scalar
reference.  This module turns both promises into a measured, committed
artefact: :func:`run_bench` times each engine over a deterministic
design-point grid, checks the results agree exactly, and
:func:`write_report` serialises the outcome to ``BENCH_sweep.json`` —
the perf-regression baseline CI regenerates and uploads on every push.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.params import DhlParams
from ..core.sweep import clear_report_cache, evaluate_reports, report_cache_stats
from ..errors import ConfigurationError
from ..storage.datasets import META_ML_LARGE, Dataset

BENCH_ENGINES: tuple[str, ...] = ("serial", "vector", "process")
"""Engines timed by default, slowest (the reference) first."""

DEFAULT_POINTS: int = 600
"""Default grid size; comfortably above the 500-point acceptance floor."""

DEFAULT_REPEATS: int = 3
"""Timing repeats per engine; the best run is reported."""

SPEEDUP_FLOOR: float = 4.0
"""Minimum accepted best-engine speedup over the scalar reference."""


def bench_points(
    n_points: int = DEFAULT_POINTS,
    base: DhlParams | None = None,
) -> tuple[DhlParams, ...]:
    """A deterministic full-factorial grid of at least ``n_points`` designs.

    Axes mirror the paper's Table VI knobs — top speed, track length,
    cart size and dock time — so the bench exercises the same code paths
    as the real design-space exploration, including both triangular and
    trapezoidal motion profiles.
    """
    if n_points <= 0:
        raise ConfigurationError(f"n_points must be > 0, got {n_points}")
    base = base or DhlParams()
    cart_sizes = (16, 32, 64)
    dock_times = (2.0, 3.0)
    cells = len(cart_sizes) * len(dock_times)
    per_axis = max(2, math.ceil(math.sqrt(n_points / cells)))
    speeds = [
        40.0 + 180.0 * index / (per_axis - 1) for index in range(per_axis)
    ]
    # From 10 m (triangular profiles at the faster speeds) to 2 km.
    lengths = [
        10.0 + 1990.0 * index / (per_axis - 1) for index in range(per_axis)
    ]
    return tuple(
        base.with_(
            max_speed=speed,
            track_length=length,
            ssds_per_cart=ssds,
            dock_time=dock,
            undock_time=dock,
        )
        for speed in speeds
        for length in lengths
        for ssds in cart_sizes
        for dock in dock_times
    )


@dataclass(frozen=True)
class EngineTiming:
    """Wall-clock timings of one engine over the bench grid."""

    engine: str
    runs_s: tuple[float, ...]

    @property
    def best_s(self) -> float:
        return min(self.runs_s)


@dataclass(frozen=True)
class BenchReport:
    """Outcome of one sweep-engine bench: timings plus the identity check."""

    n_points: int
    dataset: str
    repeats: int
    workers: int
    timings: tuple[EngineTiming, ...]
    identical_results: bool
    skipped: tuple[tuple[str, str], ...] = ()
    """(engine, reason) pairs for engines that were not timed."""
    cache_stats: tuple[tuple[str, int], ...] = ()
    """Memo-cache counters from the cache-effectiveness probe, as
    (name, value) pairs: size/hits/misses after a cold pass plus a
    fully warm re-evaluation of the same grid."""

    def timing(self, engine: str) -> EngineTiming:
        for entry in self.timings:
            if entry.engine == engine:
                return entry
        raise ConfigurationError(f"engine {engine!r} was not benched")

    def speedup(self, engine: str, reference: str = "serial") -> float:
        """Best-run speedup of ``engine`` over the scalar reference."""
        return self.timing(reference).best_s / self.timing(engine).best_s

    @property
    def best_engine(self) -> str:
        """The fastest non-reference engine (ties keep bench order)."""
        fastest = min(
            (entry for entry in self.timings if entry.engine != "serial"),
            key=lambda entry: entry.best_s,
        )
        return fastest.engine

    @property
    def best_speedup(self) -> float:
        return self.speedup(self.best_engine)


def run_bench(
    n_points: int = DEFAULT_POINTS,
    dataset: Dataset = META_ML_LARGE,
    engines: Sequence[str] = BENCH_ENGINES,
    repeats: int = DEFAULT_REPEATS,
    workers: int | None = None,
    base: DhlParams | None = None,
) -> BenchReport:
    """Time every engine over the same grid and verify identical results.

    The memo cache is cleared before each run and disabled during it, so
    the timings measure the engines themselves, not cache hits.  The
    first run of each engine is also compared against the scalar
    reference report-for-report.
    """
    if repeats <= 0:
        raise ConfigurationError("repeats must be >= 1")
    if not engines:
        raise ConfigurationError("at least one engine is required")
    if "serial" not in engines:
        raise ConfigurationError("the 'serial' reference engine is required")
    points = bench_points(n_points, base=base)
    n_workers = workers or os.cpu_count() or 1
    skipped: tuple[tuple[str, str], ...] = ()
    if "process" in engines and (os.cpu_count() or 1) == 1 and workers is None:
        # A process pool on one core times scheduler noise plus pickling
        # overhead, not parallel speedup; record the skip instead of
        # committing a junk comparison.  Explicit --workers overrides.
        engines = tuple(engine for engine in engines if engine != "process")
        skipped = (("process", "cpu_count == 1"),)

    timings: list[EngineTiming] = []
    first_results: dict[str, tuple] = {}
    for engine in engines:
        runs: list[float] = []
        for attempt in range(repeats):
            clear_report_cache()
            started = time.perf_counter()
            reports = evaluate_reports(
                points,
                dataset=dataset,
                engine=engine,
                workers=n_workers if engine == "process" else None,
                cache=False,
            )
            runs.append(time.perf_counter() - started)
            if attempt == 0:
                first_results[engine] = reports
        timings.append(EngineTiming(engine=engine, runs_s=tuple(runs)))

    reference = first_results["serial"]
    identical = all(result == reference for result in first_results.values())

    # Cache-effectiveness probe (after the timings, which disable the
    # memo): one cold pass populates the cache, a second pass over the
    # same grid must then be all hits.  The counters land in the bench
    # payload and the fleetview timing table.
    clear_report_cache()
    evaluate_reports(points, dataset=dataset, engine="vector", cache=True)
    evaluate_reports(points, dataset=dataset, engine="vector", cache=True)
    stats = report_cache_stats()
    clear_report_cache()

    return BenchReport(
        n_points=len(points),
        dataset=dataset.name,
        repeats=repeats,
        workers=n_workers,
        timings=tuple(timings),
        identical_results=identical,
        skipped=skipped,
        cache_stats=tuple(sorted(stats.items())),
    )


def environment_info() -> dict[str, object]:
    """The hardware/software context a baseline was measured under."""
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def report_payload(report: BenchReport) -> dict[str, object]:
    """The JSON-serialisable form of a bench report (``BENCH_sweep.json``)."""
    return {
        "schema": "repro-bench-sweep/1",
        "n_points": report.n_points,
        "dataset": report.dataset,
        "repeats": report.repeats,
        "workers": report.workers,
        "identical_results": report.identical_results,
        "engines": {
            entry.engine: {
                "best_s": round(entry.best_s, 6),
                "runs_s": [round(run, 6) for run in entry.runs_s],
            }
            for entry in report.timings
        },
        "speedup": {
            "best_engine": report.best_engine,
            "best": round(report.best_speedup, 3),
            **{
                entry.engine: round(report.speedup(entry.engine), 3)
                for entry in report.timings
                if entry.engine != "serial"
            },
        },
        "skipped": dict(report.skipped),
        "report_cache_informational": dict(report.cache_stats),
        "environment": environment_info(),
    }


def write_report(report: BenchReport, path: str) -> str:
    """Write ``BENCH_sweep.json`` and return the path."""
    payload = report_payload(report)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed bench baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    ratio_floor: float = 0.5,
) -> list[str]:
    """Regression messages from comparing a fresh bench against a baseline.

    Absolute times are machine-dependent and single runs are noisy, so
    the comparison is on the invariants: results must stay
    bit-identical, the *committed baseline* must demonstrate at least
    :data:`SPEEDUP_FLOOR` over scalar (the headline claim), and the
    fresh speedup must not collapse below ``ratio_floor`` of the
    baseline's — a halving of relative performance flags a regression
    even across machines, while ordinary run-to-run jitter does not.
    """
    problems: list[str] = []
    if not payload.get("identical_results", False):
        problems.append("engines no longer produce identical results")
    speedup = float(payload.get("speedup", {}).get("best", 0.0))
    baseline_speedup = float(baseline.get("speedup", {}).get("best", 0.0))
    if baseline_speedup < SPEEDUP_FLOOR:
        problems.append(
            f"baseline speedup {baseline_speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.1f}x floor"
        )
    if baseline_speedup and speedup < baseline_speedup * ratio_floor:
        problems.append(
            f"best speedup {speedup:.2f}x regressed below "
            f"{ratio_floor:.0%} of the baseline's {baseline_speedup:.2f}x"
        )
    return problems


def bench_table(report: BenchReport) -> tuple[list[str], list[list[object]]]:
    """Headers and rows for the CLI rendering of a bench report."""
    headers = ["Engine", "Best (ms)", "Runs (ms)", "Speedup vs serial"]
    rows: list[list[object]] = []
    for entry in report.timings:
        rows.append([
            entry.engine,
            f"{entry.best_s * 1e3:.2f}",
            " ".join(f"{run * 1e3:.2f}" for run in entry.runs_s),
            f"{report.speedup(entry.engine):.2f}x",
        ])
    return headers, rows


def cache_stats_table(
    report: BenchReport,
) -> tuple[list[str], list[list[object]]]:
    """Headers and rows for the memo-cache probe counters."""
    headers = ["Cache counter", "Value"]
    rows: list[list[object]] = [
        [name, value] for name, value in report.cache_stats
    ]
    return headers, rows
