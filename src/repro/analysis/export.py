"""Export every reproduced artefact to CSV/JSON on disk.

``dhl-repro export --out results/`` writes one CSV per table, the
Fig. 6 series as JSON, and the validation record — the files a paper
artifact-evaluation committee would want to diff.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable

from ..errors import ConfigurationError
from . import tables as table_generators
from .extensions import (
    engineering_table,
    hybrid_policy_table,
    reliability_table,
    reuse_table,
    sneakernet_table,
)
from .validation import run_validation

Rows = tuple[list[str], list[list[object]]]

#: Everything exported by default: name -> generator.
EXPORTABLE_TABLES: dict[str, Callable[[], Rows]] = {
    "table1_datasets": table_generators.table1,
    "table2_devices": table_generators.table2,
    "table3_network_components": table_generators.table3,
    "fig2_route_energies": table_generators.fig2_table,
    "table4_ml_models": table_generators.table4,
    "table5_parameters": table_generators.table5,
    "table6_design_space": table_generators.table6,
    "table8a_rail_cost": table_generators.table8a,
    "table8b_lim_cost": table_generators.table8b,
    "table8c_total_cost": table_generators.table8c,
    "breakeven": table_generators.breakeven_summary,
    "intro_example": table_generators.intro_example,
    "ext_sneakernet": sneakernet_table,
    "ext_engineering": engineering_table,
    "ext_reuse": reuse_table,
    "ext_hybrid_policy": hybrid_policy_table,
    "ext_reliability": reliability_table,
}

#: Slow artefacts (minutes of simulation), exported only on request.
SLOW_TABLES: dict[str, Callable[[], Rows]] = {
    "table7a_iso_power": table_generators.table7a,
    "table7b_iso_time": table_generators.table7b,
}


def write_table_csv(path: Path, headers: list[str], rows: list[list[object]]) -> None:
    """One table to one CSV file."""
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)


def export_tables(
    out_dir: str | Path,
    include_slow: bool = False,
    include_fig6: bool = False,
    include_validation: bool = True,
) -> list[Path]:
    """Write every artefact under ``out_dir``; returns the files written.

    ``include_slow`` adds Table VII (minutes of event-driven simulation);
    ``include_fig6`` adds the Figure 6 sweep as JSON.
    """
    out = Path(out_dir)
    if out.exists() and not out.is_dir():
        raise ConfigurationError(f"{out} exists and is not a directory")
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    generators = dict(EXPORTABLE_TABLES)
    if include_slow:
        generators.update(SLOW_TABLES)
    for name, generator in generators.items():
        headers, rows = generator()
        path = out / f"{name}.csv"
        write_table_csv(path, headers, rows)
        written.append(path)

    if include_fig6:
        from ..mlsim.analysis import figure6_series

        series = figure6_series(max_tracks=4, n_budgets=5)
        payload = {
            name: [
                {"power_w": point.power_w, "time_per_iter_s": point.time_per_iter_s}
                for point in curve
            ]
            for name, curve in series.items()
        }
        path = out / "fig6_power_sweep.json"
        path.write_text(json.dumps(payload, indent=2))
        written.append(path)

    if include_validation:
        suite = run_validation(include_simulation=include_slow)
        payload = [
            {
                "section": check.section,
                "name": check.name,
                "paper": check.paper_value,
                "measured": check.measured,
                "deviation": check.deviation,
                "tolerance": check.tolerance,
                "passed": check.passed,
            }
            for check in suite.checks
        ]
        path = out / "validation.json"
        path.write_text(json.dumps(payload, indent=2))
        written.append(path)

    return written
