"""Named, seeded scenarios for the ``repro trace`` CLI artefact.

Each scenario builds a :class:`~repro.dhlsim.scheduler.DhlSystem` with a
fully-enabled :class:`~repro.obs.tracer.Tracer`, runs a bulk transfer
campaign, and hands back everything the CLI (and the tests) need: the
system, the tracer, the :class:`~repro.dhlsim.api.TransferReport` and
the scheduler-reported makespan.  Scenarios are deterministic — fault
cocktails use the ``"fixed"`` distribution so one seed reproduces one
trace byte-for-byte.

This module imports the simulator stack, so it is *not* re-exported
from :mod:`repro.obs` (which the simulator itself imports); the CLI
pulls it in lazily.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..dhlsim.api import DhlApi, TransferReport
from ..dhlsim.policy import DEFAULT_RETRY, FailoverPolicy
from ..dhlsim.reliability import ChaosInjectors, ChaosSpec, install_chaos
from ..dhlsim.scheduler import DhlSystem
from ..errors import ConfigurationError
from ..network.routes import ROUTE_B
from ..network.transfer import OpticalLink
from ..sim import Environment
from ..storage.datasets import synthetic_dataset
from ..units import TB
from .tracer import TraceLevel, Tracer

#: Fixed-distribution fault cocktail used by the fault-injected scenarios:
#: strictly periodic track breaches plus frequent in-tube stalls, some of
#: which abort mid-tube — so the trace reliably shows fault windows, failed
#: attempts and retries.
FAULT_SPEC = ChaosSpec(
    track_mttf_s=400.0,
    track_mttr_s=120.0,
    stall_prob=0.5,
    stall_time_s=30.0,
    stall_abort_prob=0.6,
    distribution="fixed",
)


@dataclass
class ScenarioResult:
    """Everything one traced scenario run produced."""

    name: str
    system: DhlSystem
    tracer: Tracer
    report: TransferReport
    chaos: ChaosInjectors | None = None

    @property
    def makespan_s(self) -> float:
        """The scheduler's reported campaign elapsed time."""
        return self.report.elapsed_s


def _build_system(name: str, shards: int, seed: int,
                  with_faults: bool, with_failover: bool) -> ScenarioResult:
    env = Environment()
    tracer = Tracer(level=TraceLevel.FULL, engine_events=True)
    failover = (
        FailoverPolicy(link=OpticalLink(route=ROUTE_B)) if with_failover else None
    )
    system = DhlSystem(
        env,
        stations_per_rack=2,
        shuttle_policy=DEFAULT_RETRY,
        retry_seed=seed,
        failover=failover,
        tracer=tracer,
    )
    env.set_tracer(tracer)
    chaos = None
    if with_faults:
        chaos = install_chaos(system, replace(FAULT_SPEC, seed=seed))
    dataset = synthetic_dataset(shards * 256 * TB, name=f"trace-{name}")
    system.load_dataset(dataset)
    api = DhlApi(system)
    report = env.run(until=api.bulk_transfer(dataset))
    if chaos is not None:
        chaos.stop()
        env.run()  # drain repair crews so no fault window is left open
    return ScenarioResult(
        name=name, system=system, tracer=tracer, report=report, chaos=chaos
    )


def _bulk(shards: int, seed: int) -> ScenarioResult:
    return _build_system("bulk", shards, seed,
                         with_faults=False, with_failover=False)


def _bulk_faults(shards: int, seed: int) -> ScenarioResult:
    return _build_system("bulk-faults", shards, seed,
                         with_faults=True, with_failover=False)


def _bulk_failover(shards: int, seed: int) -> ScenarioResult:
    return _build_system("bulk-failover", shards, seed,
                         with_faults=True, with_failover=True)


SCENARIOS = {
    "bulk": _bulk,
    "bulk-faults": _bulk_faults,
    "bulk-failover": _bulk_failover,
}


def run_scenario(name: str, shards: int = 4, seed: int = 0) -> ScenarioResult:
    """Run one named scenario with full tracing enabled."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ConfigurationError(
            f"unknown trace scenario {name!r}; known scenarios: {known}"
        ) from None
    if shards <= 0:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    return scenario(shards, seed)
