"""Resource probes: turn claim/release traffic into spans and occupancy.

A :class:`ResourceProbe` wraps one counted resource (a tube, a rack's
dock-slot pool) so every grant opens an async ``claim`` span and every
release closes it, with the occupancy level mirrored into a counter
series and a time-weighted registry metric.  Because the probe wraps
``request``/``_release`` at the instance level it sees *every* claim
path — scheduler traffic, recovery re-docks and fault-injector
maintenance windows alike — which is what makes the trace-derived leak
audit (:func:`trace_leaked_resources`) trustworthy.
"""

from __future__ import annotations

from typing import Any

from .metrics import MetricsRegistry
from .tracer import Span, Tracer

CLAIM_SPAN = "claim"
"""Span name used for resource claims (``args['resource']`` keys them)."""


class ResourceProbe:
    """Instruments one Resource-shaped object with claim spans.

    ``name`` should match the resource's key in
    :meth:`~repro.dhlsim.scheduler.DhlSystem.leaked_resources` (e.g.
    ``tube:track-0``, ``slots:1``) so trace audits line up with the
    scheduler's own accounting.
    """

    def __init__(self, resource: Any, tracer: Tracer, name: str,
                 metrics: MetricsRegistry | None = None):
        self.resource = resource
        self.tracer = tracer
        self.name = name
        self._claims: dict[int, Span] = {}
        self._level = (
            metrics.time_weighted(f"occupancy.{name}", initial=resource.count)
            if metrics is not None else None
        )
        original_request = resource.request
        original_release = resource._release
        probe = self

        def probed_request(*args, **kwargs):
            """Wrapped ``request`` that records claim spans."""
            request = original_request(*args, **kwargs)
            if request.triggered:
                probe._granted(request)
            else:
                request.callbacks.append(probe._granted)
            return request

        def probed_release(request) -> None:
            """Wrapped ``release`` that closes the matching claim span."""
            original_release(request)
            probe._released(request)

        resource.request = probed_request  # type: ignore[method-assign]
        resource._release = probed_release  # type: ignore[method-assign]

    def _granted(self, request: Any) -> None:
        span = self.tracer.span_async(CLAIM_SPAN, track=self.name,
                                      resource=self.name)
        if span.name is not None:  # a real span, not the disabled singleton
            self._claims[id(request)] = span
        self._sample_occupancy()

    def _released(self, request: Any) -> None:
        span = self._claims.pop(id(request), None)
        if span is not None:
            span.end()
        self._sample_occupancy()

    def _sample_occupancy(self) -> None:
        count = self.resource.count
        self.tracer.counter(f"occupancy.{self.name}", count)
        if self._level is not None:
            self._level.set(count)

    @property
    def open_claims(self) -> int:
        """Claims granted but not yet released, per the trace."""
        return len(self._claims)


def open_claim_counts(tracer: Tracer) -> dict[str, int]:
    """Open ``claim`` spans per resource name, derived from the trace."""
    counts: dict[str, int] = {}
    for span in tracer.spans:
        if span.name == CLAIM_SPAN:
            resource = span.args.get("resource", span.track)
            counts.setdefault(resource, 0)
            if span.open:
                counts[resource] += 1
    return counts


def trace_leaked_resources(tracer: Tracer, system: Any) -> dict[str, int]:
    """The trace's answer to :meth:`DhlSystem.leaked_resources`.

    Recomputes the scheduler's leak audit using open claim spans in
    place of live ``Resource.count`` values: tube leaks are open tube
    claims, slot leaks are open slot claims minus docked and
    out-of-service stations.  On a correctly instrumented quiescent
    system this agrees with ``system.leaked_resources()`` exactly.
    """
    open_claims = open_claim_counts(tracer)
    audit: dict[str, int] = {}
    for track in system.tracks:
        key = f"tube:{track.name}"
        audit[key] = open_claims.get(key, 0)
    for endpoint_id, rack in system.racks.items():
        key = f"slots:{endpoint_id}"
        held = open_claims.get(key, 0)
        docked = len(rack.docked_carts)
        out_of_service = sum(
            1 for station in rack.stations if station.out_of_service
        )
        audit[key] = held - docked - out_of_service
    return audit
