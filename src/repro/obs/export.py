"""Trace export: Chrome/Perfetto ``trace_event`` JSON and structured logs.

The Chrome trace-event format (loadable at https://ui.perfetto.dev or
``chrome://tracing``) wants microsecond timestamps and integer
process/thread ids.  Virtual seconds scale by 1e6; tracks map to
synthetic thread ids labelled through ``M``etadata events, so a DHL
campaign renders with one lane per cart, tube, dock, shard and fault
domain.

Also provided: a flat, time-ordered structured event log (list of
dicts / JSONL) for programmatic consumers that do not want to parse
Chrome JSON, and helpers to write either to disk.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SimulationError
from .tracer import Tracer

_US = 1e6  # seconds -> microseconds

TRACE_PROCESS_NAME = "repro"


def _track_ids(tracer: Tracer) -> dict[str, int]:
    """Stable track -> tid mapping (first-use order, 1-based)."""
    return {track: tid for tid, track in enumerate(tracer.tracks(), start=1)}


def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The tracer's records as a Chrome ``trace_event`` JSON object.

    Closed synchronous spans export as complete (``X``) events, async
    spans as ``b``/``e`` pairs, instants as ``i``, counter series as
    ``C``.  Spans still open at export time emit a lone begin event so
    leaked claims are visible in the viewer rather than dropped.
    """
    tids = _track_ids(tracer)
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": TRACE_PROCESS_NAME},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        tid = tids[span.track]
        args = dict(span.args)
        if span.async_id is not None:
            base = {
                "name": span.name, "cat": "async", "pid": 1, "tid": tid,
                "id": span.async_id,
            }
            events.append({**base, "ph": "b", "ts": span.start_s * _US,
                           "args": args})
            if not span.open:
                events.append({**base, "ph": "e", "ts": span.end_s * _US})
        elif span.open:
            events.append(
                {
                    "name": span.name, "cat": "span", "ph": "B", "pid": 1,
                    "tid": tid, "ts": span.start_s * _US,
                    "args": {**args, "open": True},
                }
            )
        else:
            events.append(
                {
                    "name": span.name, "cat": "span", "ph": "X", "pid": 1,
                    "tid": tid, "ts": span.start_s * _US,
                    "dur": span.duration_s * _US, "args": args,
                }
            )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name, "cat": "instant", "ph": "i", "pid": 1,
                "tid": tids[instant.track], "ts": instant.time_s * _US,
                "s": "t", "args": dict(instant.args),
            }
        )
    for sample in tracer.counters:
        events.append(
            {
                "name": sample.name, "cat": "counter", "ph": "C", "pid": 1,
                "tid": 0, "ts": sample.time_s * _US,
                "args": {"value": sample.value},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "engine_counters": dict(tracer.engine_counters),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Serialise :func:`to_chrome_trace` to ``path``; returns the path."""
    payload = to_chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    return path


def event_log(tracer: Tracer) -> list[dict[str, Any]]:
    """A flat, time-ordered structured log of everything recorded.

    Span entries carry ``kind="span"`` with start/end/duration (end and
    duration ``None`` while open); instants and counter samples carry
    their own kinds.  Sorted by timestamp, ties broken by kind then
    name, so the log is deterministic.
    """
    entries: list[dict[str, Any]] = []
    for span in tracer.spans:
        entries.append(
            {
                "kind": "span",
                "name": span.name,
                "track": span.track,
                "t_s": span.start_s,
                "end_s": span.end_s,
                "duration_s": None if span.open else span.duration_s,
                "args": dict(span.args),
            }
        )
    for instant in tracer.instants:
        entries.append(
            {
                "kind": "instant",
                "name": instant.name,
                "track": instant.track,
                "t_s": instant.time_s,
                "args": dict(instant.args),
            }
        )
    for sample in tracer.counters:
        entries.append(
            {
                "kind": "counter",
                "name": sample.name,
                "track": None,
                "t_s": sample.time_s,
                "args": {"value": sample.value},
            }
        )
    entries.sort(key=lambda e: (e["t_s"], e["kind"], e["name"]))
    return entries


def write_event_log(tracer: Tracer, path: str) -> str:
    """Write :func:`event_log` as JSONL (one event per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for entry in event_log(tracer):
            handle.write(json.dumps(entry))
            handle.write("\n")
    return path


def validate_chrome_trace(payload: dict[str, Any]) -> None:
    """Cheap structural check that a payload is Perfetto-loadable.

    Verifies the envelope, required per-phase fields and numeric
    timestamps.  Raises :class:`SimulationError` on the first problem.
    """
    if "traceEvents" not in payload:
        raise SimulationError("trace payload is missing 'traceEvents'")
    required = {"ph", "pid", "name"}
    for event in payload["traceEvents"]:
        missing = required - event.keys()
        if missing:
            raise SimulationError(f"trace event {event!r} missing {sorted(missing)}")
        phase = event["ph"]
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                raise SimulationError(f"trace event {event!r} has bad ts {ts!r}")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise SimulationError(f"complete event {event!r} has no duration")
        if phase in ("b", "e") and "id" not in event:
            raise SimulationError(f"async event {event!r} has no id")
