"""Span-based tracing in *virtual* simulation time.

A :class:`Tracer` records what a simulated run did — nested spans,
instant events and counter samples — stamped with the discrete-event
clock, not wall time.  The records export to Chrome/Perfetto
``trace_event`` JSON (:mod:`repro.obs.export`) so a campaign can be
inspected end-to-end: where launches queued, how long docks were held,
when fault windows opened and closed.

Cost model: instrumented code always holds a tracer object and calls
through it.  A tracer at :data:`TraceLevel.OFF` answers every call with
an early return (or the shared :data:`NULL_SPAN`), so disabled tracing
costs one attribute check per call site — measured at < 5% on the
engine benches (``benchmarks/bench_observability.py``).

Levels:

* ``OFF`` — record nothing (the default for every simulator).
* ``METRICS`` — record instants and counter samples only (cart state
  transitions, occupancy levels) but no spans.
* ``FULL`` — record everything, including nested spans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import SimulationError


class TraceLevel:
    """How much a :class:`Tracer` records."""

    OFF = 0
    METRICS = 1
    FULL = 2

    ALL = (OFF, METRICS, FULL)
    NAMES = {OFF: "off", METRICS: "metrics", FULL: "full"}


class Span:
    """One interval of virtual time on a named track.

    Usable as a context manager; :meth:`end` is idempotent so a span
    closed inside a ``finally`` (or by an interrupt unwinding a DES
    process) is never double-counted.
    """

    __slots__ = ("name", "track", "start_s", "end_s", "args", "async_id", "_tracer")

    def __init__(self, tracer: "Tracer | None", name: str, track: str,
                 start_s: float, args: dict[str, Any] | None,
                 async_id: int | None = None):
        self.name = name
        self.track = track
        self.start_s = start_s
        self.end_s: float | None = None
        self.args = args or {}
        self.async_id = async_id
        self._tracer = tracer

    @property
    def open(self) -> bool:
        """Whether the span is still unclosed."""
        return self.end_s is None

    @property
    def duration_s(self) -> float:
        """Span length in virtual seconds; raises while still open."""
        if self.end_s is None:
            raise SimulationError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s

    def end(self, **args: Any) -> None:
        """Close the span at the current virtual time (idempotent)."""
        if self.end_s is not None:
            return
        if args:
            self.args.update(args)
        tracer = self._tracer
        self.end_s = self.start_s if tracer is None else tracer.now

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()

    def __repr__(self) -> str:
        state = "open" if self.open else f"{self.duration_s:.6g}s"
        return f"<Span {self.name!r} on {self.track!r} at {self.start_s:.6g}s {state}>"


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()
    name = None
    track = None
    start_s = 0.0
    end_s = 0.0
    args: dict[str, Any] = {}
    async_id = None
    open = False
    duration_s = 0.0

    def end(self, **args: Any) -> None:
        """No-op close, mirroring :meth:`Span.end`."""
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


NULL_SPAN = _NullSpan()
"""The singleton no-op span: what ``span()`` returns below ``FULL``."""


@dataclass(frozen=True)
class Instant:
    """A point event on a track (e.g. a cart state transition)."""

    name: str
    track: str
    time_s: float
    args: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class CounterSample:
    """One sample of a named counter series."""

    name: str
    time_s: float
    value: float


class Tracer:
    """Accumulates spans, instants and counter samples in virtual time.

    ``clock`` is anything with a ``now`` attribute — normally the DES
    :class:`~repro.sim.engine.Environment`.  Spans with explicit
    timestamps (:meth:`span_at`) need no clock at all, so closed-form
    models (list scheduling, fluid approximations) can emit traces too.
    """

    def __init__(self, clock: Any = None, level: int = TraceLevel.FULL,
                 engine_events: bool = False):
        if level not in TraceLevel.ALL:
            raise SimulationError(f"unknown trace level {level!r}")
        self.level = level
        self.engine_events = engine_events
        self._clock = clock
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.counters: list[CounterSample] = []
        self.engine_counters: dict[str, int] = {
            "processes_spawned": 0,
            "process_resumes": 0,
            "events_fired": 0,
            "events_cancelled": 0,
        }
        self._async_ids = itertools.count(1)

    # -- configuration -------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any recording happens at this level."""
        return self.level > TraceLevel.OFF

    def enable(self, level: int = TraceLevel.FULL) -> None:
        """Raise the capture level (never lowers it)."""
        if level not in TraceLevel.ALL:
            raise SimulationError(f"unknown trace level {level!r}")
        self.level = max(self.level, level)

    def attach_clock(self, clock: Any) -> None:
        """Bind (or rebind) the virtual clock the records are stamped with."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current virtual time from the attached clock."""
        if self._clock is None:
            raise SimulationError(
                "tracer has no clock; attach an Environment or use span_at"
            )
        return self._clock.now

    # -- recording -----------------------------------------------------------

    def span(self, name: str, track: str = "main", **args: Any) -> "Span | _NullSpan":
        """Open a span at the current virtual time; close via ``end()``
        or by using the span as a context manager."""
        if self.level < TraceLevel.FULL:
            return NULL_SPAN
        span = Span(self, name, track, self.now, args or None)
        self.spans.append(span)
        return span

    def span_async(self, name: str, track: str = "main", **args: Any) -> "Span | _NullSpan":
        """Open an *asynchronous* span: exported as a begin/end pair so
        overlapping intervals on one track (e.g. concurrent claims on a
        multi-slot resource) render correctly and are exempt from the
        strict-nesting invariant."""
        if self.level < TraceLevel.FULL:
            return NULL_SPAN
        span = Span(self, name, track, self.now, args or None,
                    async_id=next(self._async_ids))
        self.spans.append(span)
        return span

    def span_at(self, name: str, start_s: float, end_s: float,
                track: str = "main", asynchronous: bool = False,
                **args: Any) -> "Span | _NullSpan":
        """Record a span with explicit timestamps (no clock required)."""
        if self.level < TraceLevel.FULL:
            return NULL_SPAN
        if end_s < start_s:
            raise SimulationError(
                f"span {name!r} ends before it starts ({end_s} < {start_s})"
            )
        span = Span(None, name, track, start_s, args or None,
                    async_id=next(self._async_ids) if asynchronous else None)
        span.end_s = end_s
        self.spans.append(span)
        return span

    def instant(self, name: str, track: str = "main", time_s: float | None = None,
                **args: Any) -> None:
        """Record a point event (captured from ``METRICS`` level up)."""
        if self.level < TraceLevel.METRICS:
            return
        when = self.now if time_s is None else time_s
        self.instants.append(Instant(name, track, when, tuple(args.items())))

    def counter(self, name: str, value: float, time_s: float | None = None) -> None:
        """Record one sample of a counter series (``METRICS`` level up)."""
        if self.level < TraceLevel.METRICS:
            return
        when = self.now if time_s is None else time_s
        self.counters.append(CounterSample(name, when, value))

    # -- engine hooks (called from repro.sim.engine hot paths) ---------------

    def _engine_spawn(self) -> None:
        self.engine_counters["processes_spawned"] += 1
        if self.engine_events and self.level >= TraceLevel.FULL:
            self.instant("process.spawn", track="engine")

    def _engine_resume(self) -> None:
        self.engine_counters["process_resumes"] += 1

    def _engine_fire(self, event: Any) -> None:
        self.engine_counters["events_fired"] += 1
        if self.engine_events and self.level >= TraceLevel.FULL:
            self.instant("event.fire", track="engine",
                         kind=type(event).__name__)

    def _engine_cancel(self) -> None:
        self.engine_counters["events_cancelled"] += 1

    # -- queries -------------------------------------------------------------

    def open_spans(self) -> list[Span]:
        """Spans not yet ended, oldest first."""
        return [span for span in self.spans if span.open]

    def closed_spans(self, name: str | None = None) -> list[Span]:
        """Ended spans, optionally filtered by name."""
        return [
            span for span in self.spans
            if not span.open and (name is None or span.name == name)
        ]

    def find_spans(self, name: str, track: str | None = None) -> list[Span]:
        """All spans matching a name (and optionally a track)."""
        return [
            span for span in self.spans
            if span.name == name and (track is None or span.track == track)
        ]

    def tracks(self) -> list[str]:
        """Every track name touched, in first-use order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track)
        for instant in self.instants:
            seen.setdefault(instant.track)
        return list(seen)


def span_nesting_violations(spans: Iterable[Span]) -> list[tuple[Span, Span]]:
    """Pairs of *synchronous* closed spans on one track that partially
    overlap — i.e. neither contains the other.  A correct trace has none:
    on any track, concurrent work must either nest or use async spans.
    """
    eps = 1e-12
    by_track: dict[str, list[Span]] = {}
    for span in spans:
        if span.async_id is None and not span.open:
            by_track.setdefault(span.track, []).append(span)
    violations = []
    for track_spans in by_track.values():
        ordered = sorted(track_spans, key=lambda s: (s.start_s, -(s.end_s or 0.0)))
        stack: list[Span] = []
        for span in ordered:
            while stack and stack[-1].end_s <= span.start_s + eps:
                stack.pop()
            if stack and span.end_s > stack[-1].end_s + eps:
                violations.append((stack[-1], span))
            stack.append(span)
    return violations
