"""Observability for the simulators: virtual-time tracing and metrics.

The subsystem has three pieces:

* :mod:`repro.obs.tracer` — span/instant/counter recording stamped with
  the discrete-event clock; zero-cost when disabled.
* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` and its
  primitives (``Counter``, ``Gauge``, ``Histogram``,
  ``TimeWeightedValue``), the one metrics path every simulator feeds.
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  structured event-log export.

:mod:`repro.obs.scenarios` (imported lazily by the CLI to avoid
circular imports) runs named, fault-injected scenarios under full
tracing for the ``repro trace`` command.
"""

from .export import (
    event_log,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
)
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedValue,
    UtilisationMonitor,
    merge_snapshots,
    merge_snapshots_additive,
)
from .probe import (
    CLAIM_SPAN,
    ResourceProbe,
    open_claim_counts,
    trace_leaked_resources,
)
from .tracer import (
    CounterSample,
    Instant,
    NULL_SPAN,
    Span,
    TraceLevel,
    Tracer,
    span_nesting_violations,
)

__all__ = [
    "CLAIM_SPAN",
    "Counter",
    "CounterSample",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_SPAN",
    "ResourceProbe",
    "Span",
    "TimeWeightedValue",
    "TraceLevel",
    "Tracer",
    "UtilisationMonitor",
    "event_log",
    "merge_snapshots",
    "merge_snapshots_additive",
    "open_claim_counts",
    "span_nesting_violations",
    "to_chrome_trace",
    "trace_leaked_resources",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_event_log",
]
