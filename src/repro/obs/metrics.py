"""The metrics registry: counters, gauges, histograms, time-weighted values.

One registry per simulated system gathers every scalar the run produces,
keyed by dotted metric names (``count.launches``, ``energy_j.launch``,
``occupancy.tube:track-0``).  The primitives:

* :class:`Counter` — a monotonically increasing total.
* :class:`Gauge` — a level that moves both ways; tracks its peak.
* :class:`Histogram` — sample distribution over fixed bucket bounds.
* :class:`TimeWeightedValue` — a piecewise-constant signal integrated
  against the *virtual* clock (moved here from ``repro.sim.stats``,
  which remains as a thin compatibility shim).

Snapshots export to a plain dict or CSV so benches and the CLI can
persist a run's metrics next to its trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import ConfigurationError, SimulationError

DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0, 3600.0, float("inf"),
)
"""Default histogram bucket upper bounds (seconds-flavoured)."""


@dataclass
class Counter:
    """A monotonically increasing total (events, joules, seconds)."""

    name: str
    value: float = 0.0

    def inc(self, by: float = 1.0) -> None:
        """Increase the counter; counters are monotonic by contract."""
        if by < 0:
            raise SimulationError(f"counter {self.name!r} cannot decrease (by={by})")
        self.value += by

    def snapshot(self) -> dict[str, float]:
        """The counter's exportable state."""
        return {"value": self.value}


@dataclass
class Gauge:
    """An instantaneous level that can move both ways; remembers its peak."""

    name: str
    value: float = 0.0
    peak: float = field(init=False)

    def __post_init__(self) -> None:
        self.peak = self.value

    def set(self, value: float) -> None:
        """Set the gauge, tracking the high-water mark."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def add(self, delta: float) -> None:
        """Adjust the gauge by a signed delta."""
        self.set(self.value + delta)

    def snapshot(self) -> dict[str, float]:
        """The gauge's exportable state (value and peak)."""
        return {"value": self.value, "peak": self.peak}


@dataclass
class Histogram:
    """Sample distribution over fixed upper-bound buckets.

    ``bounds`` are inclusive upper edges and must be strictly
    increasing; a final ``+inf`` bucket is appended when missing so no
    observation is ever dropped.
    """

    name: str
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(init=False)
    n: int = field(init=False, default=0)
    total: float = field(init=False, default=0.0)
    min_value: float = field(init=False, default=float("inf"))
    max_value: float = field(init=False, default=float("-inf"))

    def __post_init__(self) -> None:
        bounds = tuple(self.bounds)
        if not bounds:
            raise ConfigurationError(f"histogram {self.name!r} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {self.name!r} bounds must be strictly increasing"
            )
        if bounds[-1] != float("inf"):
            bounds = bounds + (float("inf"),)
        self.bounds = bounds
        self.counts = [0] * len(bounds)

    def observe(self, value: float) -> None:
        """Record one observation into the running stats and buckets."""
        self.n += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return

    @property
    def mean(self) -> float:
        """Mean of all observations; raises if none were recorded."""
        if self.n == 0:
            raise SimulationError(f"histogram {self.name!r} has no observations")
        return self.total / self.n

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile: the upper bound of the bucket the
        ``q``-fraction observation falls in (exact min/max at the ends)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.n == 0:
            raise SimulationError(f"histogram {self.name!r} has no observations")
        if q == 0.0:
            return self.min_value
        if q == 1.0:
            return self.max_value
        target = q * self.n
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            if running >= target:
                return min(self.bounds[index], self.max_value)
        return self.max_value

    def snapshot(self) -> dict[str, Any]:
        """The histogram's exportable state (count/sum/extrema/buckets)."""
        return {
            "count": self.n,
            "sum": self.total,
            "min": self.min_value if self.n else None,
            "max": self.max_value if self.n else None,
            "mean": self.mean if self.n else None,
            "buckets": {bound: count for bound, count
                        in zip(self.bounds, self.counts)},
        }


@dataclass
class TimeWeightedValue:
    """A piecewise-constant signal integrated over simulated time.

    ``env`` is any clock with a ``now`` attribute — normally the DES
    :class:`~repro.sim.engine.Environment`.
    """

    env: Any
    value: float = 0.0
    name: str = ""
    _last_change_s: float = field(init=False)
    _integral: float = field(default=0.0, init=False)
    _start_s: float = field(init=False)
    _peak: float = field(init=False)

    def __post_init__(self) -> None:
        self._last_change_s = self.env.now
        self._start_s = self.env.now
        self._peak = self.value

    def set(self, new_value: float) -> None:
        """Record a level change at the current simulation time."""
        self._accumulate()
        self.value = new_value
        self._peak = max(self._peak, new_value)

    def add(self, delta: float) -> None:
        """Adjust the value by a signed delta at the current clock time."""
        self.set(self.value + delta)

    def _accumulate(self) -> None:
        now = self.env.now
        if now < self._last_change_s:
            raise SimulationError("simulation clock went backwards")
        self._integral += self.value * (now - self._last_change_s)
        self._last_change_s = now

    def time_average(self) -> float:
        """Mean level from creation until now."""
        self._accumulate()
        elapsed = self.env.now - self._start_s
        if elapsed <= 0:
            raise SimulationError("no simulated time has elapsed")
        return self._integral / elapsed

    @property
    def peak(self) -> float:
        """Highest value the monitored level has reached."""
        return self._peak

    def snapshot(self) -> dict[str, float | None]:
        """The time-weighted value's exportable state."""
        elapsed = self.env.now - self._start_s
        return {
            "value": self.value,
            "peak": self._peak,
            "time_average": self.time_average() if elapsed > 0 else None,
        }


@dataclass
class UtilisationMonitor:
    """Tracks a Resource's busy fraction by wrapping request/release.

    ``resource`` is any :class:`~repro.sim.resources.Resource`-shaped
    object (``env``, ``count``, ``capacity``, ``request``/``_release``).
    """

    resource: Any
    _level: TimeWeightedValue = field(init=False)

    def __post_init__(self) -> None:
        self._level = TimeWeightedValue(self.resource.env, value=self.resource.count)
        original_request = self.resource.request
        original_release = self.resource._release
        monitor = self

        def tracked_request(*args, **kwargs):
            """Wrapped ``request`` that samples the level on grant."""
            request = original_request(*args, **kwargs)

            def on_grant(_event):
                """Sample the level once the pending claim is granted."""
                monitor._level.set(monitor.resource.count)

            if request.triggered:
                monitor._level.set(monitor.resource.count)
            else:
                request.callbacks.append(on_grant)
            return request

        def tracked_release(request) -> None:
            """Wrapped ``release`` that samples the level afterwards."""
            original_release(request)
            monitor._level.set(monitor.resource.count)

        self.resource.request = tracked_request  # type: ignore[method-assign]
        self.resource._release = tracked_release  # type: ignore[method-assign]

    def utilisation(self) -> float:
        """Time-averaged occupancy as a fraction of capacity."""
        return self._level.time_average() / self.resource.capacity

    @property
    def peak_in_use(self) -> float:
        """Most slots ever simultaneously claimed."""
        return self._level.peak


class MetricsRegistry:
    """One namespace of metrics for a simulated system.

    Metrics are created on first access (``counter(name)`` etc.) and a
    name is permanently bound to its first type — asking for the same
    name as a different kind raises, which catches typo'd categories at
    the call site instead of silently forking the series.
    """

    def __init__(self, clock: Any = None):
        self._clock = clock
        self._metrics: dict[str, Any] = {}

    def attach_clock(self, clock: Any) -> None:
        """Attach the virtual clock time-weighted metrics sample against."""
        self._clock = clock

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the named monotonic counter."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the named histogram."""
        return self._get(name, Histogram, lambda: Histogram(name, bounds))

    def time_weighted(self, name: str, initial: float = 0.0) -> TimeWeightedValue:
        """Get or create the named time-weighted value (needs a clock)."""
        if self._clock is None:
            raise SimulationError(
                f"registry has no clock; cannot create time-weighted {name!r}"
            )
        return self._get(
            name, TimeWeightedValue,
            lambda: TimeWeightedValue(self._clock, value=initial, name=name),
        )

    # -- queries / export ----------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self, prefix: str = "") -> list[str]:
        """Registered metric names, optionally filtered by dotted prefix."""
        return sorted(name for name in self._metrics if name.startswith(prefix))

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Counter values keyed by the name remainder after ``prefix``."""
        return {
            name[len(prefix):]: metric.value
            for name, metric in self._metrics.items()
            if isinstance(metric, Counter) and name.startswith(prefix)
        }

    def value(self, name: str, default: float = 0.0) -> float:
        """The scalar value of a counter/gauge, or ``default`` if absent."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        return metric.value

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every metric's state as ``{name: {type, ...fields}}``."""
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"type": type(metric).__name__.lower()}
            entry.update(metric.snapshot())
            out[name] = entry
        return out

    def to_csv_rows(self) -> list[tuple[str, str, str, str]]:
        """Flat ``(metric, type, field, value)`` rows for CSV export."""
        rows: list[tuple[str, str, str, str]] = []
        for name, entry in self.snapshot().items():
            kind = entry.pop("type")
            for key, value in entry.items():
                if isinstance(value, dict):
                    for bound, count in value.items():
                        rows.append((name, kind, f"{key}<={bound:g}", str(count)))
                else:
                    rows.append((name, kind, key, "" if value is None else str(value)))
        return rows

    def to_csv(self) -> str:
        """All metrics as one flat CSV document."""
        lines = ["metric,type,field,value"]
        for row in self.to_csv_rows():
            lines.append(",".join(str(cell) for cell in row))
        return "\n".join(lines) + "\n"


def merge_snapshots(snapshots: Iterable[dict[str, dict[str, Any]]]) -> dict[str, dict[str, Any]]:
    """Union several snapshots; later entries win on name collisions."""
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        merged.update(snapshot)
    return merged


def _merge_entry_additive(name: str, into: dict[str, Any],
                          entry: dict[str, Any]) -> None:
    kind = entry.get("type")
    if into.get("type") != kind:
        raise ConfigurationError(
            f"metric {name!r} has mixed types across snapshots "
            f"({into.get('type')!r} vs {kind!r})"
        )
    if kind == "counter":
        into["value"] += entry["value"]
    elif kind == "gauge":
        # Summing both fields makes the merged gauge an upper bound on
        # the fleet-wide level: per-pod peaks need not coincide in time.
        into["value"] += entry["value"]
        into["peak"] += entry["peak"]
    elif kind == "histogram":
        if tuple(into["buckets"]) != tuple(entry["buckets"]):
            raise ConfigurationError(
                f"histogram {name!r} has mismatched bucket bounds "
                "across snapshots"
            )
        into["count"] += entry["count"]
        into["sum"] += entry["sum"]
        for bound, count in entry["buckets"].items():
            into["buckets"][bound] += count
        for field_name, pick in (("min", min), ("max", max)):
            ours, theirs = into[field_name], entry[field_name]
            if ours is None:
                into[field_name] = theirs
            elif theirs is not None:
                into[field_name] = pick(ours, theirs)
        into["mean"] = into["sum"] / into["count"] if into["count"] else None
    else:
        raise ConfigurationError(
            f"metric {name!r}: cannot additively merge type {kind!r} "
            "(only counter/gauge/histogram snapshots are summable)"
        )


def merge_snapshots_additive(
    snapshots: Iterable[dict[str, dict[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Sum several registry snapshots into one fleet-wide snapshot.

    The sharded fleet runner exports one snapshot per pod and folds
    them here: counters add exactly; gauges sum ``value`` and ``peak``
    (an upper bound, since per-pod peaks need not be simultaneous);
    histograms add bucket counts, totals and counts pointwise and merge
    extrema.  A name bound to different metric types — or histograms
    with different bucket bounds — raises
    :class:`~repro.errors.ConfigurationError` rather than silently
    forking the series.  Non-summable kinds (time-weighted values)
    raise for the same reason.  Input snapshots are not mutated.
    """
    merged: dict[str, dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            if name not in merged:
                copied = dict(entry)
                if isinstance(copied.get("buckets"), dict):
                    copied["buckets"] = dict(copied["buckets"])
                merged[name] = copied
            else:
                _merge_entry_additive(name, merged[name], entry)
    return {name: merged[name] for name in sorted(merged)}
