"""Iso-power and iso-time comparisons plus the Fig. 6 power sweep.

Reproduces the paper's ASTRA-sim study:

* Table VII(a): fix every scheme's communication power at the single
  default DHL's average (~1.75 kW) and compare time per iteration.
* Table VII(b): fix the iteration time at the DHL's and compare the
  communication power each network scheme needs to keep up.
* Figure 6: time per iteration as a function of communication power
  budget, with discrete DHL counts and continuous link counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import DhlParams
from ..errors import ConfigurationError
from ..network.routes import FIG2_ROUTES, Route
from ..units import assert_positive
from .backends import DhlBackend, NetworkBackend
from .trainer import IterationResult, TrainingIteration, simulate_iteration


@dataclass(frozen=True)
class SchemeResult:
    """One scheme's row in a Table VII-style comparison."""

    scheme: str
    avg_power_w: float
    time_per_iter_s: float
    ratio_vs_dhl: float


def iso_power_comparison(
    iteration: TrainingIteration | None = None,
    params: DhlParams | None = None,
    routes: tuple[Route, ...] = FIG2_ROUTES,
    power_budget_w: float | None = None,
) -> list[SchemeResult]:
    """Table VII(a): time per iteration at a fixed communication power.

    The budget defaults to the single-track DHL's average power, so the
    DHL row is exactly one track (the paper's setup).
    """
    iteration = iteration or TrainingIteration()
    params = params or DhlParams()
    dhl = DhlBackend(params=params, n_tracks=1)
    budget = power_budget_w if power_budget_w is not None else dhl.power_w
    if budget < dhl.per_track_power_w:
        raise ConfigurationError(
            f"budget {budget:.1f} W cannot power a single DHL track "
            f"({dhl.per_track_power_w:.1f} W)"
        )
    dhl_backend = DhlBackend.for_power(params, budget)
    dhl_result = simulate_iteration(iteration, dhl_backend)

    rows = [
        SchemeResult(
            scheme="DHL",
            avg_power_w=dhl_backend.power_w,
            time_per_iter_s=dhl_result.time_per_iter_s,
            ratio_vs_dhl=1.0,
        )
    ]
    for route in routes:
        backend = NetworkBackend.for_power(route, budget)
        result = simulate_iteration(iteration, backend)
        rows.append(
            SchemeResult(
                scheme=route.name,
                avg_power_w=backend.power_w,
                time_per_iter_s=result.time_per_iter_s,
                ratio_vs_dhl=result.time_per_iter_s / dhl_result.time_per_iter_s,
            )
        )
    return rows


def iso_time_comparison(
    iteration: TrainingIteration | None = None,
    params: DhlParams | None = None,
    routes: tuple[Route, ...] = FIG2_ROUTES,
    tolerance: float = 1e-4,
) -> list[SchemeResult]:
    """Table VII(b): power each network scheme needs to match DHL's time.

    Solved by bisection on the (continuous) link count; iteration time is
    monotone non-increasing in links, flattening at the compute floor —
    which the DHL target always exceeds, so a solution exists.
    """
    iteration = iteration or TrainingIteration()
    params = params or DhlParams()
    dhl_backend = DhlBackend(params=params, n_tracks=1)
    dhl_result = simulate_iteration(iteration, dhl_backend)
    target = dhl_result.time_per_iter_s

    rows = [
        SchemeResult(
            scheme="DHL",
            avg_power_w=dhl_backend.power_w,
            time_per_iter_s=dhl_result.time_per_iter_s,
            ratio_vs_dhl=1.0,
        )
    ]
    for route in routes:
        n_links = _links_to_match(iteration, route, target, tolerance)
        backend = NetworkBackend(route=route, n_links=n_links)
        result = simulate_iteration(iteration, backend)
        rows.append(
            SchemeResult(
                scheme=route.name,
                avg_power_w=backend.power_w,
                time_per_iter_s=result.time_per_iter_s,
                ratio_vs_dhl=backend.power_w / dhl_backend.power_w,
            )
        )
    return rows


def _links_to_match(iteration: TrainingIteration, route: Route,
                    target_s: float, tolerance: float) -> float:
    assert_positive("target_s", target_s)

    def time_with(n_links: float) -> float:
        backend = NetworkBackend(route=route, n_links=n_links)
        return simulate_iteration(iteration, backend).time_per_iter_s

    low = 1e-3
    high = 1.0
    while time_with(high) > target_s:
        high *= 2.0
        if high > 1e9:
            raise ConfigurationError(
                f"route {route.name} cannot reach {target_s:.0f} s per iteration "
                "(target below the compute floor?)"
            )
    # Keep `low` infeasible so bisection brackets the boundary.
    while time_with(low) <= target_s:
        low /= 2.0
    while (high - low) / high > tolerance:
        mid = (low + high) / 2.0
        if time_with(mid) <= target_s:
            high = mid
        else:
            low = mid
    return high


@dataclass(frozen=True)
class SweepPoint:
    """One datapoint of a Fig. 6 curve."""

    scheme: str
    power_w: float
    time_per_iter_s: float


def dhl_power_curve(
    params: DhlParams,
    iteration: TrainingIteration | None = None,
    max_tracks: int = 16,
) -> list[SweepPoint]:
    """A Fig. 6 DHL curve: one point per discrete track count."""
    if max_tracks <= 0:
        raise ConfigurationError(f"max_tracks must be >= 1, got {max_tracks}")
    iteration = iteration or TrainingIteration()
    points = []
    for n_tracks in range(1, max_tracks + 1):
        backend = DhlBackend(params=params, n_tracks=n_tracks)
        result = simulate_iteration(iteration, backend)
        points.append(
            SweepPoint(
                scheme=params.label(),
                power_w=backend.power_w,
                time_per_iter_s=result.time_per_iter_s,
            )
        )
    return points


def network_power_curve(
    route: Route,
    power_budgets_w: list[float],
    iteration: TrainingIteration | None = None,
) -> list[SweepPoint]:
    """A Fig. 6 network curve: continuous links sized to each budget."""
    if not power_budgets_w:
        raise ConfigurationError("at least one power budget is required")
    iteration = iteration or TrainingIteration()
    points = []
    for budget in power_budgets_w:
        backend = NetworkBackend.for_power(route, budget)
        result = simulate_iteration(iteration, backend)
        points.append(
            SweepPoint(
                scheme=f"net-{route.name}",
                power_w=budget,
                time_per_iter_s=result.time_per_iter_s,
            )
        )
    return points


def figure6_series(
    iteration: TrainingIteration | None = None,
    dhl_configs: tuple[DhlParams, ...] | None = None,
    routes: tuple[Route, ...] = FIG2_ROUTES,
    max_tracks: int = 8,
    n_budgets: int = 8,
) -> dict[str, list[SweepPoint]]:
    """All Fig. 6 curves: three DHL configs plus the network schemes.

    The paper's DHL configs: DHL-100-500-128, DHL-200-500-256 (default)
    and DHL-300-500-512.  Network budgets span the same power range as
    the DHL curves.
    """
    iteration = iteration or TrainingIteration()
    if dhl_configs is None:
        dhl_configs = (
            DhlParams(max_speed=100.0, ssds_per_cart=16),
            DhlParams(),
            DhlParams(max_speed=300.0, ssds_per_cart=64),
        )
    series: dict[str, list[SweepPoint]] = {}
    min_power = float("inf")
    max_power = 0.0
    for config in dhl_configs:
        curve = dhl_power_curve(config, iteration, max_tracks=max_tracks)
        series[config.label()] = curve
        min_power = min(min_power, curve[0].power_w)
        max_power = max(max_power, curve[-1].power_w)
    budgets = [
        min_power * (max_power / min_power) ** (index / (n_budgets - 1))
        for index in range(n_budgets)
    ]
    for route in routes:
        series[f"net-{route.name}"] = network_power_curve(route, budgets, iteration)
    return series


def result_for(iteration: TrainingIteration, backend) -> IterationResult:
    """Convenience passthrough used by benches and examples."""
    return simulate_iteration(iteration, backend)
