"""Parallelisation strategies for the DLRM study (ASTRA-sim's domain).

ASTRA-sim's purpose is exploring how a training job's collectives change
with the parallelisation strategy.  DLRM training uses *hybrid*
parallelism: the huge embedding tables are model-parallel (each
iteration exchanges lookups/gradients with an all-to-all), while the
dense MLP towers are data-parallel (gradient all-reduce).  This module
costs the per-iteration collective load of the standard strategies so
the ingestion study can be composed with a communication-faithful
compute phase.

Strategies follow Mudigere et al. [72] (the paper's DLRM reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import assert_positive
from .collectives import alltoall_time, best_allreduce_time
from .workload import ClusterSpec, TrainingIteration


@dataclass(frozen=True)
class DlrmShape:
    """Communication-relevant dimensions of a DLRM training step."""

    dense_param_bytes: float
    embedding_param_bytes: float
    batch_size: int
    embedding_vector_bytes: float = 512.0
    lookups_per_sample: int = 100

    def __post_init__(self) -> None:
        assert_positive("dense_param_bytes", self.dense_param_bytes)
        assert_positive("embedding_param_bytes", self.embedding_param_bytes)
        if self.batch_size <= 0 or self.lookups_per_sample <= 0:
            raise ConfigurationError("batch size and lookups must be >= 1")
        assert_positive("embedding_vector_bytes", self.embedding_vector_bytes)

    @property
    def activation_exchange_bytes(self) -> float:
        """Per-iteration all-to-all volume: each sample's lookups travel
        to/from the embedding shards (forward + backward)."""
        return (
            2.0
            * self.batch_size
            * self.lookups_per_sample
            * self.embedding_vector_bytes
        )


def dlrm_2022_shape(batch_size: int = 65_536) -> DlrmShape:
    """Meta's 2022 DLRM: 48 TB of parameters, ~0.1% dense."""
    from ..storage.mlmodels import DLRM_2022

    total = DLRM_2022.size_bytes
    dense = total * 1e-3
    return DlrmShape(
        dense_param_bytes=dense,
        embedding_param_bytes=total - dense,
        batch_size=batch_size,
    )


@dataclass(frozen=True)
class StrategyCost:
    """Per-iteration communication and compute-stretch of one strategy.

    ``compute_stretch`` multiplies the compute phase: 1.0 for strategies
    that keep every node busy (data-parallel, hybrid), >1 for pipeline
    parallelism whose stage bubbles idle nodes.
    """

    name: str
    allreduce_s: float
    alltoall_s: float
    feasible: bool
    compute_stretch: float = 1.0
    infeasibility: str = ""

    @property
    def total_s(self) -> float:
        """Communication time only; compose with compute via
        :class:`IterationWithStrategy` for the full picture."""
        return self.allreduce_s + self.alltoall_s


def data_parallel_cost(
    shape: DlrmShape,
    cluster: ClusterSpec | None = None,
    per_node_memory_bytes: float = 2e12,
) -> StrategyCost:
    """Pure data parallelism: replicate everything, all-reduce everything.

    Infeasible for DLRM-2022-class models — a 48 TB replica does not fit
    any node — and ruinously expensive in all-reduce volume even if it
    did.  Included as the baseline ASTRA-sim studies start from.
    """
    cluster = cluster or ClusterSpec()
    assert_positive("per_node_memory_bytes", per_node_memory_bytes)
    model_bytes = shape.dense_param_bytes + shape.embedding_param_bytes
    fits = model_bytes <= per_node_memory_bytes
    allreduce = best_allreduce_time(
        n=cluster.n_nodes, size=model_bytes, bw=cluster.allreduce_link_bw
    )
    return StrategyCost(
        name="data-parallel",
        allreduce_s=allreduce,
        alltoall_s=0.0,
        feasible=fits,
        infeasibility="" if fits else (
            f"model replica of {model_bytes:.3g} B exceeds per-node memory "
            f"{per_node_memory_bytes:.3g} B"
        ),
    )


def model_parallel_cost(
    shape: DlrmShape,
    cluster: ClusterSpec | None = None,
    microbatches: int = 32,
) -> StrategyCost:
    """Pure model parallelism: shard everything, exchange activations.

    No gradient all-reduce, and the embedding all-to-all doubles (dense
    activations cross shard boundaries too) — but the dense towers now
    execute as a pipeline whose fill/drain bubbles stretch compute by
    ``1 + (stages - 1)/microbatches`` (the standard GPipe bound).  That
    stretch, not communication volume, is what rules this strategy out
    at cluster scale.
    """
    cluster = cluster or ClusterSpec()
    if microbatches <= 0:
        raise ConfigurationError(f"microbatches must be >= 1, got {microbatches}")
    alltoall = alltoall_time(
        n=cluster.n_nodes,
        size=shape.activation_exchange_bytes,
        bw=cluster.allreduce_link_bw,
    )
    stretch = 1.0 + (cluster.n_nodes - 1) / microbatches
    return StrategyCost(
        name="model-parallel",
        allreduce_s=0.0,
        alltoall_s=2.0 * alltoall,
        feasible=True,
        compute_stretch=stretch,
    )


def hybrid_parallel_cost(
    shape: DlrmShape,
    cluster: ClusterSpec | None = None,
) -> StrategyCost:
    """DLRM's production strategy: model-parallel embeddings (one
    all-to-all each way) + data-parallel dense towers (one all-reduce of
    only the dense gradients)."""
    cluster = cluster or ClusterSpec()
    allreduce = best_allreduce_time(
        n=cluster.n_nodes,
        size=shape.dense_param_bytes,
        bw=cluster.allreduce_link_bw,
    )
    alltoall = alltoall_time(
        n=cluster.n_nodes,
        size=shape.activation_exchange_bytes,
        bw=cluster.allreduce_link_bw,
    )
    return StrategyCost(
        name="hybrid",
        allreduce_s=allreduce,
        alltoall_s=alltoall,
        feasible=True,
    )


def compare_strategies(
    shape: DlrmShape | None = None,
    cluster: ClusterSpec | None = None,
) -> dict[str, StrategyCost]:
    """All three strategies on one shape, keyed by name."""
    shape = shape or dlrm_2022_shape()
    cluster = cluster or ClusterSpec()
    strategies = (
        data_parallel_cost(shape, cluster),
        model_parallel_cost(shape, cluster),
        hybrid_parallel_cost(shape, cluster),
    )
    return {strategy.name: strategy for strategy in strategies}


@dataclass(frozen=True)
class IterationWithStrategy:
    """A training iteration costed with an explicit collective phase."""

    iteration: TrainingIteration
    strategy: StrategyCost
    ingest_and_compute_s: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "ingest_and_compute_s",
            self.iteration.compute_floor_s * self.strategy.compute_stretch,
        )

    @property
    def total_s(self) -> float:
        return self.ingest_and_compute_s + self.strategy.total_s

    @property
    def communication_fraction(self) -> float:
        return self.strategy.total_s / self.total_s


def best_feasible_strategy(
    shape: DlrmShape | None = None,
    cluster: ClusterSpec | None = None,
    iteration: TrainingIteration | None = None,
) -> StrategyCost:
    """The feasible strategy minimising whole-iteration time (compute
    stretch included) — hybrid, for any DLRM-2022-scale shape."""
    iteration = iteration or TrainingIteration()
    candidates = [
        strategy
        for strategy in compare_strategies(shape, cluster).values()
        if strategy.feasible
    ]
    if not candidates:
        raise ConfigurationError("no feasible parallelisation strategy")
    return min(
        candidates,
        key=lambda strategy: IterationWithStrategy(iteration, strategy).total_s,
    )
