"""Data-ingestion backends: optical networks vs DHLs (paper Section IV-E).

Both backends answer the same two questions for the training simulator:

* what is the average communication power drawn, and
* when does each quantum of training data arrive at the cluster?

The optical backend streams continuously over ``n`` parallel links
(``n`` may be fractional, as the paper assumes); the DHL backend
delivers in cart-sized quanta, one cart per track per trip time — the
quantised behaviour ASTRA-sim's link model had to approximate.

Power accounting for DHL follows the paper's link model: one launch per
delivered cart (returns ride the second rail of a dual-rail layout or
overlap dock reads and are not charged).  Set ``charge_returns=True``
for the pessimistic Table VI accounting, which halves delivery rate and
keeps power unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Protocol

from ..core.params import DhlParams
from ..core.physics import launch_energy, trip_time
from ..errors import ConfigurationError
from ..network.routes import Route
from ..network.transfer import DEFAULT_LINK_GBPS
from ..units import assert_positive, gbps


@dataclass(frozen=True)
class Delivery:
    """A quantum of training data arriving at the cluster."""

    time_s: float
    n_bytes: float


class IngestionBackend(Protocol):
    """What the training simulator needs from a data source."""

    @property
    def name(self) -> str: ...

    @property
    def power_w(self) -> float: ...

    def deliveries(self, total_bytes: float) -> Iterator[Delivery]: ...


@dataclass(frozen=True)
class NetworkBackend:
    """``n_links`` parallel optical links on one route, streamed.

    The continuous stream is discretised into ``chunks`` arrivals for the
    event-driven simulator; with the default 1000 chunks the tail error
    is 0.1% of the ingest time.
    """

    route: Route
    n_links: float = 1.0
    link_rate: float = gbps(DEFAULT_LINK_GBPS)
    chunks: int = 1000

    def __post_init__(self) -> None:
        assert_positive("n_links", self.n_links)
        assert_positive("link_rate", self.link_rate)
        if self.chunks <= 0:
            raise ConfigurationError(f"chunks must be >= 1, got {self.chunks}")

    @property
    def name(self) -> str:
        return f"net-{self.route.name}-x{self.n_links:g}"

    @property
    def power_w(self) -> float:
        return self.route.power_w * self.n_links

    @property
    def rate(self) -> float:
        return self.link_rate * self.n_links

    def deliveries(self, total_bytes: float) -> Iterator[Delivery]:
        assert_positive("total_bytes", total_bytes)
        chunk = total_bytes / self.chunks
        for index in range(self.chunks):
            arrived = chunk * (index + 1)
            yield Delivery(time_s=arrived / self.rate, n_bytes=chunk)

    def ingest_finish_time(self, total_bytes: float) -> float:
        """Closed form: when the last byte lands."""
        return total_bytes / self.rate

    @classmethod
    def for_power(cls, route: Route, power_budget_w: float, **kwargs: object) -> "NetworkBackend":
        """The (continuous) link count a power budget affords."""
        assert_positive("power_budget_w", power_budget_w)
        return cls(route=route, n_links=power_budget_w / route.power_w, **kwargs)


@dataclass(frozen=True)
class DhlBackend:
    """``n_tracks`` parallel DHLs delivering cart-sized quanta."""

    params: DhlParams = field(default_factory=DhlParams)
    n_tracks: int = 1
    charge_returns: bool = False

    def __post_init__(self) -> None:
        if self.n_tracks <= 0:
            raise ConfigurationError(f"n_tracks must be >= 1, got {self.n_tracks}")

    @property
    def name(self) -> str:
        return f"{self.params.label()}-x{self.n_tracks}"

    @property
    def trip_time_s(self) -> float:
        return trip_time(self.params)

    @property
    def delivery_period_s(self) -> float:
        """Seconds between successive cart arrivals on one track."""
        factor = 2.0 if self.charge_returns else 1.0
        return factor * self.trip_time_s

    @property
    def per_track_power_w(self) -> float:
        """Average launch power per track (~1.75 kW at the default).

        One launch per delivery period; with returns charged there are
        two launches per (doubled) period, so power is unchanged.
        """
        return launch_energy(self.params) / self.trip_time_s

    @property
    def power_w(self) -> float:
        return self.per_track_power_w * self.n_tracks

    @property
    def cart_bytes(self) -> float:
        return self.params.storage_per_cart

    def deliveries(self, total_bytes: float) -> Iterator[Delivery]:
        """Carts arrive round-robin across tracks, one per period each.

        Track ``t``'s k-th cart lands at ``(k+1) x period`` (all tracks
        launch together; a per-track stagger would change arrival times
        by less than one period and no conclusions).
        """
        assert_positive("total_bytes", total_bytes)
        n_carts = math.ceil(total_bytes / self.cart_bytes - 1e-12)
        period = self.delivery_period_s
        remaining = total_bytes
        arrivals = []
        for index in range(n_carts):
            wave = index // self.n_tracks
            size = min(self.cart_bytes, remaining)
            remaining -= size
            arrivals.append(Delivery(time_s=(wave + 1) * period, n_bytes=size))
        return iter(arrivals)

    def ingest_finish_time(self, total_bytes: float) -> float:
        """Closed form: when the last cart docks."""
        n_carts = math.ceil(total_bytes / self.cart_bytes - 1e-12)
        waves = math.ceil(n_carts / self.n_tracks)
        return waves * self.delivery_period_s

    @classmethod
    def for_power(cls, params: DhlParams, power_budget_w: float,
                  charge_returns: bool = False) -> "DhlBackend":
        """The largest whole number of tracks within a power budget."""
        assert_positive("power_budget_w", power_budget_w)
        probe = cls(params=params, n_tracks=1, charge_returns=charge_returns)
        n_tracks = int(power_budget_w / probe.per_track_power_w + 1e-9)
        if n_tracks < 1:
            raise ConfigurationError(
                f"power budget {power_budget_w:.1f} W is below a single track's "
                f"average power {probe.per_track_power_w:.1f} W"
            )
        return cls(params=params, n_tracks=n_tracks, charge_returns=charge_returns)
