"""The paper's numerical-downscaling methodology (Section IV-E).

"For the sake of numerical stability, we linearly downscale the dataset
size and the latency for DHL by a factor of 10^7, perform the
simulation, and then upscale the resulting times by the same amount.
We justified this by verifying that the time per GD iteration is in
fact linear in the dataset size."

Our simulator has no numerical-stability problem, which lets us do what
the paper could not: run both the downscaled-and-rescaled study and the
direct one, and measure the approximation error of the methodology
itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import DhlParams
from ..errors import ConfigurationError
from ..storage.datasets import synthetic_dataset
from ..units import assert_positive
from .backends import DhlBackend, NetworkBackend
from .trainer import simulate_iteration
from .workload import TrainingIteration

PAPER_DOWNSCALE_FACTOR: float = 1e7


@dataclass(frozen=True)
class DownscaleResult:
    """Direct vs downscaled-and-rescaled iteration times."""

    factor: float
    direct_s: float
    rescaled_s: float

    @property
    def relative_error(self) -> float:
        return self.rescaled_s / self.direct_s - 1.0


def _scaled_iteration(iteration: TrainingIteration, factor: float) -> TrainingIteration:
    scaled_dataset = synthetic_dataset(
        iteration.dataset.size_bytes / factor,
        name=f"{iteration.dataset.name} /{factor:g}",
    )
    return TrainingIteration(
        dataset=scaled_dataset,
        model=iteration.model,
        cluster=iteration.cluster,
        dense_fraction=iteration.dense_fraction,
    )


@dataclass(frozen=True)
class ScaledBackend:
    """A backend with dataset quanta and latencies divided by ``factor``.

    This is precisely the paper's transformation: it operates on the
    modelled link's *schedule* (delivery times and sizes), not on the
    cart physics — which are deliberately non-linear in distance (a
    10^-7-length track would put the cart inside the LIM ramp).
    """

    inner: object
    factor: float

    @property
    def name(self) -> str:
        return f"{self.inner.name}/scaled-{self.factor:g}"

    @property
    def power_w(self) -> float:
        return self.inner.power_w

    def deliveries(self, total_bytes: float):
        from .backends import Delivery

        for delivery in self.inner.deliveries(total_bytes * self.factor):
            yield Delivery(
                time_s=delivery.time_s / self.factor,
                n_bytes=delivery.n_bytes / self.factor,
            )

    def ingest_finish_time(self, total_bytes: float) -> float:
        return self.inner.ingest_finish_time(total_bytes * self.factor) / self.factor


def downscaled_dhl_study(
    iteration: TrainingIteration | None = None,
    params: DhlParams | None = None,
    n_tracks: int = 1,
    factor: float = PAPER_DOWNSCALE_FACTOR,
) -> DownscaleResult:
    """Run the DHL iteration directly and via the paper's downscaling.

    With cart capacity, dataset and all latencies shrunk by ``factor``,
    the trip count and overlap structure are preserved exactly, so the
    rescaled result should match the direct one to float precision —
    the linearity the paper verified.
    """
    assert_positive("factor", factor)
    if factor < 1:
        raise ConfigurationError("downscale factor must be >= 1")
    iteration = iteration or TrainingIteration()
    backend = DhlBackend(params=params or DhlParams(), n_tracks=n_tracks)

    direct = simulate_iteration(iteration, backend).time_per_iter_s

    small_iteration = _scaled_iteration(iteration, factor)
    small_backend = ScaledBackend(inner=backend, factor=factor)
    small = simulate_iteration(small_iteration, small_backend)
    # Rescale the transport/compute part; the all-reduce is a real-time
    # constant the paper's trick does not scale, so add it back as-is.
    rescaled = (small.time_per_iter_s - small.allreduce_s) * factor + small.allreduce_s

    return DownscaleResult(factor=factor, direct_s=direct, rescaled_s=rescaled)


def downscaled_network_study(
    iteration: TrainingIteration | None = None,
    n_links: float = 72.9,
    factor: float = PAPER_DOWNSCALE_FACTOR,
) -> DownscaleResult:
    """The same methodology check for an optical backend."""
    assert_positive("factor", factor)
    if factor < 1:
        raise ConfigurationError("downscale factor must be >= 1")
    iteration = iteration or TrainingIteration()
    from ..network.routes import ROUTE_A0

    backend = NetworkBackend(route=ROUTE_A0, n_links=n_links)
    direct = simulate_iteration(iteration, backend).time_per_iter_s

    small_iteration = _scaled_iteration(iteration, factor)
    small = simulate_iteration(small_iteration, backend)
    rescaled = (small.time_per_iter_s - small.allreduce_s) * factor + small.allreduce_s
    return DownscaleResult(factor=factor, direct_s=direct, rescaled_s=rescaled)
