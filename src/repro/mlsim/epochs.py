"""Multi-run training studies: dataset reuse and amortised savings.

Section II-D3's economic argument: foundation models are retrained
again and again on the *same* datasets, so the DHL's per-shipment
savings recur.  This module composes the per-iteration simulator into
multi-iteration / multi-model studies and amortises the DHL's capital
cost against the recurring energy savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cost import dhl_cost
from ..core.params import DhlParams
from ..errors import ConfigurationError
from ..network.routes import Route
from ..units import KWH, assert_positive
from .backends import DhlBackend, NetworkBackend
from .trainer import IterationResult, simulate_iteration
from .workload import TrainingIteration

US_INDUSTRIAL_USD_PER_KWH: float = 0.08
"""Electricity price used to dollarise energy savings."""


@dataclass(frozen=True)
class TrainingRun:
    """A whole training job: many iterations over the same dataset."""

    iteration: TrainingIteration
    n_iterations: int

    def __post_init__(self) -> None:
        if self.n_iterations <= 0:
            raise ConfigurationError(
                f"n_iterations must be >= 1, got {self.n_iterations}"
            )


@dataclass(frozen=True)
class RunResult:
    """Aggregate communication cost of one training run."""

    per_iteration: IterationResult
    n_iterations: int
    total_time_s: float = field(init=False)
    total_comm_energy_j: float = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "total_time_s", self.per_iteration.time_per_iter_s * self.n_iterations
        )
        object.__setattr__(
            self,
            "total_comm_energy_j",
            self.per_iteration.comm_energy_j * self.n_iterations,
        )

    @property
    def total_comm_kwh(self) -> float:
        return self.total_comm_energy_j / KWH

    def electricity_cost_usd(self, usd_per_kwh: float = US_INDUSTRIAL_USD_PER_KWH) -> float:
        assert_positive("usd_per_kwh", usd_per_kwh)
        return self.total_comm_kwh * usd_per_kwh


def simulate_run(run: TrainingRun, backend, tracer=None) -> RunResult:
    """Cost a full training run; iterations are identical, so one
    simulated iteration scales linearly (asserted by the paper and by
    our tests).

    With a ``tracer``, the representative iteration is traced in detail
    (ingest/compute/allreduce spans) and the scaled-out run is stamped
    as a single clockless summary span per epoch boundary.
    """
    result = simulate_iteration(run.iteration, backend, tracer=tracer)
    if tracer is not None:
        track = f"mlsim:{backend.name}"
        for index in range(run.n_iterations):
            start = index * result.time_per_iter_s
            tracer.span_at(
                "iteration",
                start_s=start,
                end_s=start + result.time_per_iter_s,
                track=f"{track}:run",
                iteration=index,
            )
        tracer.instant(
            "run.complete",
            track=f"{track}:run",
            time_s=run.n_iterations * result.time_per_iter_s,
            iterations=run.n_iterations,
        )
    return RunResult(per_iteration=result, n_iterations=run.n_iterations)


@dataclass(frozen=True)
class ReuseStudy:
    """DHL vs one network route across repeated model trainings."""

    params: DhlParams
    route: Route
    run: TrainingRun
    models_trained: int
    dhl: RunResult
    network: RunResult
    dhl_capital_usd: float

    @property
    def energy_saving_per_model_j(self) -> float:
        return self.network.total_comm_energy_j - self.dhl.total_comm_energy_j

    @property
    def total_saving_usd(self) -> float:
        per_model = (
            self.network.electricity_cost_usd() - self.dhl.electricity_cost_usd()
        )
        return per_model * self.models_trained

    @property
    def models_to_amortise(self) -> float:
        """How many model trainings pay off the DHL's materials cost.

        Returns +inf when the DHL never pays off (it always does for the
        paper's configurations — typically within a handful of runs).
        """
        per_model_usd = (
            self.network.electricity_cost_usd() - self.dhl.electricity_cost_usd()
        )
        if per_model_usd <= 0:
            return float("inf")
        return self.dhl_capital_usd / per_model_usd

    @property
    def pays_off(self) -> bool:
        return self.models_to_amortise <= self.models_trained


def reuse_study(
    route: Route,
    params: DhlParams | None = None,
    iteration: TrainingIteration | None = None,
    iterations_per_model: int = 10,
    models_trained: int = 20,
    iso_power: bool = True,
) -> ReuseStudy:
    """The recurring-savings study for one route.

    ``iso_power``: give the network the same communication power as the
    single DHL (Table VII's framing), so savings come from time x power
    differences; otherwise a single link is used.
    """
    params = params or DhlParams()
    iteration = iteration or TrainingIteration()
    if models_trained <= 0:
        raise ConfigurationError(f"models_trained must be >= 1, got {models_trained}")
    run = TrainingRun(iteration=iteration, n_iterations=iterations_per_model)
    dhl_backend = DhlBackend(params=params)
    if iso_power:
        network_backend = NetworkBackend.for_power(route, dhl_backend.power_w)
    else:
        network_backend = NetworkBackend(route=route, n_links=1.0)
    return ReuseStudy(
        params=params,
        route=route,
        run=run,
        models_trained=models_trained,
        dhl=simulate_run(run, dhl_backend),
        network=simulate_run(run, network_backend),
        dhl_capital_usd=dhl_cost(params).total_usd,
    )
