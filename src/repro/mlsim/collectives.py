"""Collective-communication cost models (the ASTRA-sim ingredient).

ASTRA-sim's core competence is modelling collectives for distributed
training.  We implement the standard alpha-beta cost models for the
collectives DLRM training uses: ring and tree all-reduce for dense
gradients, all-to-all for embedding exchange, plus all-gather and
broadcast for completeness.  Each returns seconds.

Conventions: ``n`` ranks, message of ``size`` bytes per rank, links of
``bw`` bytes/s, per-hop latency ``alpha`` seconds.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

DEFAULT_ALPHA_S: float = 2e-6
"""Per-message latency on an NVLink/InfiniBand-class fabric."""


def _validate(n: int, size: float, bw: float, alpha: float) -> None:
    if n <= 0:
        raise ConfigurationError(f"rank count must be >= 1, got {n}")
    if size < 0:
        raise ConfigurationError(f"message size must be >= 0, got {size}")
    if bw <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bw}")
    if alpha < 0:
        raise ConfigurationError(f"alpha must be >= 0, got {alpha}")


def ring_allreduce_time(n: int, size: float, bw: float,
                        alpha: float = DEFAULT_ALPHA_S) -> float:
    """Ring all-reduce: 2(n-1) steps moving size/n bytes each.

    The bandwidth-optimal algorithm for large dense gradients.
    """
    _validate(n, size, bw, alpha)
    if n == 1 or size == 0:
        return 0.0
    steps = 2 * (n - 1)
    return steps * (alpha + (size / n) / bw)


def tree_allreduce_time(n: int, size: float, bw: float,
                        alpha: float = DEFAULT_ALPHA_S) -> float:
    """Binary-tree reduce + broadcast: latency-optimal for small messages."""
    _validate(n, size, bw, alpha)
    if n == 1 or size == 0:
        return 0.0
    depth = math.ceil(math.log2(n))
    return 2 * depth * (alpha + size / bw)


def best_allreduce_time(n: int, size: float, bw: float,
                        alpha: float = DEFAULT_ALPHA_S) -> float:
    """The better of ring and tree — what a tuned library would pick."""
    return min(
        ring_allreduce_time(n, size, bw, alpha),
        tree_allreduce_time(n, size, bw, alpha),
    )


def allgather_time(n: int, size: float, bw: float,
                   alpha: float = DEFAULT_ALPHA_S) -> float:
    """Ring all-gather: (n-1) steps of size/n bytes."""
    _validate(n, size, bw, alpha)
    if n == 1 or size == 0:
        return 0.0
    return (n - 1) * (alpha + (size / n) / bw)


def reduce_scatter_time(n: int, size: float, bw: float,
                        alpha: float = DEFAULT_ALPHA_S) -> float:
    """Ring reduce-scatter: (n-1) steps of size/n bytes."""
    return allgather_time(n, size, bw, alpha)


def alltoall_time(n: int, size: float, bw: float,
                  alpha: float = DEFAULT_ALPHA_S) -> float:
    """Pairwise-exchange all-to-all of ``size`` bytes per rank pair-set.

    DLRM's embedding lookups all-to-all activations each step; cost is
    (n-1) exchanges of size/n bytes under full bisection bandwidth.
    """
    _validate(n, size, bw, alpha)
    if n == 1 or size == 0:
        return 0.0
    return (n - 1) * (alpha + (size / n) / bw)


def broadcast_time(n: int, size: float, bw: float,
                   alpha: float = DEFAULT_ALPHA_S) -> float:
    """Binomial-tree broadcast."""
    _validate(n, size, bw, alpha)
    if n == 1 or size == 0:
        return 0.0
    depth = math.ceil(math.log2(n))
    return depth * (alpha + size / bw)
