"""Distributed-ML workload descriptors (the paper's DLRM study).

The paper trains one iteration (gradient-descent step) of a
representative Meta DLRM workload over the 29 PB dataset.  A workload
here is characterised by:

* the training dataset to ingest each iteration,
* the cluster's aggregate ingest-and-compute throughput (how fast the
  accelerators can consume training data), and
* the dense-gradient all-reduce closing the iteration.

Calibration: the paper's Table VII reports 1350 s per iteration for a
single default DHL, whose delivery finishes at ~980 s — so the cluster
is compute-bound at roughly ``29 PB / 1350 s = 21.5 TB/s``.  We model
this as a DGX-GH200-class machine: 256 accelerators consuming ~84 GB/s
each.  Absolute times scale with this constant; the iso-power/iso-time
*ratios* the paper reports are insensitive to it while ingestion is the
bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..storage.datasets import Dataset, META_ML_LARGE
from ..storage.mlmodels import DLRM_2022, MlModel
from ..units import PB, TB

CLUSTER_NODES: int = 256
"""Accelerators in the modelled training supercomputer."""

PER_NODE_CONSUME_BYTES_PER_S: float = 83.9e9
"""Per-accelerator training-data consumption rate (bytes/s), calibrated
so one DLRM iteration over 29 PB bottoms out at the paper's ~1350 s."""

NVLINK_ALLREDUCE_BW: float = 450e9
"""Per-node NVLink-class fabric bandwidth for the closing all-reduce."""

DENSE_GRADIENT_FRACTION: float = 1e-3
"""DLRM parameters are overwhelmingly sharded embeddings; only the dense
towers (~0.1% of the 44 TB model) are all-reduced every iteration."""


@dataclass(frozen=True)
class ClusterSpec:
    """The compute side of the training system."""

    n_nodes: int = CLUSTER_NODES
    per_node_consume_bw: float = PER_NODE_CONSUME_BYTES_PER_S
    allreduce_link_bw: float = NVLINK_ALLREDUCE_BW

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.per_node_consume_bw <= 0:
            raise ConfigurationError("per_node_consume_bw must be positive")
        if self.allreduce_link_bw <= 0:
            raise ConfigurationError("allreduce_link_bw must be positive")

    @property
    def aggregate_consume_bw(self) -> float:
        """Cluster-wide training-data consumption rate, bytes/s."""
        return self.n_nodes * self.per_node_consume_bw


@dataclass(frozen=True)
class TrainingIteration:
    """One gradient-descent step: ingest the dataset, compute, all-reduce."""

    dataset: Dataset = META_ML_LARGE
    model: MlModel = DLRM_2022
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    dense_fraction: float = DENSE_GRADIENT_FRACTION

    def __post_init__(self) -> None:
        if not 0 < self.dense_fraction <= 1:
            raise ConfigurationError(
                f"dense_fraction must be in (0, 1], got {self.dense_fraction}"
            )

    @property
    def compute_floor_s(self) -> float:
        """Iteration time with infinitely fast ingestion (compute-bound)."""
        return self.dataset.size_bytes / self.cluster.aggregate_consume_bw

    @property
    def dense_gradient_bytes(self) -> float:
        return self.model.size_bytes * self.dense_fraction


def dlrm_iteration(dataset_bytes: float = 29 * PB) -> TrainingIteration:
    """The paper's representative DLRM iteration over a 29 PB dataset."""
    from ..storage.datasets import synthetic_dataset

    if abs(dataset_bytes - META_ML_LARGE.size_bytes) < 1e-3:
        return TrainingIteration()
    return TrainingIteration(
        dataset=synthetic_dataset(dataset_bytes, name=f"DLRM-{dataset_bytes / TB:g}TB")
    )
