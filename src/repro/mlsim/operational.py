"""An ingestion backend driven by the operational DHL simulator.

:class:`DhlBackend` models cart arrivals analytically (one cart per
trip time).  This module instead *runs* the discrete-event simulator —
tube occupancy, dock slots, cart returns and all — and feeds the
recorded arrival schedule to the training simulator.  The two agree
exactly in the serialised regime and diverge in the documented ways
(pipelined docks, dual rail), which the tests pin down.  This is the
strongest cross-validation in the library: the ML study's conclusions
survive replacing the paper's link model with mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.params import DhlParams
from ..core.physics import launch_energy, trip_time
from ..dhlsim.api import DhlApi
from ..dhlsim.scheduler import DhlSystem
from ..errors import ConfigurationError
from ..sim import Environment, Store
from ..storage.datasets import synthetic_dataset
from ..units import assert_positive
from .backends import Delivery


@dataclass(frozen=True)
class OperationalDhlBackend:
    """Delivery schedules measured from a dhlsim run.

    ``stations_per_rack`` controls pipelining: with one station, carts
    serialise exactly as the analytical with-returns model; with more,
    returns overlap the next outbound launch and the effective delivery
    period approaches one trip time.

    Power accounting matches the operational truth: every launch
    (outbound and return) is charged, averaged over the measured
    makespan.
    """

    params: DhlParams = field(default_factory=DhlParams)
    stations_per_rack: int = 2
    dock_dwell_s: float = 0.0
    """How long a cart occupies its dock before heading home.  The
    default (0) matches the paper's accounting — SSD read time is
    excluded from transport in both the DHL and network settings; set
    it to the cart drain time to study read-limited regimes."""
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.stations_per_rack <= 0:
            raise ConfigurationError("stations_per_rack must be >= 1")
        if self.dock_dwell_s < 0:
            raise ConfigurationError("dock_dwell_s must be >= 0")

    @property
    def name(self) -> str:
        return f"{self.params.label()}-opsim-s{self.stations_per_rack}"

    def _simulate(self, total_bytes: float) -> tuple[list[Delivery], float, float]:
        """Run the operational simulator; returns (arrivals, makespan, energy)."""
        key = round(total_bytes)
        if key in self._cache:
            return self._cache[key]
        env = Environment()
        n_carts = math.ceil(total_bytes / self.params.storage_per_cart - 1e-12)
        system = DhlSystem(
            env,
            params=self.params,
            stations_per_rack=self.stations_per_rack,
            library_slots=max(16, 2 * n_carts),
        )
        dataset = synthetic_dataset(total_bytes, name="opsim-ingest")
        system.load_dataset(dataset)
        api = DhlApi(system)
        arrivals: Store = Store(env)

        def shard_worker(shard_index: int):
            station = yield api.open(dataset.name, shard_index, 1)
            cart = station.cart
            shard = cart.shards[(dataset.name, shard_index)]
            yield arrivals.put(Delivery(time_s=env.now, n_bytes=shard.size_bytes))
            if self.dock_dwell_s > 0:
                yield env.timeout(self.dock_dwell_s)
            yield api.close(cart, 1)

        for shard_index in range(n_carts):
            env.process(shard_worker(shard_index))

        def collect():
            collected = []
            for _ in range(n_carts):
                delivery = yield arrivals.get()
                collected.append(delivery)
            return collected

        collector = env.process(collect())
        deliveries = env.run(until=collector)
        env.run()  # drain the returns so energy/makespan are complete
        deliveries.sort(key=lambda delivery: delivery.time_s)
        result = (deliveries, env.now, system.total_launch_energy)
        self._cache[key] = result
        return result

    @property
    def power_w(self) -> float:
        """Average launch power of the reference 29 PB ingest."""
        from ..storage.datasets import META_ML_LARGE

        _, makespan, energy = self._simulate(META_ML_LARGE.size_bytes)
        return energy / makespan

    def deliveries(self, total_bytes: float):
        assert_positive("total_bytes", total_bytes)
        arrivals, _, _ = self._simulate(total_bytes)
        return iter(arrivals)

    def ingest_finish_time(self, total_bytes: float) -> float:
        assert_positive("total_bytes", total_bytes)
        arrivals, _, _ = self._simulate(total_bytes)
        return arrivals[-1].time_s

    def measured_energy(self, total_bytes: float) -> float:
        _, _, energy = self._simulate(total_bytes)
        return energy

    def analytic_bounds(self, total_bytes: float) -> tuple[float, float]:
        """(best, worst) analytic ingest-finish bounds for cross-checks:
        fully pipelined (one trip per cart) vs fully serialised (two)."""
        n_carts = math.ceil(total_bytes / self.params.storage_per_cart - 1e-12)
        per_trip = trip_time(self.params)
        return n_carts * per_trip, 2.0 * n_carts * per_trip

    def analytic_energy(self, total_bytes: float) -> float:
        """Every cart launches out and back: 2 launches per cart."""
        n_carts = math.ceil(total_bytes / self.params.storage_per_cart - 1e-12)
        return 2.0 * n_carts * launch_energy(self.params)
