"""Event-driven simulation of one distributed training iteration.

The simulator plays a backend's delivery schedule into a data buffer
while the cluster drains it at its aggregate consumption rate, then
closes the iteration with the dense-gradient all-reduce.  This is the
overlap model ASTRA-sim applies to the paper's DLRM study: ingestion
and compute pipeline against each other, so iteration time is set by
whichever is the bottleneck, plus the collective tail.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..sim import Environment
from .backends import IngestionBackend
from .collectives import best_allreduce_time
from .workload import TrainingIteration


@dataclass(frozen=True)
class IterationResult:
    """Outcome of one simulated training iteration."""

    backend_name: str
    time_per_iter_s: float
    ingest_finish_s: float
    compute_finish_s: float
    allreduce_s: float
    comm_power_w: float
    comm_energy_j: float

    @property
    def energy_kwh(self) -> float:
        return self.comm_energy_j / 3.6e6


def simulate_iteration(
    iteration: TrainingIteration,
    backend: IngestionBackend,
    tracer=None,
) -> IterationResult:
    """Run one gradient-descent step with the given ingestion backend.

    Three processes share the event loop: the delivery process releases
    data quanta on the backend's schedule, the compute process drains
    whatever has arrived at the cluster's aggregate rate, and the
    all-reduce fires once every byte is consumed.

    ``tracer`` (a :class:`repro.obs.Tracer`) captures the iteration as
    ingest/compute/allreduce spans on a per-backend track; the tracer's
    clock is re-bound to this iteration's private environment.
    """
    env = Environment()
    if tracer is not None:
        env.set_tracer(tracer)
    total = iteration.dataset.size_bytes
    consume_bw = iteration.cluster.aggregate_consume_bw
    track = f"mlsim:{backend.name}"

    state = {"arrived": 0.0, "ingest_finish": 0.0}

    def traced_span(name, **args):
        if tracer is None:
            return None
        return tracer.span_async(name, track=track, **args)

    def delivery_process():
        span = traced_span("ingest", bytes=total)
        now = 0.0
        for delivery in backend.deliveries(total):
            if delivery.time_s < now - 1e-9:
                raise SimulationError(
                    f"backend {backend.name} produced out-of-order deliveries"
                )
            if delivery.time_s > now:
                yield env.timeout(delivery.time_s - now)
                now = delivery.time_s
            state["arrived"] += delivery.n_bytes
            if tracer is not None:
                tracer.counter(f"ingest_bytes.{backend.name}", state["arrived"])
        state["ingest_finish"] = env.now
        if span is not None:
            span.end()
        if state["arrived"] < total * (1 - 1e-9):
            raise SimulationError(
                f"backend {backend.name} delivered {state['arrived']:.3g} of "
                f"{total:.3g} bytes"
            )

    def compute_process():
        span = traced_span("compute", bytes=total)
        consumed = 0.0
        while consumed < total * (1 - 1e-12):
            available = state["arrived"] - consumed
            if available <= 0:
                # Idle until more data lands; wake at the next event.
                next_event = env.peek()
                if next_event == float("inf"):
                    raise SimulationError(
                        "compute starved with no deliveries pending"
                    )
                yield env.timeout(next_event - env.now)
                continue
            yield env.timeout(available / consume_bw)
            consumed += available
        if span is not None:
            span.end()
        return env.now

    env.process(delivery_process())
    compute = env.process(compute_process())
    compute_finish = env.run(until=compute)

    allreduce = best_allreduce_time(
        n=iteration.cluster.n_nodes,
        size=iteration.dense_gradient_bytes,
        bw=iteration.cluster.allreduce_link_bw,
    )
    if tracer is not None:
        # The collective is closed-form, not simulated: stamp it as a
        # clockless span covering the tail after compute.
        tracer.span_at(
            "allreduce",
            start_s=compute_finish,
            end_s=compute_finish + allreduce,
            track=track,
            asynchronous=True,
            nodes=iteration.cluster.n_nodes,
        )
    time_per_iter = compute_finish + allreduce
    return IterationResult(
        backend_name=backend.name,
        time_per_iter_s=time_per_iter,
        ingest_finish_s=state["ingest_finish"],
        compute_finish_s=compute_finish,
        allreduce_s=allreduce,
        comm_power_w=backend.power_w,
        comm_energy_j=backend.power_w * time_per_iter,
    )


def iteration_time_closed_form(
    iteration: TrainingIteration,
    backend: IngestionBackend,
) -> float:
    """Fluid-approximation iteration time, for cross-validating the sim.

    ``max(ingest finish, compute floor) + allreduce`` — exact for
    constant-rate backends; the event-driven simulator additionally
    captures quantisation tails (the compute of the final cart).
    """
    ingest = backend.ingest_finish_time(iteration.dataset.size_bytes)
    allreduce = best_allreduce_time(
        n=iteration.cluster.n_nodes,
        size=iteration.dense_gradient_bytes,
        bw=iteration.cluster.allreduce_link_bw,
    )
    return max(ingest, iteration.compute_floor_s) + allreduce
