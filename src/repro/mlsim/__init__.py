"""Distributed-ML training simulator (the ASTRA-sim stand-in).

Models one DLRM training iteration — quantised or streamed data
ingestion overlapped with compute, closed by a dense-gradient
all-reduce — and the iso-power / iso-time comparisons of the paper's
Table VII and Figure 6.
"""

from .analysis import (
    SchemeResult,
    SweepPoint,
    dhl_power_curve,
    figure6_series,
    iso_power_comparison,
    iso_time_comparison,
    network_power_curve,
)
from .backends import Delivery, DhlBackend, IngestionBackend, NetworkBackend
from .downscale import (
    DownscaleResult,
    PAPER_DOWNSCALE_FACTOR,
    ScaledBackend,
    downscaled_dhl_study,
    downscaled_network_study,
)
from .epochs import (
    ReuseStudy,
    RunResult,
    TrainingRun,
    US_INDUSTRIAL_USD_PER_KWH,
    reuse_study,
    simulate_run,
)
from .collectives import (
    allgather_time,
    alltoall_time,
    best_allreduce_time,
    broadcast_time,
    reduce_scatter_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from .operational import OperationalDhlBackend
from .parallelism import (
    DlrmShape,
    IterationWithStrategy,
    StrategyCost,
    best_feasible_strategy,
    compare_strategies,
    data_parallel_cost,
    dlrm_2022_shape,
    hybrid_parallel_cost,
    model_parallel_cost,
)
from .trainer import IterationResult, iteration_time_closed_form, simulate_iteration
from .workload import ClusterSpec, TrainingIteration, dlrm_iteration

__all__ = [
    "ClusterSpec",
    "Delivery",
    "DhlBackend",
    "DlrmShape",
    "DownscaleResult",
    "PAPER_DOWNSCALE_FACTOR",
    "ScaledBackend",
    "downscaled_dhl_study",
    "downscaled_network_study",
    "IterationWithStrategy",
    "StrategyCost",
    "best_feasible_strategy",
    "compare_strategies",
    "data_parallel_cost",
    "dlrm_2022_shape",
    "hybrid_parallel_cost",
    "model_parallel_cost",
    "ReuseStudy",
    "RunResult",
    "TrainingRun",
    "US_INDUSTRIAL_USD_PER_KWH",
    "reuse_study",
    "simulate_run",
    "IngestionBackend",
    "IterationResult",
    "NetworkBackend",
    "OperationalDhlBackend",
    "SchemeResult",
    "SweepPoint",
    "TrainingIteration",
    "allgather_time",
    "alltoall_time",
    "best_allreduce_time",
    "broadcast_time",
    "dhl_power_curve",
    "dlrm_iteration",
    "figure6_series",
    "iso_power_comparison",
    "iso_time_comparison",
    "iteration_time_closed_form",
    "network_power_curve",
    "reduce_scatter_time",
    "ring_allreduce_time",
    "simulate_iteration",
    "tree_allreduce_time",
]
