"""Episode runner and synchronous batched training over the fleet env.

Training is organised in *rounds* so serial and process fan-out are
byte-identical:

1. the current policy is snapshotted with ``pickle``;
2. every episode in the round clones the snapshot, re-seeds it with
   its own episode seed, and runs to completion **learning online on
   its private clone** (the clone's updates shape its own exploration,
   nothing else);
3. the episodes' transition streams come back in canonical episode
   order and are replayed into the master policy centrally.

Because each episode's behaviour depends only on (snapshot bytes,
episode seed, env config) and the central replay order is fixed, the
master policy after any round — and hence its
:meth:`~repro.learn.policies.Policy.fingerprint` — is the same whether
episodes ran in one process or across a pool
(:func:`repro.core.sweep.map_chunks` preserves input order either
way).  The learn bench pins exactly this as a gate invariant.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from ..core.sweep import map_chunks
from ..errors import ConfigurationError
from ..fleet.controlplane import FleetReport
from .env import Action, EnvConfig, FleetEnv
from .policies import Policy

#: Stride separating per-episode seed streams within a training run.
SEED_STRIDE = 10_000


@dataclass(frozen=True)
class Transition:
    """One (s, a, r, s', done) step of one episode."""

    obs: tuple[float, ...]
    action: int
    reward: float
    next_obs: tuple[float, ...]
    done: bool


@dataclass(frozen=True)
class EpisodeResult:
    """Everything one episode produced, in step order."""

    episode_seed: int
    transitions: tuple[Transition, ...]
    total_reward: float
    kpis: dict[str, float]

    @property
    def observations(self) -> tuple[tuple[float, ...], ...]:
        return tuple(t.obs for t in self.transitions)

    @property
    def actions(self) -> tuple[int, ...]:
        return tuple(t.action for t in self.transitions)

    @property
    def rewards(self) -> tuple[float, ...]:
        return tuple(t.reward for t in self.transitions)


def report_kpis(report: FleetReport) -> dict[str, float]:
    """The bench-comparable KPI slice of one episode's fleet report."""
    return {
        "n_jobs": float(report.n_jobs),
        "served": float(report.served),
        "shed": float(report.shed),
        "failovers": float(report.failovers),
        "p99_s": report.p99_s,
        "deadline_miss_rate": report.deadline_miss_rate,
        "cache_hit_rate": report.hit_rate,
        "cache_evictions": float(report.cache_evictions),
        "launches": float(report.launches),
        "launch_energy_mj": report.launch_energy_j / 1e6,
        "failover_energy_mj": report.failover_energy_j / 1e6,
        "makespan_s": report.makespan_s,
    }


def run_episode(
    config: EnvConfig,
    policy: Policy,
    episode_seed: int,
    learn: bool = True,
) -> EpisodeResult:
    """Drive one full episode; mutates ``policy`` only when ``learn``.

    With ``learn=False`` the policy's ``update`` is never called —
    evaluation of a frozen greedy policy is exactly this with a
    :meth:`~repro.learn.policies.Policy.greedy` copy.
    """
    env = FleetEnv(config, seed=episode_seed)
    policy.seed_episode(episode_seed)
    obs = env.reset()
    transitions: list[Transition] = []
    total = 0.0
    done = False
    while not done:
        action = policy.act(obs)
        next_obs, reward, done, _ = env.step(action)
        transitions.append(
            Transition(obs, action, reward, next_obs, done)
        )
        if learn:
            policy.update(obs, action, reward, next_obs, done)
        total += reward
        obs = next_obs
    return EpisodeResult(
        episode_seed=episode_seed,
        transitions=tuple(transitions),
        total_reward=total,
        kpis=report_kpis(env.report()),
    )


def _episode_chunk(chunk: tuple) -> list[EpisodeResult]:
    """Process-pool unit: each item is ``(config, policy_blob, seed)``.

    The snapshot is re-hydrated per episode even under the serial
    engine, so an in-process run can never leak state between episodes
    that a process run would isolate — the root of the serial ==
    process byte-identity guarantee.
    """
    results = []
    for config, blob, seed in chunk:
        policy = pickle.loads(blob)
        results.append(run_episode(config, policy, seed, learn=True))
    return results


@dataclass(frozen=True)
class TrainConfig:
    """Shape of one training run."""

    rounds: int = 4
    episodes_per_round: int = 4
    seed: int = 0
    engine: str = "serial"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if self.episodes_per_round < 1:
            raise ConfigurationError("episodes_per_round must be >= 1")

    def episode_seeds(self, round_index: int) -> tuple[int, ...]:
        base = self.seed * SEED_STRIDE + round_index * self.episodes_per_round
        return tuple(
            base + offset + 1 for offset in range(self.episodes_per_round)
        )


@dataclass(frozen=True)
class TrainResult:
    """A trained policy plus its per-round learning history."""

    policy: Policy
    fingerprint: str
    episodes: tuple[EpisodeResult, ...]
    round_rewards: tuple[float, ...]
    """Mean episode reward per round, in round order."""


def train(policy: Policy, env_config: EnvConfig,
          train_config: TrainConfig | None = None) -> TrainResult:
    """Synchronous batched training; see the module docstring.

    ``policy`` is mutated in place (and also returned inside the
    result).  The returned fingerprint is engine-independent: training
    with ``engine="process"`` yields the same string as ``"serial"``.
    """
    train_config = train_config if train_config is not None else TrainConfig()
    episodes: list[EpisodeResult] = []
    round_rewards: list[float] = []
    for round_index in range(train_config.rounds):
        blob = pickle.dumps(policy)
        items = [
            (env_config, blob, seed)
            for seed in train_config.episode_seeds(round_index)
        ]
        results = map_chunks(
            _episode_chunk,
            items,
            engine=train_config.engine,
            workers=train_config.workers,
        )
        for result in results:
            for transition in result.transitions:
                policy.update(
                    transition.obs,
                    transition.action,
                    transition.reward,
                    transition.next_obs,
                    transition.done,
                )
        episodes.extend(results)
        round_rewards.append(
            sum(r.total_reward for r in results) / len(results)
        )
    return TrainResult(
        policy=policy,
        fingerprint=policy.fingerprint(),
        episodes=tuple(episodes),
        round_rewards=tuple(round_rewards),
    )


@dataclass(frozen=True)
class ComboEval:
    """One fixed (dispatch, eviction, overflow) baseline's episode."""

    label: str
    kpis: dict[str, float]


@dataclass(frozen=True)
class LearnReport:
    """Learned-vs-fixed comparison on one held-out evaluation episode.

    ``best_fixed`` minimises p99 among the fixed combos (energy breaks
    ties); the headline claim is the pair of strict inequalities the
    learn bench gates: learned p99 *and* learned launch energy below
    the best fixed combo's.
    """

    eval_seed: int
    learned_kpis: dict[str, float]
    fixed: tuple[ComboEval, ...]
    fingerprint: str
    round_rewards: tuple[float, ...]

    @property
    def best_fixed(self) -> ComboEval:
        return min(
            self.fixed,
            key=lambda combo: (
                combo.kpis["p99_s"], combo.kpis["launch_energy_mj"]
            ),
        )

    @property
    def beats_best_fixed_p99(self) -> bool:
        return self.learned_kpis["p99_s"] < self.best_fixed.kpis["p99_s"]

    @property
    def beats_best_fixed_energy(self) -> bool:
        return (
            self.learned_kpis["launch_energy_mj"]
            < self.best_fixed.kpis["launch_energy_mj"]
        )


def evaluate(
    policy: Policy,
    env_config: EnvConfig,
    eval_seed: int,
    fixed_actions: tuple[Action, ...] = (),
    fingerprint: str = "",
    round_rewards: tuple[float, ...] = (),
) -> LearnReport:
    """Score a frozen greedy copy of ``policy`` against fixed combos.

    Every baseline runs through the *same* environment, demand and
    epoch structure — only the decisions differ — so the comparison
    isolates control quality from workload.
    """
    frozen = policy.greedy()
    learned = run_episode(env_config, frozen, eval_seed, learn=False)
    fixed = []
    for action in fixed_actions:
        from .policies import FixedPolicy

        baseline = run_episode(
            env_config, FixedPolicy(action), eval_seed, learn=False
        )
        fixed.append(ComboEval(label=action.label, kpis=baseline.kpis))
    return LearnReport(
        eval_seed=eval_seed,
        learned_kpis=learned.kpis,
        fixed=tuple(fixed),
        fingerprint=fingerprint or policy.fingerprint(),
        round_rewards=round_rewards,
    )


__all__ = [
    "ComboEval",
    "EpisodeResult",
    "LearnReport",
    "SEED_STRIDE",
    "TrainConfig",
    "TrainResult",
    "Transition",
    "evaluate",
    "report_kpis",
    "run_episode",
    "train",
]
