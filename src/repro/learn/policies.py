"""Online policies over the fleet's joint action space — no heavy deps.

Four families, all seeded, picklable and cheap enough to run inside
the DES loop:

* :class:`FixedPolicy` — adapters pinning one joint action forever;
  every fixed (dispatch, eviction) combo from the fleet bench becomes
  a baseline the learners are scored against.
* :class:`EpsilonGreedyBandit` — context-free bandit over running
  action means; the simplest learner that can exploit a stationary
  best arm.
* :class:`LinUCB` — contextual bandit with per-action ridge-regression
  payoff models and optimistic exploration (uses numpy's ``solve``;
  its float reductions may differ across BLAS builds, so committed
  bench gates pin the pure-Python learners and LinUCB is exercised by
  relative regret tests instead).
* :class:`TabularQ` — epsilon-greedy tabular Q-learning over the
  discretised observation vector.  Pure-Python float arithmetic
  end-to-end, which is what makes its fingerprints byte-identical
  across machines *and* across serial/process training fan-out.

Determinism contract: every policy's behaviour is a function of its
constructor arguments, the episode seed installed by
:meth:`Policy.seed_episode`, and the exact sequence of ``act`` /
``update`` calls.  :meth:`Policy.fingerprint` hashes the learned
parameters canonically, so "same training" is checkable as a string
equality.
"""

from __future__ import annotations

import copy
import hashlib
import random
import struct

import numpy as np

from ..errors import ConfigurationError
from .env import ACTIONS, Action, N_ACTIONS, action_index

#: Bins per observation component for discretised (tabular) learners.
DEFAULT_BINS = 4


def discretise(obs: tuple[float, ...], bins: int = DEFAULT_BINS) -> tuple[int, ...]:
    """Map a normalised observation to a tuple of integer bins.

    Components are expected in ``[0, 1]`` (the :class:`FleetEnv`
    contract); values outside clamp to the edge bins, so a slightly
    out-of-range float can never invent a new state.
    """
    if bins < 1:
        raise ConfigurationError(f"bins must be >= 1, got {bins}")
    return tuple(
        min(bins - 1, max(0, int(value * bins))) for value in obs
    )


def _canonical_bytes(value) -> bytes:
    """Deterministic byte encoding of nested params for fingerprints."""
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, str):
        encoded = value.encode("utf-8")
        return b"s" + str(len(encoded)).encode() + b":" + encoded
    if isinstance(value, (tuple, list)):
        return (
            b"t" + str(len(value)).encode() + b"["
            + b"".join(_canonical_bytes(item) for item in value) + b"]"
        )
    if isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return (
            b"d" + str(len(items)).encode() + b"{"
            + b"".join(
                _canonical_bytes(key) + b"=" + _canonical_bytes(item)
                for key, item in items
            )
            + b"}"
        )
    if isinstance(value, np.ndarray):
        return (
            b"a" + str(value.shape).encode() + b":"
            + np.ascontiguousarray(value, dtype=np.float64).tobytes()
        )
    raise ConfigurationError(
        f"cannot canonically encode {type(value).__name__} for fingerprinting"
    )


def _mix_seed(seed: int, episode: int) -> int:
    """Distinct, stable per-episode stream id (no salted hashing)."""
    return (seed * 1_000_003 + episode * 7_919 + 12_345) % (2**63)


class Policy:
    """Base contract every learner and baseline adapter satisfies.

    Subclasses override :meth:`act` (and usually :meth:`update` and
    :meth:`params`).  Policies are plain picklable objects: training
    snapshots them with ``pickle`` to fan episodes out and the bench
    freezes them with :meth:`greedy` for evaluation.
    """

    n_actions: int = N_ACTIONS

    def seed_episode(self, episode_seed: int) -> None:
        """Re-seed the exploration stream for one episode."""
        self._rng = random.Random(_mix_seed(self.seed, episode_seed))

    def act(self, obs: tuple[float, ...]) -> int:
        raise NotImplementedError

    def update(self, obs, action: int, reward: float, next_obs, done: bool) -> None:
        """Absorb one transition; baselines ignore it."""

    def params(self):
        """The learned parameters in canonically encodable form."""
        return ()

    def fingerprint(self) -> str:
        """SHA-256 over the canonical parameter encoding."""
        digest = hashlib.sha256()
        digest.update(type(self).__name__.encode())
        digest.update(_canonical_bytes(self.params()))
        return digest.hexdigest()

    def greedy(self) -> "Policy":
        """A frozen copy for evaluation: no exploration, no learning."""
        frozen = copy.deepcopy(self)
        frozen.freeze()
        return frozen

    def freeze(self) -> None:
        """Disable exploration and learning in place."""

    def _argmax(self, values) -> int:
        """Deterministic argmax: ties break to the lowest action index."""
        best, best_value = 0, values[0]
        for index in range(1, len(values)):
            if values[index] > best_value:
                best, best_value = index, values[index]
        return best


class FixedPolicy(Policy):
    """Always the same joint action — the baseline adapter.

    ``FixedPolicy(Action("edf", "lru", "failover"))`` is the fleet
    bench's headline combo expressed as a policy, which is exactly how
    the learn bench scores learned against fixed control.
    """

    def __init__(self, action: Action | int):
        self.seed = 0
        self.action = (
            action_index(action) if isinstance(action, Action) else int(action)
        )
        if not 0 <= self.action < N_ACTIONS:
            raise ConfigurationError(
                f"action index {self.action} outside [0, {N_ACTIONS})"
            )

    def seed_episode(self, episode_seed: int) -> None:  # no RNG needed
        pass

    def act(self, obs) -> int:
        return self.action

    def params(self):
        return (self.action,)

    @property
    def label(self) -> str:
        return ACTIONS[self.action].label


def fixed_policy(dispatch: str, eviction: str,
                 overflow: str | None = None) -> FixedPolicy:
    """The baseline adapter for one fixed (dispatch, eviction) combo."""
    action = Action(
        dispatch=dispatch,
        eviction=eviction,
        overflow=overflow if overflow is not None else Action().overflow,
    )
    return FixedPolicy(action)


class EpsilonGreedyBandit(Policy):
    """Context-free epsilon-greedy over running per-action means."""

    def __init__(self, epsilon: float = 0.1, seed: int = 0,
                 n_actions: int = N_ACTIONS):
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(
                f"epsilon must be within [0, 1], got {epsilon}"
            )
        self.epsilon = epsilon
        self.seed = seed
        self.n_actions = n_actions
        self.counts = [0] * n_actions
        self.means = [0.0] * n_actions
        self.frozen = False
        self.seed_episode(0)

    def act(self, obs) -> int:
        if not self.frozen and self._rng.random() < self.epsilon:
            return self._rng.randrange(self.n_actions)
        return self._argmax(self.means)

    def update(self, obs, action, reward, next_obs, done) -> None:
        if self.frozen:
            return
        self.counts[action] += 1
        self.means[action] += (reward - self.means[action]) / self.counts[action]

    def freeze(self) -> None:
        self.frozen = True

    def params(self):
        return (tuple(self.counts), tuple(self.means))


class LinUCB(Policy):
    """Disjoint-arms LinUCB: ridge payoff model + optimism per action.

    Maintains ``A_a = lambda I + sum x x^T`` and ``b_a = sum r x`` per
    action; acts by ``argmax theta_a . x + alpha sqrt(x^T A_a^-1 x)``.
    Numpy-based — fine for learning quality studies and the regret
    tests, but committed cross-machine gates should prefer the
    pure-Python learners (BLAS reduction order is not part of any
    standard).
    """

    def __init__(self, dim: int, alpha: float = 1.0, ridge: float = 1.0,
                 seed: int = 0, n_actions: int = N_ACTIONS):
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim}")
        if alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0, got {alpha}")
        if ridge <= 0:
            raise ConfigurationError(f"ridge must be > 0, got {ridge}")
        self.dim = dim
        self.alpha = alpha
        self.seed = seed
        self.n_actions = n_actions
        self.A = [np.eye(dim) * ridge for _ in range(n_actions)]
        self.b = [np.zeros(dim) for _ in range(n_actions)]
        self.frozen = False
        self.seed_episode(0)

    def _features(self, obs) -> np.ndarray:
        x = np.asarray(obs, dtype=float)
        if x.shape != (self.dim,):
            raise ConfigurationError(
                f"observation has dim {x.shape}, policy expects ({self.dim},)"
            )
        return x

    def act(self, obs) -> int:
        x = self._features(obs)
        scores = []
        for action in range(self.n_actions):
            theta = np.linalg.solve(self.A[action], self.b[action])
            spread = float(x @ np.linalg.solve(self.A[action], x))
            bonus = 0.0 if self.frozen else self.alpha * (max(spread, 0.0) ** 0.5)
            scores.append(float(theta @ x) + bonus)
        return self._argmax(scores)

    def update(self, obs, action, reward, next_obs, done) -> None:
        if self.frozen:
            return
        x = self._features(obs)
        self.A[action] += np.outer(x, x)
        self.b[action] += reward * x

    def freeze(self) -> None:
        self.frozen = True

    def params(self):
        return (tuple(self.A), tuple(self.b))


class TabularQ(Policy):
    """Epsilon-greedy tabular Q-learning over discretised observations.

    The committed-gate learner: state keys are integer bin tuples, the
    table is a plain dict, and every arithmetic step is pure-Python
    IEEE-754 — so two trainings that see the same transitions in the
    same order produce byte-identical fingerprints on any platform.
    """

    def __init__(self, epsilon: float = 0.15, alpha: float = 0.3,
                 gamma: float = 0.9, bins: int = DEFAULT_BINS,
                 seed: int = 0, n_actions: int = N_ACTIONS):
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError(
                f"epsilon must be within [0, 1], got {epsilon}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be within (0, 1], got {alpha}"
            )
        if not 0.0 <= gamma < 1.0:
            raise ConfigurationError(
                f"gamma must be within [0, 1), got {gamma}"
            )
        self.epsilon = epsilon
        self.alpha = alpha
        self.gamma = gamma
        self.bins = bins
        self.seed = seed
        self.n_actions = n_actions
        self.q: dict[tuple[int, ...], list[float]] = {}
        self.frozen = False
        self.seed_episode(0)

    def _row(self, state: tuple[int, ...]) -> list[float]:
        row = self.q.get(state)
        if row is None:
            row = [0.0] * self.n_actions
            self.q[state] = row
        return row

    def act(self, obs) -> int:
        if not self.frozen and self._rng.random() < self.epsilon:
            return self._rng.randrange(self.n_actions)
        state = discretise(obs, self.bins)
        row = self.q.get(state)
        if row is None:
            return 0
        return self._argmax(row)

    def update(self, obs, action, reward, next_obs, done) -> None:
        if self.frozen:
            return
        state = discretise(obs, self.bins)
        row = self._row(state)
        if done:
            target = reward
        else:
            next_row = self.q.get(discretise(next_obs, self.bins))
            best_next = max(next_row) if next_row is not None else 0.0
            target = reward + self.gamma * best_next
        row[action] += self.alpha * (target - row[action])

    def freeze(self) -> None:
        self.frozen = True

    def params(self):
        return {
            state: tuple(row) for state, row in self.q.items()
        }


__all__ = [
    "DEFAULT_BINS",
    "EpsilonGreedyBandit",
    "FixedPolicy",
    "LinUCB",
    "Policy",
    "TabularQ",
    "discretise",
    "fixed_policy",
]
