"""Online learned control over the fleet — gym on the DES clock.

The paper's §V fleet evaluation picks dispatch and caching strategies
by hand; this package frames those choices as an online learning
problem over the simulator (the PyDCM direction from PAPERS.md):

* :mod:`repro.learn.env` — :class:`FleetEnv`, a gym-style
  ``reset/step/observe`` environment advancing the fleet in fixed
  decision epochs, with the control plane's dispatch / eviction /
  overflow decisions routed through
  :class:`~repro.fleet.controlplane.ControlHooks` (no copied control
  loop) and a normalised observation vector built from queue depths,
  cache hit rates, breaker health, deadline slack and streaming SLA
  windows;
* :mod:`repro.learn.policies` — seeded, picklable learners with no
  heavy dependencies: fixed-action baselines, epsilon-greedy and
  LinUCB bandits, tabular Q-learning over discretised observations;
* :mod:`repro.learn.train` — synchronous batched episode fan-out over
  :func:`repro.core.sweep.map_chunks` with serial == process
  byte-identical policy fingerprints, greedy freezing, and the
  learned-vs-fixed :class:`~repro.learn.train.LearnReport`;
* :mod:`repro.learn.bench` — the ``repro learn`` artefact: trains on
  a hot-set-rotated, scanner-polluted demand trace and gates, in
  ``BENCH_learn.json``, that the learned policy beats the best fixed
  (dispatch, eviction) combo on p99 latency *and* launch energy.
"""

from .env import (
    ACTIONS,
    Action,
    AdaptiveHooks,
    DISPATCH_CHOICES,
    ENERGY_SCALE_J,
    EVICTION_CHOICES,
    EnvConfig,
    FleetEnv,
    N_ACTIONS,
    OVERFLOW_CHOICES,
    action_index,
    episode_jobs,
    fixed_episode_report,
    rotate_records,
    run_fleet_with_action,
)
from .policies import (
    DEFAULT_BINS,
    EpsilonGreedyBandit,
    FixedPolicy,
    LinUCB,
    Policy,
    TabularQ,
    discretise,
    fixed_policy,
)
from .train import (
    ComboEval,
    EpisodeResult,
    LearnReport,
    TrainConfig,
    TrainResult,
    Transition,
    evaluate,
    run_episode,
    train,
)

__all__ = [
    "ACTIONS",
    "Action",
    "AdaptiveHooks",
    "ComboEval",
    "DEFAULT_BINS",
    "DISPATCH_CHOICES",
    "ENERGY_SCALE_J",
    "EVICTION_CHOICES",
    "EnvConfig",
    "EpisodeResult",
    "EpsilonGreedyBandit",
    "FixedPolicy",
    "FleetEnv",
    "LearnReport",
    "LinUCB",
    "N_ACTIONS",
    "OVERFLOW_CHOICES",
    "Policy",
    "TabularQ",
    "TrainConfig",
    "TrainResult",
    "Transition",
    "action_index",
    "discretise",
    "episode_jobs",
    "evaluate",
    "fixed_episode_report",
    "fixed_policy",
    "rotate_records",
    "run_episode",
    "run_fleet_with_action",
    "train",
]
