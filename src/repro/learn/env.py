"""Gym-style fleet environment on the DES clock.

:class:`FleetEnv` wraps one fleet run (:mod:`repro.fleet.controlplane`)
in the classic ``reset() / step(action) / observe()`` loop.  Virtual
time advances in fixed *decision epochs*: each ``step`` installs the
chosen joint action into an :class:`AdaptiveHooks` instance — the
:class:`~repro.fleet.controlplane.ControlHooks` subclass that answers
the control plane's three decision points — runs the simulation one
epoch forward, and returns the next observation plus a reward built
from that epoch's rolling SLA window and launch-energy delta.

Nothing about the control loop is copied: the hooks *are* the fleet's
own decision points, so a fixed action exactly reproduces the
corresponding fixed (dispatch, cache) scenario, decision for decision
(a property the tests pin).  Everything is deterministic for a fixed
``(config, seed)``: the workload, the observation/action/reward traces
and the final :class:`~repro.fleet.controlplane.FleetReport` are all
bit-reproducible across serial and process episode fan-out.

The action space is factored — the paper's three hand-picked knobs,
now chosen per epoch:

* **dispatch** — queue order among ``fcfs`` / ``sjf`` / ``edf``;
* **eviction** — cache victim selection among ``lru`` / ``lfu`` /
  ``ttl`` (via :func:`repro.fleet.cache.select_victim`);
* **overflow** — what a saturated lane does with an overflowing job:
  fail it over to the optical network or shed it.

Observations are a flat, normalised ``tuple`` of floats in ``[0, 1]``
(see :meth:`FleetEnv.obs_names`): per-lane queue depths, per-lane cache
hit rates, per-lane breaker health, normalised trace progress (virtual
time over the scenario horizon — the time-of-day signal that lets a
learner track regime changes), mean deadline slack of queued jobs, and
the previous epoch's windowed p99 / deadline-miss / launch-energy
readings from the streaming SLA accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..errors import ConfigurationError
from ..fleet.cache import EVICTION_POLICIES, select_victim
from ..fleet.controlplane import (
    POLICIES,
    ControlHooks,
    ControlPlane,
    FleetReport,
    FleetScenario,
    _bind_jobs,
    _policy_key,
    run_fleet,
)
from ..fleet.sla import ClassSla, Outcome
from ..fleet.topology import FleetTopology
from ..sim import Environment
from ..traffic.replay import bound_jobs
from ..traffic.schema import TraceRecord
from ..traffic.synth import TraceSpec, synthesise
from ..units import assert_positive

#: The three factored action dimensions, in index order.
DISPATCH_CHOICES = POLICIES
EVICTION_CHOICES = EVICTION_POLICIES
OVERFLOW_CHOICES = (str(Outcome.FAILOVER), str(Outcome.SHED))

#: Energy normalisation for observations/rewards: 1 MJ per epoch reads
#: as "fully launch-bound" — the scale of the fleet bench's uncached
#: baseline.
ENERGY_SCALE_J = 1.0e6


@dataclass(frozen=True)
class Action:
    """One joint decision: dispatch order, eviction policy, overflow."""

    dispatch: str = "fcfs"
    eviction: str = "lru"
    overflow: str = OVERFLOW_CHOICES[0]

    def __post_init__(self) -> None:
        if self.dispatch not in DISPATCH_CHOICES:
            raise ConfigurationError(
                f"dispatch must be one of {DISPATCH_CHOICES}, "
                f"got {self.dispatch!r}"
            )
        if self.eviction not in EVICTION_CHOICES:
            raise ConfigurationError(
                f"eviction must be one of {EVICTION_CHOICES}, "
                f"got {self.eviction!r}"
            )
        if self.overflow not in OVERFLOW_CHOICES:
            raise ConfigurationError(
                f"overflow must be one of {OVERFLOW_CHOICES}, "
                f"got {self.overflow!r}"
            )

    @property
    def label(self) -> str:
        return f"{self.dispatch}+{self.eviction}+{self.overflow}"


#: The full joint action space in lexicographic index order; action
#: integers everywhere in :mod:`repro.learn` index into this tuple.
ACTIONS: tuple[Action, ...] = tuple(
    Action(dispatch, eviction, overflow)
    for dispatch in DISPATCH_CHOICES
    for eviction in EVICTION_CHOICES
    for overflow in OVERFLOW_CHOICES
)

N_ACTIONS = len(ACTIONS)

_ACTION_INDEX = {action: index for index, action in enumerate(ACTIONS)}


def action_index(action: Action) -> int:
    """The integer id of a joint action (inverse of ``ACTIONS[i]``)."""
    try:
        return _ACTION_INDEX[action]
    except KeyError:
        raise ConfigurationError(f"unknown action {action!r}") from None


class AdaptiveHooks(ControlHooks):
    """Control-plane decisions driven by a mutable current action.

    :meth:`set_action` swaps all three decision rules between epochs;
    within an epoch the hooks are a pure function of the installed
    action and lane state, so a constant action reproduces the
    corresponding fixed scenario exactly: dispatch uses the same
    min-key orders, eviction ranks candidates through
    :func:`repro.fleet.cache.select_victim` (the very function
    :meth:`RackCache.evictable` delegates to), and overflow reproduces
    the failover-when-links-exist default when told to fail over.
    """

    def __init__(self, action: Action | None = None):
        self.action = action if action is not None else ACTIONS[0]
        self._keys = {policy: _policy_key(policy) for policy in POLICIES}
        self._ttl_s = 600.0

    def bind(self, plane: ControlPlane) -> None:
        super().bind(plane)
        cache = plane.scenario.cache
        if cache is not None:
            self._ttl_s = cache.ttl_s

    def set_action(self, action: Action) -> None:
        self.action = action

    def pick_dispatch(self, lane, pending):
        return min(pending, key=self._keys[self.action.dispatch])

    def pick_eviction(self, lane):
        return select_victim(
            lane.cache.idle_entries(),
            self.action.eviction,
            self._ttl_s,
            self.plane.env.now,
        )

    def pick_overflow(self, fjob, lane, can_failover):
        if not can_failover:
            return Outcome.SHED
        return self.action.overflow


@dataclass(frozen=True)
class EnvConfig:
    """A complete, picklable description of one learnable fleet task.

    ``trace=None`` drives episodes with the scenario's seeded synthetic
    workload; a :class:`~repro.traffic.synth.TraceSpec` swaps in
    internet-scale demand (synthesised lazily, streamed through the
    control plane).  ``rotation_s`` optionally applies a deterministic
    hot-set rotation to trace records from that virtual time on:
    dataset indices shift by ``rotation_shift`` (mod catalog size),
    the non-stationarity that separates adaptive from fixed eviction.
    """

    scenario: FleetScenario
    epoch_s: float = 120.0
    trace: TraceSpec | None = None
    rotation_s: float | None = None
    rotation_shift: int = 0
    rotation_steps: int = 1
    max_epochs: int = 10_000
    p99_weight: float = 1.0
    energy_weight: float = 1.0
    miss_weight: float = 1.0
    backlog_weight: float = 1.0
    """Weight of the queue-age penalty: the mean normalised wait of
    jobs still pending at the epoch boundary.  Windowed p99 alone is
    gameable — a starvation-prone order (shortest-job-first under
    overload) completes its victims in someone else's window — so the
    backlog term charges every epoch a starved job stays queued."""
    p99_scale_s: float | None = None
    """Latency that saturates the p99 penalty; ``None`` uses
    ``epoch_s``."""

    def __post_init__(self) -> None:
        assert_positive("epoch_s", self.epoch_s)
        if self.max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")
        if self.rotation_s is not None and self.rotation_s <= 0:
            raise ConfigurationError("rotation_s must be > 0")
        if self.rotation_steps < 1:
            raise ConfigurationError("rotation_steps must be >= 1")
        if self.p99_scale_s is not None:
            assert_positive("p99_scale_s", self.p99_scale_s)

    @property
    def p99_scale(self) -> float:
        return self.p99_scale_s if self.p99_scale_s is not None else self.epoch_s


def rotate_records(
    records: Iterator[TraceRecord],
    n_datasets: int,
    rotation_s: float,
    shift: int,
    steps: int = 1,
) -> Iterator[TraceRecord]:
    """Shift dataset indices by ``shift`` per elapsed ``rotation_s``.

    A pure, deterministic stream transform: a record arriving in the
    ``k``-th rotation window (``k = arrival_s // rotation_s``, capped
    at ``steps``) has its dataset index shifted by ``k * shift`` (mod
    catalog size).  ``steps=1`` is the classic one-shot hot-set
    rotation — stable, then shifted once for good at ``rotation_s`` —
    which makes frequency-based eviction squat on stale entries while
    recency-based eviction adapts.  Larger ``steps`` turn the start of
    the trace into a *drift* regime (the hot set moves every window
    until the cap freezes it), the phase structure the learn bench
    uses: no fixed victim policy is best in both a drifting and a
    polluted-but-stable regime.
    """
    for record in records:
        applied = min(int(record.arrival_s // rotation_s), steps)
        if applied <= 0:
            yield record
            continue
        index = int(record.dataset.rsplit("-", 1)[1])
        rotated = f"ds-{(index + applied * shift) % n_datasets:03d}"
        yield replace(record, dataset=rotated)


def episode_jobs(config: EnvConfig, scenario: FleetScenario,
                 topology: FleetTopology):
    """The lazy pre-bound job stream one episode consumes.

    Synthetic scenarios bind through the control plane's own
    :func:`~repro.fleet.controlplane._bind_jobs`; trace-driven ones
    synthesise records on the fly (optionally hot-set-rotated) and bind
    them with :func:`repro.traffic.replay.bound_jobs` — the same entry
    points production runs use, so the environment observes exactly the
    demand a plain replay would.
    """
    if config.trace is None:
        return _bind_jobs(scenario, topology)
    trace = replace(config.trace, seed=scenario.seed)
    records: Iterator[TraceRecord] = synthesise(trace)
    if config.rotation_s is not None:
        records = rotate_records(
            records,
            scenario.catalog.n_datasets,
            config.rotation_s,
            config.rotation_shift,
            config.rotation_steps,
        )
    return bound_jobs(
        records, dict(scenario.targets), scenario.catalog.dataset_bytes
    )


_BREAKER_OBS = {"closed": 0.0, "half_open": 0.5, "open": 1.0}


class FleetEnv:
    """One fleet run as a sequential decision problem.

    ``seed`` overrides the scenario's (and trace's) seed, so one config
    fans out into arbitrarily many distinct, reproducible episodes.

    The usual loop::

        env = FleetEnv(config, seed=7)
        obs = env.reset()
        while True:
            obs, reward, done, info = env.step(policy.act(obs))
            if done:
                break
        report = env.report()
    """

    def __init__(self, config: EnvConfig, seed: int | None = None):
        self.config = config
        self.seed = seed if seed is not None else config.scenario.seed
        self.scenario = replace(config.scenario, seed=self.seed)
        self._max_deadline = max(
            [target.deadline_s for _, target in self.scenario.targets]
            or [3600.0]
        )
        self._started = False
        self._done = True
        self._obs: tuple[float, ...] = ()
        self.epoch = 0

    # -- space descriptions ------------------------------------------------------

    @property
    def n_actions(self) -> int:
        return N_ACTIONS

    @property
    def actions(self) -> tuple[Action, ...]:
        return ACTIONS

    def obs_names(self) -> tuple[str, ...]:
        """Stable component names for the observation vector."""
        lanes = [
            f"t{track}:r{rack}"
            for track, rack in sorted(self._lane_keys())
        ]
        return tuple(
            [f"queue_depth[{name}]" for name in lanes]
            + [f"hit_rate[{name}]" for name in lanes]
            + [f"breaker[{name}]" for name in lanes]
            + ["progress", "deadline_slack", "window_p99",
               "window_miss_rate", "window_energy"]
        )

    def _lane_keys(self):
        spec = self.scenario.spec
        return [
            (track, rack)
            for track in range(spec.n_tracks)
            for rack in range(spec.racks_per_track)
        ]

    # -- episode lifecycle -------------------------------------------------------

    def reset(self) -> tuple[float, ...]:
        """Build a fresh fleet and return the initial observation."""
        self.sim = Environment()
        self.topology = FleetTopology(
            self.sim, self.scenario.spec, self.scenario.catalog
        )
        self.hooks = AdaptiveHooks()
        self.plane = ControlPlane(
            self.sim, self.topology, self.scenario, hooks=self.hooks
        )
        self.plane.start_workers()
        self.sim.process(
            self.plane._arrivals(
                iter(episode_jobs(self.config, self.scenario, self.topology))
            )
        )
        self.epoch = 0
        self._last_energy = 0.0
        self._started = True
        self._done = False
        self._obs = self._observe(window=None, energy_delta_j=0.0)
        return self._obs

    def step(
        self, action: int | Action
    ) -> tuple[tuple[float, ...], float, bool, dict]:
        """Install ``action``, advance one epoch, return the transition."""
        if not self._started:
            raise ConfigurationError("call reset() before step()")
        if self._done:
            raise ConfigurationError(
                "episode is over; call reset() for a new one"
            )
        act = self._coerce(action)
        self.hooks.set_action(act)
        self.epoch += 1
        self.sim.run(until=self.epoch * self.config.epoch_s)
        window = self.plane.sla.take_window(horizon_s=self.config.epoch_s)
        energy = self.topology.total_launch_energy_j
        energy_delta = energy - self._last_energy
        self._last_energy = energy
        reward = self._reward(window, energy_delta, self._backlog_age())
        self._done = bool(self.plane.drained) or (
            self.epoch >= self.config.max_epochs
        )
        self._obs = self._observe(window, energy_delta)
        info = {
            "now_s": self.sim.now,
            "epoch": self.epoch,
            "action": act,
            "window_jobs": window.n_jobs,
            "window_p99_s": window.p99_s,
            "energy_delta_j": energy_delta,
        }
        return self._obs, reward, self._done, info

    def observe(self) -> tuple[float, ...]:
        """The current observation (as returned by the last transition)."""
        if not self._started:
            raise ConfigurationError("call reset() before observe()")
        return self._obs

    def report(self) -> FleetReport:
        """The completed episode's full fleet report."""
        if not self._done or not self._started:
            raise ConfigurationError(
                "report() is only available once the episode is done"
            )
        return self.plane._build_report()

    # -- internals ---------------------------------------------------------------

    def _coerce(self, action: int | Action) -> Action:
        if isinstance(action, Action):
            return action
        if isinstance(action, (int,)) and not isinstance(action, bool):
            if 0 <= action < N_ACTIONS:
                return ACTIONS[action]
            raise ConfigurationError(
                f"action index {action} outside [0, {N_ACTIONS})"
            )
        raise ConfigurationError(
            f"action must be an Action or an index, got {action!r}"
        )

    def _backlog_age(self) -> float:
        """Mean normalised wait of jobs still queued right now."""
        now = self.sim.now
        waits = [
            min((now - fjob.job.arrival_s) / self.config.p99_scale, 1.0)
            for lane in self.plane.lanes.values()
            for fjob in lane.queue.pending
        ]
        return sum(waits) / len(waits) if waits else 0.0

    def _reward(
        self, window: ClassSla, energy_delta_j: float, backlog_age: float
    ) -> float:
        config = self.config
        if window.n_jobs == 0:
            p99_pen = 0.0
            miss_pen = 0.0
        elif window.n_completed == 0:
            p99_pen = 1.0
            miss_pen = window.deadline_miss_rate
        else:
            p99_pen = min(window.p99_s, config.p99_scale) / config.p99_scale
            miss_pen = window.deadline_miss_rate
        energy_pen = min(energy_delta_j / ENERGY_SCALE_J, 1.0)
        return -(
            config.p99_weight * p99_pen
            + config.energy_weight * energy_pen
            + config.miss_weight * miss_pen
            + config.backlog_weight * backlog_age
        )

    def _observe(
        self, window: ClassSla | None, energy_delta_j: float
    ) -> tuple[float, ...]:
        plane = self.plane
        admission = self.scenario.admission
        now = self.sim.now
        lanes = [plane.lanes[key] for key in sorted(plane.lanes)]
        depths = [
            min(lane.queue.depth / admission.max_queue_depth, 1.0)
            for lane in lanes
        ]
        hits = [
            lane.cache.hit_rate if lane.cache is not None else 0.0
            for lane in lanes
        ]
        breakers = []
        for key in sorted(plane.lanes):
            monitor = plane.monitors.get(key)
            breakers.append(
                _BREAKER_OBS[monitor.breaker.state]
                if monitor is not None
                else 0.0
            )
        pending = [
            fjob for lane in lanes for fjob in lane.queue.pending
        ]
        if pending:
            slacks = [
                max(-1.0, min((f.deadline_at - now) / self._max_deadline, 1.0))
                for f in pending
            ]
            slack = (sum(slacks) / len(slacks) + 1.0) / 2.0
        else:
            slack = 1.0
        if window is None or window.n_jobs == 0:
            p99 = 0.0
            miss = 0.0
        elif window.n_completed == 0:
            p99 = 1.0
            miss = window.deadline_miss_rate
        else:
            p99 = min(window.p99_s, self.config.p99_scale) / self.config.p99_scale
            miss = window.deadline_miss_rate
        energy = min(energy_delta_j / ENERGY_SCALE_J, 1.0)
        progress = min(now / self.scenario.horizon_s, 1.0)
        return tuple(
            depths + hits + breakers + [progress, slack, p99, miss, energy]
        )


def fixed_episode_report(
    config: EnvConfig, action: Action, seed: int | None = None
) -> FleetReport:
    """Run one full episode under a constant action, no learning.

    The baseline the learned policy must beat: the same environment,
    demand and epoch structure, with the decision points pinned to one
    fixed (dispatch, eviction, overflow) choice throughout.
    """
    env = FleetEnv(config, seed=seed)
    env.reset()
    done = False
    while not done:
        _, _, done, _ = env.step(action)
    return env.report()


def run_fleet_with_action(
    scenario: FleetScenario, action: Action
) -> FleetReport:
    """``run_fleet`` with :class:`AdaptiveHooks` pinned to one action.

    Exists for the equivalence tests: a constant action through the
    hooks must reproduce the corresponding fixed scenario's report.
    """
    return run_fleet(scenario, hooks=AdaptiveHooks(action))


# Referenced by docs and kept importable from the package root.
__all__ = [
    "ACTIONS",
    "Action",
    "AdaptiveHooks",
    "DISPATCH_CHOICES",
    "ENERGY_SCALE_J",
    "EVICTION_CHOICES",
    "EnvConfig",
    "FleetEnv",
    "N_ACTIONS",
    "OVERFLOW_CHOICES",
    "action_index",
    "episode_jobs",
    "fixed_episode_report",
    "rotate_records",
    "run_fleet_with_action",
]
