"""Learned-control benchmarking: the ``repro learn`` artefact.

Trains the committed-gate learner (tabular Q — pure-Python arithmetic,
so its fingerprints are byte-identical across machines and across
serial/process fan-out) on a deliberately *non-stationary* slice of
internet demand, freezes the greedy policy, and scores it against
every fixed (dispatch, eviction) combo on one held-out evaluation
episode.  The payload lands in ``BENCH_learn.json`` with the gate's
invariants as booleans:

* ``learned_beats_best_fixed_p99`` and
  ``learned_beats_best_fixed_energy`` — the headline claim: adaptive
  control wins on tail latency *and* launch energy simultaneously;
* ``train_serial_process_identical`` — a short probe training run
  fingerprints identically under the serial and process engines;
* ``default_hooks_match_baseline`` — installing explicit default
  :class:`~repro.fleet.controlplane.ControlHooks` reproduces the
  hook-free fleet run record for record.

Why a learner can beat every fixed combo here: the bench trace has two
*regimes* with different optimal dispatch orders.  The first half is a
stepped hot-set drift under light load — deadline-ordered dispatch
(``edf``) clears the interactive class with no tail cost.  The second
half holds the hot set still while a scanner flash crowd ramps
batch-heavy congestion — there ``edf``'s strict deadline order starves
just-arrived batch work behind interactive deadlines and inflates the
tail, and plain arrival order (``fcfs``) is optimal.  No fixed
dispatch policy is best in both halves; a policy that reads the
episode's ``progress`` observation and switches — which is exactly
what a two-bin tabular Q-learner can represent — beats every fixed
combo on tail latency, and because the single shared launch tube is
the fleet's bottleneck, the same switch also avoids queue-pressure
evictions and so strictly lowers launch energy.
"""

from __future__ import annotations

import json
import math
import pickle
import time
from dataclasses import dataclass
from typing import Mapping

from ..errors import ConfigurationError
from ..fleet.cache import CacheConfig
from ..fleet.controlplane import (
    AdmissionControl,
    ControlHooks,
    FleetScenario,
    default_scenario,
    run_fleet,
)
from ..fleet.sla import ClassTarget
from ..fleet.topology import DatasetCatalog, FleetSpec
from ..traffic.synth import DemandClass, FlashCrowd, TenantProfile, TraceSpec
from ..units import TB
from .env import Action, EnvConfig
from .policies import TabularQ
from .train import LearnReport, TrainConfig, evaluate, train

SCHEMA = "repro-bench-learn/1"

DEFAULT_SEED = 0
DEFAULT_HORIZON_S = 2400.0
DEFAULT_EPOCH_S = 120.0

#: Seed of the committed-gate learner itself (separate from the
#: workload/training seed so the two streams never alias).
POLICY_SEED = 23

#: Training shape for the committed baseline: ~240 episodes of the
#: single-track task (seconds of wall time), enough for the Q-table to
#: separate the two regimes reliably.
DEFAULT_ROUNDS = 30
DEFAULT_EPISODES_PER_ROUND = 8

#: Held-out episode seed the learned-vs-fixed comparison runs on; the
#: training seeds (see TrainConfig.episode_seeds) never include it.
EVAL_SEED = 999

#: Fixed (dispatch, eviction) baselines the learner is scored against;
#: overflow stays on the default failover choice, matching the fleet
#: bench's admission behaviour.
FIXED_ACTIONS = tuple(
    Action(dispatch, eviction)
    for dispatch in ("fcfs", "sjf", "edf")
    for eviction in ("lru", "lfu", "ttl")
)


def bench_catalog() -> DatasetCatalog:
    """12 datasets, 6-wide hot set: the drift has somewhere to go."""
    return DatasetCatalog(
        n_datasets=12, dataset_bytes=24 * TB, hot_count=6, hot_fraction=0.85
    )


def bench_scenario(seed: int = DEFAULT_SEED,
                   horizon_s: float = DEFAULT_HORIZON_S) -> FleetScenario:
    """The fleet the learn bench drives.

    A single track makes the launch tube the explicit bottleneck — every
    cache miss costs ~10 s of exclusive tube time (fetch launch plus the
    evicted cart's return) — so dispatch and eviction quality translate
    directly into the two gated KPIs.  Six docking stations match the
    hot-set width, and the 16-cart pool leaves enough slack over
    residency plus in-flight fetches that the pool balancer never
    force-strips idle residents (which would erase the difference
    between eviction policies).  The scenario's own ``policy``/``cache``
    fields are the *defaults* the hooks replace each epoch — they never
    decide anything in an adaptive episode, but keep the scenario valid
    for hook-free control runs.
    """
    return FleetScenario(
        spec=FleetSpec(
            n_tracks=1,
            racks_per_track=1,
            stations_per_rack=6,
            cart_pool=16,
            library_slots=128,
        ),
        catalog=bench_catalog(),
        targets=(
            ("interactive", ClassTarget(deadline_s=180.0, priority=0)),
            ("batch", ClassTarget(deadline_s=900.0, priority=1)),
        ),
        policy="edf",
        cache=CacheConfig(policy="lru"),
        admission=AdmissionControl(max_queue_depth=64, failover_links=2),
        seed=seed,
        horizon_s=horizon_s,
        retain_records=False,
    )


def bench_trace(seed: int = DEFAULT_SEED,
                horizon_s: float = DEFAULT_HORIZON_S,
                rate_scale: float = 1.0) -> TraceSpec:
    """Two-regime demand: hot-set drift, then a scanner flash crowd.

    The ``app`` tenant concentrates on the catalog's low ranks (the
    hot set that :func:`bench_env_config` drifts in steps during the
    first half); the ``scanner`` tenant's ``zipf_alpha`` is close to
    zero, so its requests spray across all 12 datasets.  The flash
    crowd is a triangular batch burst on the scanner tenant whose apex
    lands at the *end* of the horizon — it ramps through the whole
    second half, flipping the regime from drift-under-light-load to
    batch-heavy congestion.
    """
    return TraceSpec(
        seed=seed,
        horizon_s=horizon_s,
        window_s=300.0,
        tenants=(
            TenantProfile(
                name="app",
                base_rate_per_s=0.10 * rate_scale,
                diurnal_amplitude=0.2,
                peak_s=horizon_s / 2.0,
                class_weights=(("interactive", 0.8), ("batch", 0.2)),
                zipf_alpha=1.1,
            ),
            TenantProfile(
                name="scanner",
                base_rate_per_s=0.01 * rate_scale,
                diurnal_amplitude=0.1,
                peak_s=horizon_s / 2.0,
                class_weights=(("batch", 1.0),),
                zipf_alpha=0.05,
            ),
        ),
        crowds=(
            FlashCrowd(
                tenant="scanner",
                kind="batch",
                start_s=horizon_s / 2.0,
                duration_s=horizon_s,
                peak_rate_per_s=0.12 * rate_scale,
            ),
        ),
        classes=(
            DemandClass("interactive", median_bytes=1 * TB, sigma=0.35),
            DemandClass("batch", median_bytes=3 * TB, sigma=0.4),
        ),
        catalog=bench_catalog(),
        targets=(
            ("interactive", ClassTarget(deadline_s=180.0, priority=0)),
            ("batch", ClassTarget(deadline_s=900.0, priority=1)),
        ),
    )


def bench_env_config(seed: int = DEFAULT_SEED,
                     horizon_s: float = DEFAULT_HORIZON_S,
                     epoch_s: float = DEFAULT_EPOCH_S) -> EnvConfig:
    """The complete learnable task: drifting trace over the bench fleet.

    The rotation is *stepped*: the hot set shifts by 5 dataset indices
    at each of the first three ``rotation_s`` boundaries, then holds —
    so all drift happens in the first half of the horizon, before the
    flash crowd takes over as the dominant regime signal.
    """
    return EnvConfig(
        scenario=bench_scenario(seed=seed, horizon_s=horizon_s),
        epoch_s=epoch_s,
        trace=bench_trace(seed=seed, horizon_s=horizon_s),
        rotation_s=horizon_s / 8.0,
        rotation_shift=5,
        rotation_steps=3,
        max_epochs=int(math.ceil(horizon_s / epoch_s)) + 60,
    )


def bench_policy(seed: int = POLICY_SEED) -> TabularQ:
    """The committed-gate learner, deterministically configured.

    ``bins=2`` matters: the episode-``progress`` observation component
    then discretises into exactly two states with the boundary at half
    the horizon — the regime switch the workload is built around — and
    keeps the visited state space to ~10 entries, small enough that 240
    training episodes converge.
    """
    return TabularQ(
        epsilon=0.2, alpha=0.4, gamma=0.8, bins=2, seed=seed
    )


def default_hooks_match_baseline(seed: int = DEFAULT_SEED) -> bool:
    """Explicit default hooks == hook-free control, record for record.

    A short synthetic fleet run (the fleet bench's scenario family at a
    reduced horizon) executed twice: once with ``hooks=None`` and once
    with a fresh :class:`ControlHooks` instance.  Anything but
    identical reports means a decision point leaked behaviour into the
    refactor.
    """
    scenario = default_scenario(policy="edf", cache="lru", seed=seed,
                                horizon_s=900.0)
    bare = run_fleet(scenario)
    hooked = run_fleet(scenario, hooks=ControlHooks())
    return bare == hooked


def train_fingerprints_agree(
    env_config: EnvConfig, seed: int = DEFAULT_SEED
) -> tuple[str, str]:
    """(serial, process) fingerprints of one short probe training run."""
    serial = train(
        bench_policy(),
        env_config,
        TrainConfig(rounds=1, episodes_per_round=2, seed=seed,
                    engine="serial"),
    )
    process = train(
        bench_policy(),
        env_config,
        TrainConfig(rounds=1, episodes_per_round=2, seed=seed,
                    engine="process", workers=2),
    )
    return serial.fingerprint, process.fingerprint


@dataclass(frozen=True)
class LearnBenchReport:
    """One full train + evaluate pass with its gate evidence."""

    seed: int
    horizon_s: float
    epoch_s: float
    rounds: int
    episodes_per_round: int
    env_config: EnvConfig
    report: LearnReport
    serial_fingerprint: str
    process_fingerprint: str
    hooks_identical: bool
    train_wall_s: float

    @property
    def invariants(self) -> dict[str, bool]:
        return {
            "learned_beats_best_fixed_p99": self.report.beats_best_fixed_p99,
            "learned_beats_best_fixed_energy": (
                self.report.beats_best_fixed_energy
            ),
            "train_serial_process_identical": (
                self.serial_fingerprint == self.process_fingerprint
                and bool(self.serial_fingerprint)
            ),
            "default_hooks_match_baseline": self.hooks_identical,
            "eval_seed_held_out": EVAL_SEED
            not in {
                seed
                for round_index in range(self.rounds)
                for seed in TrainConfig(
                    rounds=self.rounds,
                    episodes_per_round=self.episodes_per_round,
                    seed=self.seed,
                ).episode_seeds(round_index)
            },
        }


def run_learn_bench(
    seed: int = DEFAULT_SEED,
    horizon_s: float = DEFAULT_HORIZON_S,
    epoch_s: float = DEFAULT_EPOCH_S,
    rounds: int = DEFAULT_ROUNDS,
    episodes_per_round: int = DEFAULT_EPISODES_PER_ROUND,
    engine: str = "serial",
    check_process_parity: bool = True,
) -> LearnBenchReport:
    """Train, freeze, evaluate, and assemble the gate evidence.

    ``engine`` picks the training fan-out for the *main* run; the
    serial/process parity probe always runs both engines (skippable
    with ``check_process_parity=False`` for quick local iterations,
    which marks the invariant false rather than silently passing).
    """
    if rounds < 1 or episodes_per_round < 1:
        raise ConfigurationError("training needs >= 1 round and episode")
    env_config = bench_env_config(seed=seed, horizon_s=horizon_s,
                                  epoch_s=epoch_s)
    policy = bench_policy()
    started = time.perf_counter()
    result = train(
        policy,
        env_config,
        TrainConfig(rounds=rounds, episodes_per_round=episodes_per_round,
                    seed=seed, engine=engine),
    )
    train_wall_s = time.perf_counter() - started
    report = evaluate(
        result.policy,
        env_config,
        eval_seed=EVAL_SEED,
        fixed_actions=FIXED_ACTIONS,
        fingerprint=result.fingerprint,
        round_rewards=result.round_rewards,
    )
    if check_process_parity:
        serial_fp, process_fp = train_fingerprints_agree(env_config, seed=seed)
    else:
        serial_fp, process_fp = result.fingerprint, ""
    return LearnBenchReport(
        seed=seed,
        horizon_s=horizon_s,
        epoch_s=epoch_s,
        rounds=rounds,
        episodes_per_round=episodes_per_round,
        env_config=env_config,
        report=report,
        serial_fingerprint=serial_fp,
        process_fingerprint=process_fp,
        hooks_identical=default_hooks_match_baseline(seed=seed),
        train_wall_s=train_wall_s,
    )


def _kpi_payload(kpis: Mapping[str, float]) -> dict[str, object]:
    return {
        "n_jobs": int(kpis["n_jobs"]),
        "served": int(kpis["served"]),
        "shed": int(kpis["shed"]),
        "failovers": int(kpis["failovers"]),
        "p99_s": round(kpis["p99_s"], 3),
        "deadline_miss_rate": round(kpis["deadline_miss_rate"], 6),
        "cache_hit_rate": round(kpis["cache_hit_rate"], 6),
        "cache_evictions": int(kpis["cache_evictions"]),
        "launches": int(kpis["launches"]),
        "launch_energy_mj": round(kpis["launch_energy_mj"], 6),
        "failover_energy_mj": round(kpis["failover_energy_mj"], 6),
        "makespan_s": round(kpis["makespan_s"], 3),
    }


def report_payload(bench: LearnBenchReport) -> dict[str, object]:
    """The JSON-serialisable form (``BENCH_learn.json``)."""
    from ..analysis.perf import environment_info

    report = bench.report
    best = report.best_fixed
    return {
        "schema": SCHEMA,
        "seed": bench.seed,
        "horizon_s": bench.horizon_s,
        "epoch_s": bench.epoch_s,
        "rounds": bench.rounds,
        "episodes_per_round": bench.episodes_per_round,
        "eval_seed": report.eval_seed,
        "policy": {
            "family": "tabular_q",
            "fingerprint": report.fingerprint,
            "round_rewards": [round(r, 6) for r in report.round_rewards],
        },
        "learned": _kpi_payload(report.learned_kpis),
        "fixed": {
            combo.label: _kpi_payload(combo.kpis) for combo in report.fixed
        },
        "best_fixed": best.label,
        "margins": {
            "p99_s": round(
                best.kpis["p99_s"] - report.learned_kpis["p99_s"], 3
            ),
            "launch_energy_mj": round(
                best.kpis["launch_energy_mj"]
                - report.learned_kpis["launch_energy_mj"],
                6,
            ),
        },
        "fingerprints": {
            "serial": bench.serial_fingerprint,
            "process": bench.process_fingerprint,
        },
        "invariants": bench.invariants,
        "train_wall_s_informational": round(bench.train_wall_s, 3),
        "environment": environment_info(),
    }


def write_report(bench: LearnBenchReport, path: str) -> str:
    """Write ``BENCH_learn.json`` and return the path."""
    payload = report_payload(bench)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_baseline(path: str) -> dict[str, object]:
    """Read a previously committed learn baseline."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _compare_section(
    label: str,
    fresh: Mapping[str, object],
    base: Mapping[str, object],
    rel_tol: float,
    problems: list[str],
) -> None:
    for key, base_value in base.items():
        if key.endswith("_informational"):
            continue
        fresh_value = fresh.get(key)
        if isinstance(base_value, Mapping):
            _compare_section(
                f"{label}.{key}", dict(fresh_value or {}), base_value,
                rel_tol, problems,
            )
        elif isinstance(base_value, bool) or not isinstance(
            base_value, (int, float)
        ):
            if fresh_value != base_value:
                problems.append(
                    f"{label}.{key}: {fresh_value!r} != baseline "
                    f"{base_value!r}"
                )
        elif fresh_value is None or not math.isclose(
            float(fresh_value), float(base_value), rel_tol=rel_tol,
            abs_tol=rel_tol,
        ):
            problems.append(
                f"{label}.{key}: {fresh_value} drifted from baseline "
                f"{base_value}"
            )


def compare_to_baseline(
    payload: Mapping[str, object],
    baseline: Mapping[str, object],
    rel_tol: float = 1e-6,
) -> list[str]:
    """Regression messages from comparing a fresh bench to a baseline.

    Every gated number is virtual-time output of a seeded deterministic
    pipeline over pure-Python policy arithmetic, so fresh must match
    the committed baseline to float-noise tolerance on any machine —
    including the policy fingerprint strings.  Invariants must hold in
    both payloads.
    """
    problems: list[str] = []
    for source, values in (("fresh run", payload.get("invariants", {})),
                           ("baseline", baseline.get("invariants", {}))):
        for name, value in dict(values).items():
            if not value:
                problems.append(f"invariant failed in {source}: {name}")
    for section in ("learned", "fixed", "margins", "policy", "fingerprints"):
        _compare_section(
            section,
            dict(payload.get(section, {})),
            dict(baseline.get(section, {})),
            rel_tol,
            problems,
        )
    for key in ("best_fixed", "eval_seed"):
        if payload.get(key) != baseline.get(key):
            problems.append(
                f"{key}: {payload.get(key)!r} != baseline "
                f"{baseline.get(key)!r}"
            )
    return problems


def policy_blob(policy: TabularQ) -> bytes:
    """Pickle a policy for artefact storage (round-trips exactly)."""
    return pickle.dumps(policy)


__all__ = [
    "DEFAULT_EPOCH_S",
    "DEFAULT_HORIZON_S",
    "DEFAULT_SEED",
    "EVAL_SEED",
    "POLICY_SEED",
    "FIXED_ACTIONS",
    "LearnBenchReport",
    "SCHEMA",
    "bench_catalog",
    "bench_env_config",
    "bench_policy",
    "bench_scenario",
    "bench_trace",
    "compare_to_baseline",
    "default_hooks_match_baseline",
    "load_baseline",
    "report_payload",
    "run_learn_bench",
    "train_fingerprints_agree",
    "write_report",
]
