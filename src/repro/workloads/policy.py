"""Routing policies: which transfers belong on the DHL?

Section III-E is explicit that the DHL "is likely to replace only some
uses of the data centre network" — small or latency-sensitive transfers
should stay on optics, bulk shipments should ride carts.  A
:class:`RoutingPolicy` encodes that decision; the break-even policy uses
the Section V-E analysis directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.breakeven import BreakEven, break_even
from ..core.params import DhlParams
from ..errors import ConfigurationError
from ..network.routes import ROUTE_B, Route
from ..units import assert_positive
from .generator import TransferJob

DHL = "dhl"
NETWORK = "network"


class RoutingPolicy:
    """Base policy: override :meth:`route` to classify one job."""

    name = "abstract"

    def route(self, job: TransferJob) -> str:
        raise NotImplementedError


@dataclass
class AllNetworkPolicy(RoutingPolicy):
    """The status quo: everything over optics."""

    name: str = "all-network"

    def route(self, job: TransferJob) -> str:
        return NETWORK


@dataclass
class AllDhlPolicy(RoutingPolicy):
    """The straw man: everything on carts, even tiny transfers."""

    name: str = "all-dhl"

    def route(self, job: TransferJob) -> str:
        return DHL


@dataclass
class SizeThresholdPolicy(RoutingPolicy):
    """Send jobs at or above a fixed size to the DHL."""

    threshold_bytes: float
    name: str = "size-threshold"

    def __post_init__(self) -> None:
        assert_positive("threshold_bytes", self.threshold_bytes)

    def route(self, job: TransferJob) -> str:
        return DHL if job.size_bytes >= self.threshold_bytes else NETWORK


@dataclass
class BreakEvenPolicy(RoutingPolicy):
    """Route by the Section V-E break-even: DHL wherever it wins both
    time and energy for the job's size, network otherwise."""

    params: DhlParams = field(default_factory=DhlParams)
    route_baseline: Route = ROUTE_B
    name: str = "break-even"
    _analysis: BreakEven = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._analysis = break_even(self.params, route=self.route_baseline)

    @property
    def threshold_bytes(self) -> float:
        return self._analysis.min_bytes

    def route(self, job: TransferJob) -> str:
        return DHL if job.size_bytes >= self._analysis.min_bytes else NETWORK


def split_jobs(
    jobs: list[TransferJob],
    policy: RoutingPolicy,
) -> tuple[list[TransferJob], list[TransferJob]]:
    """Partition jobs into (dhl_jobs, network_jobs) under a policy."""
    if not jobs:
        raise ConfigurationError("no jobs to route")
    dhl_jobs: list[TransferJob] = []
    network_jobs: list[TransferJob] = []
    for job in jobs:
        destination = policy.route(job)
        if destination == DHL:
            dhl_jobs.append(job)
        elif destination == NETWORK:
            network_jobs.append(job)
        else:
            raise ConfigurationError(
                f"policy {policy.name!r} returned unknown destination "
                f"{destination!r}"
            )
    return dhl_jobs, network_jobs
