"""Workload generation and hybrid DHL/network routing policies.

Implements the system-level question of Section III-E — the DHL
"replaces only some uses of the data centre network" — as seeded job
streams, routing policies (all-network, all-DHL, size-threshold, and
the Section V-E break-even policy), and a deterministic service
scheduler that reports per-policy time, energy and latency.
"""

from .generator import (
    DEFAULT_MIX,
    TrafficClass,
    TransferJob,
    WorkloadGenerator,
    jobs_by_kind,
    total_offered_bytes,
)
from .policy import (
    AllDhlPolicy,
    AllNetworkPolicy,
    BreakEvenPolicy,
    DHL,
    NETWORK,
    RoutingPolicy,
    SizeThresholdPolicy,
    split_jobs,
)
from .replication import ReplicatedMetric, replicate, summarise
from .service import (
    JobOutcome,
    PolicyReport,
    ServiceConfig,
    compare_policies,
    evaluate_policy,
)

__all__ = [
    "AllDhlPolicy",
    "AllNetworkPolicy",
    "BreakEvenPolicy",
    "DEFAULT_MIX",
    "DHL",
    "JobOutcome",
    "NETWORK",
    "PolicyReport",
    "ReplicatedMetric",
    "replicate",
    "summarise",
    "RoutingPolicy",
    "ServiceConfig",
    "SizeThresholdPolicy",
    "TrafficClass",
    "TransferJob",
    "WorkloadGenerator",
    "compare_policies",
    "evaluate_policy",
    "jobs_by_kind",
    "split_jobs",
    "total_offered_bytes",
]
