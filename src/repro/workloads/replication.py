"""Replication and confidence intervals for the stochastic studies.

The multi-stop contention and hybrid-policy experiments are seeded and
deterministic per seed; sound conclusions need replications across
seeds.  This module runs a seed-parameterised experiment n times and
summarises any scalar metric with a mean and a t-distribution
confidence interval (numpy-only Student-t via the standard
Hill approximation to the quantile, so the runtime dependency set stays
numpy + networkx).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError


def _t_quantile(p: float, dof: int) -> float:
    """Two-sided Student-t quantile via the Cornish-Fisher expansion.

    Accurate to ~1e-3 for dof >= 3 — ample for experiment CIs — and
    exact in the normal limit.
    """
    if not 0.5 < p < 1.0:
        raise ConfigurationError(f"quantile level must be in (0.5, 1), got {p}")
    if dof <= 0:
        raise ConfigurationError(f"degrees of freedom must be >= 1, got {dof}")
    # Normal quantile (Acklam-style rational approximation).
    z = _normal_quantile(p)
    if dof > 200:
        return z
    g1 = (z**3 + z) / 4.0
    g2 = (5 * z**5 + 16 * z**3 + 3 * z) / 96.0
    g3 = (3 * z**7 + 19 * z**5 + 17 * z**3 - 15 * z) / 384.0
    g4 = (79 * z**9 + 776 * z**7 + 1482 * z**5 - 1920 * z**3 - 945 * z) / 92160.0
    return z + g1 / dof + g2 / dof**2 + g3 / dof**3 + g4 / dof**4


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean and confidence interval of one metric over replications."""

    name: str
    samples: tuple[float, ...]
    confidence: float
    mean: float
    half_width: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def relative_half_width(self) -> float:
        if self.mean == 0:
            raise ConfigurationError("relative width undefined for zero mean")
        return self.half_width / abs(self.mean)


def summarise(name: str, samples: Sequence[float],
              confidence: float = 0.95) -> ReplicatedMetric:
    """Mean and t-interval for a sample of replicated measurements."""
    if len(samples) < 2:
        raise ConfigurationError("need at least 2 replications for an interval")
    if not 0.5 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0.5, 1), got {confidence}")
    data = np.asarray(samples, dtype=float)
    mean = float(data.mean())
    stderr = float(data.std(ddof=1)) / math.sqrt(len(data))
    t = _t_quantile(0.5 + confidence / 2.0, dof=len(data) - 1)
    return ReplicatedMetric(
        name=name,
        samples=tuple(float(sample) for sample in data),
        confidence=confidence,
        mean=mean,
        half_width=t * stderr,
    )


def replicate(
    run: Callable[[int], object],
    metrics: dict[str, Callable[[object], float]],
    seeds: Sequence[int] = tuple(range(10)),
    confidence: float = 0.95,
) -> dict[str, ReplicatedMetric]:
    """Run ``run(seed)`` per seed and summarise each metric extractor.

    >>> from repro.dhlsim.multistop import MultiStopExperiment
    >>> results = replicate(
    ...     lambda seed: MultiStopExperiment(seed=seed, n_requests=4,
    ...                                      read_bytes=1e12).run(),
    ...     {"latency": lambda report: report.mean_latency_s},
    ...     seeds=range(3),
    ... )  # doctest: +SKIP
    """
    if not metrics:
        raise ConfigurationError("at least one metric extractor is required")
    if len(seeds) < 2:
        raise ConfigurationError("need at least 2 seeds")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds: {list(seeds)}")
    outcomes = [run(seed) for seed in seeds]
    return {
        name: summarise(name, [extract(outcome) for outcome in outcomes],
                        confidence)
        for name, extract in metrics.items()
    }
