"""Service-level evaluation of routed workloads.

Given a job stream and a routing policy, this module schedules the two
job populations onto their transports — a farm of optical links and a
set of DHL tracks — and reports per-policy time, energy and latency.
Scheduling is deterministic FCFS list scheduling: each job runs on the
first transport unit (link or track) to become free after its arrival.

This answers the system-level question the paper poses but leaves open:
how much does a *mixed* deployment save over all-network, and how badly
does the all-DHL straw man lose on small transfers?
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.model import plan_campaign
from ..core.params import DhlParams
from ..core.percentiles import percentile, percentiles_by_class
from ..errors import ConfigurationError
from ..network.routes import ROUTE_B, Route
from ..network.transfer import DEFAULT_LINK_GBPS
from ..storage.datasets import synthetic_dataset
from ..units import assert_positive, gbps
from .generator import TransferJob
from .policy import RoutingPolicy, split_jobs


@dataclass(frozen=True)
class JobOutcome:
    """Measured service of one job on one transport."""

    job: TransferJob
    transport: str
    started_s: float
    completed_s: float
    energy_j: float

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.job.arrival_s

    @property
    def service_s(self) -> float:
        return self.completed_s - self.started_s


def _list_schedule(
    jobs: list[TransferJob],
    n_servers: int,
    service_fn,
    energy_fn,
    transport: str,
) -> list[JobOutcome]:
    """FCFS list scheduling onto ``n_servers`` identical servers."""
    if n_servers <= 0:
        raise ConfigurationError(f"need >= 1 server, got {n_servers}")
    free_at = [0.0] * n_servers
    heapq.heapify(free_at)
    outcomes = []
    for job in sorted(jobs, key=lambda j: (j.arrival_s, j.job_id)):
        earliest = heapq.heappop(free_at)
        start = max(earliest, job.arrival_s)
        service = service_fn(job)
        completion = start + service
        heapq.heappush(free_at, completion)
        outcomes.append(
            JobOutcome(
                job=job,
                transport=transport,
                started_s=start,
                completed_s=completion,
                energy_j=energy_fn(job),
            )
        )
    return outcomes


@dataclass(frozen=True)
class ServiceConfig:
    """Transport fleet sizes and models for a policy evaluation."""

    params: DhlParams = DhlParams()
    route: Route = ROUTE_B
    n_links: int = 4
    n_tracks: int = 1
    link_gbps: float = DEFAULT_LINK_GBPS

    def __post_init__(self) -> None:
        if self.n_links <= 0 or self.n_tracks <= 0:
            raise ConfigurationError("fleet sizes must be >= 1")
        assert_positive("link_gbps", self.link_gbps)


@dataclass(frozen=True)
class PolicyReport:
    """Aggregate outcome of one policy over one job stream."""

    policy_name: str
    outcomes: tuple[JobOutcome, ...]

    def _subset(self, transport: str) -> list[JobOutcome]:
        return [outcome for outcome in self.outcomes if outcome.transport == transport]

    @property
    def total_energy_j(self) -> float:
        return sum(outcome.energy_j for outcome in self.outcomes)

    @property
    def makespan_s(self) -> float:
        return max(outcome.completed_s for outcome in self.outcomes)

    @property
    def mean_latency_s(self) -> float:
        return sum(o.latency_s for o in self.outcomes) / len(self.outcomes)

    def mean_latency_for(self, transport: str) -> float:
        subset = self._subset(transport)
        if not subset:
            raise ConfigurationError(f"no jobs used transport {transport!r}")
        return sum(outcome.latency_s for outcome in subset) / len(subset)

    @property
    def dhl_share(self) -> float:
        """Fraction of bytes carried by the DHL."""
        total = sum(outcome.job.size_bytes for outcome in self.outcomes)
        dhl = sum(outcome.job.size_bytes for outcome in self._subset("dhl"))
        return dhl / total

    def latency_percentile(self, q: float) -> float:
        """Latency percentile over all jobs (shared interpolation rule)."""
        return percentile([o.latency_s for o in self.outcomes], q)

    def latency_percentiles_by_class(self) -> dict[str, dict[float, float]]:
        """Per-traffic-class p50/p95/p99 via :mod:`repro.core.percentiles`.

        The fleet SLA tracker (:mod:`repro.fleet.sla`) computes its
        percentiles through the same helper, so the service study and a
        fleet run quote identical tail definitions.
        """
        samples: dict[str, list[float]] = {}
        for outcome in self.outcomes:
            samples.setdefault(outcome.job.kind, []).append(outcome.latency_s)
        return percentiles_by_class(samples)


def evaluate_policy(
    jobs: list[TransferJob],
    policy: RoutingPolicy,
    config: ServiceConfig = ServiceConfig(),
    tracer=None,
    metrics=None,
) -> PolicyReport:
    """Schedule a routed job stream and collect aggregate metrics.

    With a ``tracer`` (:class:`repro.obs.Tracer`), each job is stamped
    as a clockless async span on its transport's track — queueing shows
    up as the gap between a job's arrival instant and its span.  With a
    ``metrics`` registry, queue-wait seconds land in a
    ``queue_wait_s.<policy>`` histogram.
    """
    dhl_jobs, network_jobs = split_jobs(jobs, policy)
    rate = gbps(config.link_gbps)
    route_power = config.route.power_w

    def network_service(job: TransferJob) -> float:
        return job.size_bytes / rate

    def network_energy(job: TransferJob) -> float:
        return route_power * network_service(job)

    def dhl_campaign(job: TransferJob):
        return plan_campaign(
            config.params,
            synthetic_dataset(job.size_bytes, name=f"job-{job.job_id}"),
        )

    def dhl_service(job: TransferJob) -> float:
        return dhl_campaign(job).time_s

    def dhl_energy(job: TransferJob) -> float:
        return dhl_campaign(job).energy_j

    outcomes: list[JobOutcome] = []
    if network_jobs:
        outcomes.extend(
            _list_schedule(network_jobs, config.n_links, network_service,
                           network_energy, "network")
        )
    if dhl_jobs:
        outcomes.extend(
            _list_schedule(dhl_jobs, config.n_tracks, dhl_service,
                           dhl_energy, "dhl")
        )
    if not outcomes:
        raise ConfigurationError("the job stream was empty")
    outcomes.sort(key=lambda outcome: outcome.job.job_id)
    if tracer is not None or metrics is not None:
        _record_outcomes(policy.name, outcomes, tracer, metrics)
    return PolicyReport(policy_name=policy.name, outcomes=tuple(outcomes))


def _record_outcomes(policy_name, outcomes, tracer, metrics) -> None:
    """Stamp scheduled outcomes into the observability layer."""
    histogram = (
        metrics.histogram(f"queue_wait_s.{policy_name}")
        if metrics is not None
        else None
    )
    for outcome in outcomes:
        wait_s = outcome.started_s - outcome.job.arrival_s
        if histogram is not None:
            histogram.observe(wait_s)
        if tracer is None:
            continue
        track = f"svc:{policy_name}:{outcome.transport}"
        tracer.instant(
            "job.arrival",
            track=track,
            time_s=outcome.job.arrival_s,
            job=outcome.job.job_id,
        )
        tracer.span_at(
            "job",
            start_s=outcome.started_s,
            end_s=outcome.completed_s,
            track=track,
            asynchronous=True,
            job=outcome.job.job_id,
            transport=outcome.transport,
            queue_wait_s=wait_s,
        )


def compare_policies(
    jobs: list[TransferJob],
    policies: list[RoutingPolicy],
    config: ServiceConfig = ServiceConfig(),
) -> dict[str, PolicyReport]:
    """Evaluate several policies on the same stream, keyed by name."""
    if not policies:
        raise ConfigurationError("at least one policy is required")
    reports = {}
    for policy in policies:
        reports[policy.name] = evaluate_policy(jobs, policy, config)
    return reports
