"""Synthetic bulk-transfer workload generation.

The paper motivates DHLs with a mix of transfer classes: PB-scale ML
dataset shipments, multi-PB backups, and ordinary transfers that should
stay on the network.  This module generates seeded, reproducible
streams of such requests so the routing-policy and service studies have
realistic offered load.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError
from ..units import GB, PB, TB, assert_positive


@dataclass(frozen=True)
class TransferJob:
    """One bulk-transfer request."""

    job_id: int
    arrival_s: float
    size_bytes: float
    kind: str

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ConfigurationError("arrival must be >= 0")
        assert_positive("size_bytes", self.size_bytes)


@dataclass(frozen=True)
class TrafficClass:
    """A class of transfers: arrival rate plus a lognormal size model.

    ``median_bytes`` and ``sigma`` parameterise the lognormal; sigma of
    0.5-1.0 gives the heavy-but-not-absurd tails measured for data
    centre bulk traffic.
    """

    name: str
    rate_per_hour: float
    median_bytes: float
    sigma: float = 0.7

    def __post_init__(self) -> None:
        assert_positive("rate_per_hour", self.rate_per_hour)
        assert_positive("median_bytes", self.median_bytes)
        if self.sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {self.sigma}")


#: A plausible mixed day at a data centre, scaled from the paper's
#: motivating applications (Table I rates, Section II-D).
DEFAULT_MIX = (
    TrafficClass("small-sync", rate_per_hour=40.0, median_bytes=20 * GB),
    TrafficClass("dataset-shard", rate_per_hour=6.0, median_bytes=30 * TB),
    TrafficClass("ml-dataset", rate_per_hour=0.5, median_bytes=2 * PB),
    TrafficClass("bulk-backup", rate_per_hour=0.25, median_bytes=5 * PB),
)


@dataclass
class WorkloadGenerator:
    """Seeded Poisson-superposition generator over traffic classes."""

    classes: tuple[TrafficClass, ...] = DEFAULT_MIX
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.classes:
            raise ConfigurationError("at least one traffic class is required")
        self._rng = np.random.default_rng(self.seed)

    def generate(self, horizon_s: float) -> list[TransferJob]:
        """All jobs arriving within ``horizon_s``, sorted by arrival."""
        assert_positive("horizon_s", horizon_s)
        jobs: list[TransferJob] = []
        for traffic_class in self.classes:
            rate_per_s = traffic_class.rate_per_hour / 3600.0
            expected = rate_per_s * horizon_s
            count = int(self._rng.poisson(expected))
            arrivals = np.sort(self._rng.uniform(0.0, horizon_s, size=count))
            sizes = self._rng.lognormal(
                mean=np.log(traffic_class.median_bytes),
                sigma=traffic_class.sigma,
                size=count,
            )
            for arrival, size in zip(arrivals, sizes):
                jobs.append(
                    TransferJob(
                        job_id=-1,  # renumbered below
                        arrival_s=float(arrival),
                        size_bytes=float(size),
                        kind=traffic_class.name,
                    )
                )
        jobs.sort(key=lambda job: job.arrival_s)
        return [
            TransferJob(
                job_id=index,
                arrival_s=job.arrival_s,
                size_bytes=job.size_bytes,
                kind=job.kind,
            )
            for index, job in enumerate(jobs)
        ]

    def stream(self, horizon_s: float) -> Iterator[TransferJob]:
        return iter(self.generate(horizon_s))


def stream_fingerprint(
    seed: int,
    horizon_s: float,
    classes: tuple[TrafficClass, ...] = DEFAULT_MIX,
) -> bytes:
    """A byte-exact encoding of the seeded job stream.

    Every job's fields are packed with their exact float bit patterns,
    so two streams compare equal iff they are identical to the last bit.
    This is the determinism contract the fleet capacity planner relies
    on when process-pool workers re-generate offered load from a seed:
    the stream a worker sees must be *the* stream, not a statistically
    similar one.  Module-level and argument-only, so it is picklable
    into :func:`repro.core.sweep.map_chunks` workers.
    """
    generator = WorkloadGenerator(classes=classes, seed=seed)
    parts: list[bytes] = []
    for job in generator.generate(horizon_s):
        kind = job.kind.encode("utf-8")
        parts.append(
            struct.pack("<qddq", job.job_id, job.arrival_s, job.size_bytes, len(kind))
        )
        parts.append(kind)
    return b"".join(parts)


def _fingerprint_chunk(chunk: tuple[tuple[int, float], ...]) -> tuple[bytes, ...]:
    """``map_chunks`` worker: fingerprint each ``(seed, horizon_s)`` item."""
    return tuple(stream_fingerprint(seed, horizon_s) for seed, horizon_s in chunk)


def total_offered_bytes(jobs: list[TransferJob]) -> float:
    """Aggregate size of a job list."""
    return sum(job.size_bytes for job in jobs)


def jobs_by_kind(jobs: list[TransferJob]) -> dict[str, list[TransferJob]]:
    """Group a job list by traffic class."""
    grouped: dict[str, list[TransferJob]] = {}
    for job in jobs:
        grouped.setdefault(job.kind, []).append(job)
    return grouped
