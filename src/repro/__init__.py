"""repro — reproduction of "The Case For Data Centre Hyperloops" (ISCA 2024).

The library implements the paper's full evaluation stack:

* :mod:`repro.core` — the DHL analytical models (physics, launch metrics,
  campaigns, cost, break-even).
* :mod:`repro.storage` — storage devices, SSD arrays, dataset/model
  catalogues and library placement.
* :mod:`repro.network` — the optical-network baseline (components,
  fat-tree topology, Fig. 2 routes, transfer models).
* :mod:`repro.sim` — a small discrete-event simulation engine.
* :mod:`repro.dhlsim` — the operational DHL simulator (carts, track,
  docking, scheduler, software API).
* :mod:`repro.mlsim` — the distributed-ML training simulator standing in
  for ASTRA-sim (Fig. 6, Table VII).
* :mod:`repro.analysis` — generators for every paper table and figure.

Quickstart::

    from repro.core import DhlParams, design_point_report
    report = design_point_report(DhlParams())
    print(report.metrics.energy_kj, report.time_speedup)
"""

from . import units
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "units", "__version__"]
