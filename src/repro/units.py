"""Physical units and conversion helpers used throughout the library.

The paper mixes decimal storage units (TB, PB), network units (Gbit/s),
mechanical units (m/s, m/s^2, grams) and energy units (J, kJ, MJ).  This
module pins down one convention for the whole code base:

* **Bytes** are the canonical data unit.  ``TB`` and ``PB`` are decimal
  (1 TB = 1e12 bytes), matching the paper's arithmetic (29 PB over
  400 Gbit/s = 580 000 s only holds with decimal units).
* **Seconds**, **metres**, **kilograms**, **joules** and **watts** are the
  canonical time/mechanics units.  Convenience constants convert from the
  gram/kJ/kW values quoted in the paper.

Everything here is a plain module-level constant or a small pure function
so it can be used in hot loops without overhead.
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Data quantities (decimal, canonical unit: bytes)
# --------------------------------------------------------------------------

KB: float = 1e3
MB: float = 1e6
GB: float = 1e9
TB: float = 1e12
PB: float = 1e15

# Binary variants, used only where a source quotes binary units.
KIB: float = 2.0**10
MIB: float = 2.0**20
GIB: float = 2.0**30
TIB: float = 2.0**40
PIB: float = 2.0**50

BITS_PER_BYTE: int = 8

# --------------------------------------------------------------------------
# Network rates (canonical unit: bytes per second)
# --------------------------------------------------------------------------

GBIT_PER_S: float = 1e9 / BITS_PER_BYTE
"""One gigabit per second, expressed in bytes per second."""

TBIT_PER_S: float = 1e12 / BITS_PER_BYTE


def gbps(value: float) -> float:
    """Convert a link rate in Gbit/s into bytes/s."""
    return value * GBIT_PER_S


# --------------------------------------------------------------------------
# Mechanics
# --------------------------------------------------------------------------

GRAM: float = 1e-3
"""One gram in kilograms (the paper quotes cart masses in grams)."""

GRAVITY: float = 9.81
"""Standard gravitational acceleration, m/s^2."""

# --------------------------------------------------------------------------
# Energy / power
# --------------------------------------------------------------------------

KJ: float = 1e3
MJ: float = 1e6
KW: float = 1e3
MW: float = 1e6

WH: float = 3600.0
"""One watt-hour in joules."""

KWH: float = 3.6e6

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------

MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0


# --------------------------------------------------------------------------
# Formatting helpers (used by the CLI / analysis pretty printers)
# --------------------------------------------------------------------------

_DATA_STEPS = ((PB, "PB"), (TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "kB"))
_ENERGY_STEPS = ((MJ, "MJ"), (KJ, "kJ"))
_POWER_STEPS = ((MW, "MW"), (KW, "kW"))


def format_bytes(value: float, precision: int = 2) -> str:
    """Render a byte count with the most natural decimal unit.

    >>> format_bytes(29e15)
    '29 PB'
    """
    for scale, suffix in _DATA_STEPS:
        if abs(value) >= scale:
            return f"{_trim(value / scale, precision)} {suffix}"
    return f"{_trim(value, precision)} B"


def format_energy(value: float, precision: int = 2) -> str:
    """Render joules as J/kJ/MJ, matching the paper's table units."""
    for scale, suffix in _ENERGY_STEPS:
        if abs(value) >= scale:
            return f"{_trim(value / scale, precision)} {suffix}"
    return f"{_trim(value, precision)} J"


def format_power(value: float, precision: int = 2) -> str:
    """Render watts as W/kW/MW."""
    for scale, suffix in _POWER_STEPS:
        if abs(value) >= scale:
            return f"{_trim(value / scale, precision)} {suffix}"
    return f"{_trim(value, precision)} W"


def format_time(value: float, precision: int = 2) -> str:
    """Render seconds, switching to minutes/hours/days for long spans."""
    if abs(value) >= DAY:
        return f"{_trim(value / DAY, precision)} days"
    if abs(value) >= HOUR:
        return f"{_trim(value / HOUR, precision)} h"
    if abs(value) >= MINUTE:
        return f"{_trim(value / MINUTE, precision)} min"
    return f"{_trim(value, precision)} s"


def _trim(value: float, precision: int) -> str:
    """Format a float, trimming trailing zeros ('29' not '29.00')."""
    text = f"{value:.{precision}f}"
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text


# --------------------------------------------------------------------------
# Small numeric helpers
# --------------------------------------------------------------------------


def ceil_div(numerator: float, denominator: float) -> int:
    """Integer ceiling of a ratio of positive quantities.

    Used for trip counts: a 29 PB dataset on 256 TB carts needs
    ``ceil_div(29 * PB, 256 * TB) == 114`` trips.
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator!r}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator!r}")
    return int(math.ceil(numerator / denominator - 1e-12))


def assert_positive(name: str, value: float) -> float:
    """Validate that a model parameter is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def assert_non_negative(name: str, value: float) -> float:
    """Validate that a model parameter is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def assert_fraction(name: str, value: float) -> float:
    """Validate that a parameter lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value
