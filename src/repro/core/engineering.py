"""Engineering feasibility models for the Section VI discussion points.

The paper's discussion section argues three practicality concerns are
manageable; this module turns each argument into a checkable model:

* **Heat sinks** — an M.2 SSD draws up to 10 W under load, so a fully
  active 32-SSD cart dissipates 320 W; heat sinks between the M.2
  connectors must keep flash junctions below throttling temperature.
* **Connector longevity** — USB-C (which can carry PCIe) is rated for
  10k-20k mating cycles versus M.2's hundreds; docking frequency sets
  the connector replacement interval.
* **Safety** — carts are only hundreds of grams, so their kinetic
  ("embodied") energy stays small; sandbags at the rail ends suffice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import assert_positive
from .params import DhlParams
from .physics import cart_mass, motion_profile

# --------------------------------------------------------------------------
# Heat (Section VI: Heat Sinks)
# --------------------------------------------------------------------------

M2_MAX_POWER_W: float = 10.0
"""Per-M.2 draw under sustained load, as cited by the paper."""

FLASH_THROTTLE_C: float = 70.0
"""Typical NAND controller thermal-throttle threshold."""


@dataclass(frozen=True)
class ThermalAssessment:
    """Steady-state thermal check of a docked, fully active cart."""

    n_ssds: int
    per_ssd_power_w: float
    ambient_c: float
    sink_resistance_c_per_w: float
    total_power_w: float
    junction_c: float
    throttles: bool

    @property
    def headroom_c(self) -> float:
        """Margin (degrees C) below the flash-throttling junction limit."""
        return FLASH_THROTTLE_C - self.junction_c


def assess_cart_thermals(
    params: DhlParams,
    ambient_c: float = 30.0,
    sink_resistance_c_per_w: float = 3.0,
    per_ssd_power_w: float = M2_MAX_POWER_W,
) -> ThermalAssessment:
    """Check a cart's SSDs against throttling with per-drive heat sinks.

    ``sink_resistance_c_per_w`` is the per-SSD sink-to-air thermal
    resistance; finned M.2 sinks with mild airflow reach 2-4 C/W.
    Junction temperature is ambient plus per-drive power times the
    per-drive resistance (drives are thermally parallel through their
    own sinks, the paper's between-connector arrangement).
    """
    assert_positive("sink_resistance_c_per_w", sink_resistance_c_per_w)
    assert_positive("per_ssd_power_w", per_ssd_power_w)
    if ambient_c < -40 or ambient_c > 60:
        raise ConfigurationError(f"implausible ambient {ambient_c} C")
    junction = ambient_c + per_ssd_power_w * sink_resistance_c_per_w
    total = params.ssds_per_cart * per_ssd_power_w
    return ThermalAssessment(
        n_ssds=params.ssds_per_cart,
        per_ssd_power_w=per_ssd_power_w,
        ambient_c=ambient_c,
        sink_resistance_c_per_w=sink_resistance_c_per_w,
        total_power_w=total,
        junction_c=junction,
        throttles=junction >= FLASH_THROTTLE_C,
    )


def required_sink_resistance(
    per_ssd_power_w: float = M2_MAX_POWER_W,
    ambient_c: float = 30.0,
    margin_c: float = 5.0,
) -> float:
    """Max per-SSD thermal resistance (C/W) that avoids throttling."""
    assert_positive("per_ssd_power_w", per_ssd_power_w)
    if margin_c < 0:
        raise ConfigurationError("margin must be >= 0")
    budget = FLASH_THROTTLE_C - margin_c - ambient_c
    if budget <= 0:
        raise ConfigurationError(
            f"ambient {ambient_c} C leaves no thermal budget below "
            f"{FLASH_THROTTLE_C} C"
        )
    return budget / per_ssd_power_w


# --------------------------------------------------------------------------
# Connector wear (Section VI: Increasing Connector Longevity)
# --------------------------------------------------------------------------

USB_C_CYCLES: tuple[int, int] = (10_000, 20_000)
M2_CYCLES: int = 60
"""M.2 edge connectors are rated for dozens-to-hundreds of cycles."""


@dataclass(frozen=True)
class ConnectorWear:
    """Docking-cycle budget of a cart's dock-side connector."""

    connector: str
    rated_cycles: int
    docks_per_day: float
    lifetime_days: float

    @property
    def lifetime_years(self) -> float:
        """Connector lifetime expressed in years."""
        return self.lifetime_days / 365.0


def connector_wear(
    params: DhlParams,
    transfers_per_day: float,
    connector: str = "usb-c",
    rated_cycles: int | None = None,
) -> ConnectorWear:
    """Connector lifetime at a given duty cycle.

    A transfer is one round trip = two dockings (rack and library).
    The paper's recommendation of USB-C over M.2 shows up as a ~200x
    lifetime difference at any duty cycle.
    """
    assert_positive("transfers_per_day", transfers_per_day)
    if rated_cycles is None:
        if connector == "usb-c":
            rated_cycles = USB_C_CYCLES[0]
        elif connector == "m.2":
            rated_cycles = M2_CYCLES
        else:
            raise ConfigurationError(
                f"unknown connector {connector!r}; expected 'usb-c' or 'm.2'"
            )
    if rated_cycles <= 0:
        raise ConfigurationError("rated cycles must be positive")
    docks_per_day = 2.0 * transfers_per_day
    return ConnectorWear(
        connector=connector,
        rated_cycles=rated_cycles,
        docks_per_day=docks_per_day,
        lifetime_days=rated_cycles / docks_per_day,
    )


def campaign_dock_cycles(trips: int) -> int:
    """Dock cycles a cart fleet accrues over a campaign (2 per trip)."""
    if trips < 0:
        raise ConfigurationError("trips must be >= 0")
    return 2 * trips


# --------------------------------------------------------------------------
# Safety (Section VI: Safety Considerations)
# --------------------------------------------------------------------------

SANDBAG_ABSORPTION_J: float = 50_000.0
"""Energy a metre-scale sandbag berm absorbs without ejecta; runaway
carts carry well under this."""


@dataclass(frozen=True)
class SafetyAssessment:
    """Worst-case runaway-cart energetics at one design point."""

    cart_mass_kg: float
    speed_m_s: float
    kinetic_energy_j: float
    sandbag_margin: float
    below_false_floor: bool

    @property
    def contained(self) -> bool:
        """Whether a sandbag berm absorbs the worst-case impact."""
        return self.sandbag_margin > 1.0


def assess_safety(params: DhlParams, below_false_floor: bool = True) -> SafetyAssessment:
    """The paper's safety argument, quantified.

    A default cart at 200 m/s carries ~5.6 kJ — about the muzzle energy
    of a rifle round but spread over a 280 g body, and an order of
    magnitude below what a simple sandbag berm absorbs.
    """
    mass = cart_mass(params).total_kg
    speed = motion_profile(params).peak_speed
    kinetic = 0.5 * mass * speed**2
    return SafetyAssessment(
        cart_mass_kg=mass,
        speed_m_s=speed,
        kinetic_energy_j=kinetic,
        sandbag_margin=SANDBAG_ABSORPTION_J / kinetic,
        below_false_floor=below_false_floor,
    )


def max_safe_speed(params: DhlParams, energy_budget_j: float = SANDBAG_ABSORPTION_J) -> float:
    """Speed at which a runaway cart would exhaust the arrestor budget."""
    assert_positive("energy_budget_j", energy_budget_j)
    mass = cart_mass(params).total_kg
    return (2.0 * energy_budget_j / mass) ** 0.5


# --------------------------------------------------------------------------
# Maintenance roll-up
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class MaintenancePlan:
    """Combined duty-cycle view: wear, thermals, safety for one design."""

    params: DhlParams
    transfers_per_day: float
    connector: ConnectorWear
    thermal: ThermalAssessment
    safety: SafetyAssessment

    @property
    def viable(self) -> bool:
        """Do connectors, thermals and containment all clear their bars?"""
        return (
            self.connector.lifetime_days >= 365.0
            and not self.thermal.throttles
            and self.safety.contained
        )


def maintenance_plan(
    params: DhlParams,
    transfers_per_day: float,
) -> MaintenancePlan:
    """One-call feasibility roll-up used by the engineering bench."""
    return MaintenancePlan(
        params=params,
        transfers_per_day=transfers_per_day,
        connector=connector_wear(params, transfers_per_day),
        thermal=assess_cart_thermals(params),
        safety=assess_safety(params),
    )


def max_duty_cycle_for_lifetime(
    lifetime_years: float,
    connector: str = "usb-c",
) -> float:
    """Round trips per day a connector rating supports for a target life.

    The paper's USB-C choice sustains ~13 transfers/day for a year of
    10k-cycle service; M.2's edge connector supports fewer than one
    transfer per week at the same target.
    """
    assert_positive("lifetime_years", lifetime_years)
    if connector == "usb-c":
        rated = USB_C_CYCLES[0]
    elif connector == "m.2":
        rated = M2_CYCLES
    else:
        raise ConfigurationError(
            f"unknown connector {connector!r}; expected 'usb-c' or 'm.2'"
        )
    return rated / (2.0 * lifetime_years * 365.0)
