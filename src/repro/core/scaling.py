"""Technology-scaling projections (Sections II-A, V-A, and the upgrade
argument of Section II-A's closing paragraph).

Two claims are made quantitative here:

* **Density scaling** — "as storage density improves ... DHLs will
  achieve higher embodied data transmission rates": NAND keeps stacking
  layers, so the same cart mass carries more bytes every year, raising
  embodied bandwidth and efficiency with zero change to the rail.
* **Upgrade economics** — "we only need to upgrade the carts' SSDs and
  not the hyperloop itself", versus optical networking where each
  generation replaces transceivers and switches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..storage.devices import SABRENT_ROCKET_4_PLUS_8TB, StorageDevice
from ..units import assert_positive
from .cost import dhl_cost
from .model import LaunchMetrics, launch_metrics
from .params import DhlParams

NAND_DENSITY_CAGR: float = 0.25
"""Historical NAND bit-density compound annual growth (layers x cell
bits), conservative versus the 2013-2023 record."""

SSD_USD_PER_TB: float = 50.0
"""Commodity flash price used for cart refresh costing."""

NETWORK_GENERATION_YEARS: float = 3.0
"""Optical generations (400G -> 800G -> 1.6T) arrive roughly triennially."""

NETWORK_GENERATION_RATE_GAIN: float = 2.0


def scaled_device(
    base: StorageDevice = SABRENT_ROCKET_4_PLUS_8TB,
    years: float = 0.0,
    density_cagr: float = NAND_DENSITY_CAGR,
) -> StorageDevice:
    """The same M.2 package ``years`` later: more bytes, same mass.

    Density scaling stacks more layers in the same footprint; mass and
    sequential bandwidth per package are held constant (bandwidth is
    interface-bound), which is conservative for the DHL.
    """
    if years < 0:
        raise ConfigurationError(f"years must be >= 0, got {years}")
    if density_cagr <= -1:
        raise ConfigurationError("density CAGR must exceed -100%")
    growth = (1.0 + density_cagr) ** years
    return StorageDevice(
        name=f"{base.name} (+{years:g}y)",
        capacity_bytes=base.capacity_bytes * growth,
        form_factor=base.form_factor,
        mass_kg=base.mass_kg,
        read_bw=base.read_bw,
        write_bw=base.write_bw,
        active_power_w=base.active_power_w,
        idle_power_w=base.idle_power_w,
        kind=base.kind,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """DHL launch metrics with year-N SSDs on the unchanged rail."""

    year: float
    device: StorageDevice
    metrics: LaunchMetrics

    @property
    def cart_tb(self) -> float:
        """Projected cart capacity in decimal terabytes."""
        return self.metrics.params.storage_per_cart / 1e12


def density_projection(
    params: DhlParams | None = None,
    years: tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0),
    density_cagr: float = NAND_DENSITY_CAGR,
) -> list[ScalingPoint]:
    """Project embodied bandwidth/efficiency as SSD density scales.

    The rail, LIM, speeds and dock times never change — only the device
    capacity, exactly the upgrade path the paper highlights.
    """
    if not years:
        raise ConfigurationError("at least one projection year is required")
    params = params or DhlParams()
    points = []
    for year in sorted(years):
        device = scaled_device(params.ssd_device, year, density_cagr)
        point_params = params.with_(ssd_device=device)
        points.append(
            ScalingPoint(
                year=year,
                device=device,
                metrics=launch_metrics(point_params),
            )
        )
    return points


@dataclass(frozen=True)
class UpgradeCosts:
    """A decade of capability upgrades: DHL refresh vs optical refresh."""

    horizon_years: float
    dhl_initial_usd: float
    dhl_refresh_usd: float
    network_initial_usd: float
    network_refresh_usd: float
    dhl_capacity_gain: float
    network_rate_gain: float

    @property
    def dhl_total_usd(self) -> float:
        """DHL spend over the horizon: initial build plus SSD refreshes."""
        return self.dhl_initial_usd + self.dhl_refresh_usd

    @property
    def network_total_usd(self) -> float:
        """Network spend over the horizon: initial links plus upgrades."""
        return self.network_initial_usd + self.network_refresh_usd

    @property
    def dhl_gain_per_kusd(self) -> float:
        """Capacity gained (TB) per thousand dollars of DHL spend."""
        return self.dhl_capacity_gain / (self.dhl_total_usd / 1e3)

    @property
    def network_gain_per_kusd(self) -> float:
        """Rate gained (Gbit/s) per thousand dollars of network spend."""
        return self.network_rate_gain / (self.network_total_usd / 1e3)


def upgrade_economics(
    params: DhlParams | None = None,
    horizon_years: float = 9.0,
    refresh_interval_years: float = 3.0,
    density_cagr: float = NAND_DENSITY_CAGR,
    switch_cost_usd: float = 20_000.0,
    transceiver_cost_usd: float = 600.0,
    ports_refreshed: int = 32,
) -> UpgradeCosts:
    """Cost a decade of keeping up with demand on both technologies.

    * DHL: keep the rail; at each refresh buy new (denser) flash for the
      cart fleet at commodity price.  Bandwidth gain = density gain.
    * Optics: at each refresh buy a new-generation switch plus a
      transceiver per port.  Rate gain = 2x per generation.
    """
    params = params or DhlParams()
    assert_positive("horizon_years", horizon_years)
    assert_positive("refresh_interval_years", refresh_interval_years)
    refreshes = int(horizon_years / refresh_interval_years)

    fleet_tb = params.storage_per_cart / 1e12
    dhl_refresh = 0.0
    for refresh in range(1, refreshes + 1):
        year = refresh * refresh_interval_years
        grown_tb = fleet_tb * (1.0 + density_cagr) ** year
        dhl_refresh += grown_tb * SSD_USD_PER_TB

    network_refresh = refreshes * (
        switch_cost_usd + ports_refreshed * transceiver_cost_usd
    )

    return UpgradeCosts(
        horizon_years=horizon_years,
        dhl_initial_usd=dhl_cost(params).total_usd,
        dhl_refresh_usd=dhl_refresh,
        network_initial_usd=switch_cost_usd + ports_refreshed * transceiver_cost_usd,
        network_refresh_usd=network_refresh,
        dhl_capacity_gain=(1.0 + density_cagr) ** (refreshes * refresh_interval_years),
        network_rate_gain=NETWORK_GENERATION_RATE_GAIN**refreshes,
    )
